//! `grimp serve`: an overload-robust HTTP imputation service.
//!
//! The training pipeline fits once and writes a [`TrainCheckpoint`]; this
//! crate turns that checkpoint into a long-running service that answers
//! concurrent CSV-in/CSV-out imputation requests without ever panicking,
//! OOMing, or wedging — the serving-side counterpart of the pipeline's
//! never-panic/always-impute contract:
//!
//! - **Bounded everything.** A fixed worker pool pulls from a bounded
//!   queue; when the queue is full the accept loop sheds load with
//!   `503 + Retry-After` instead of buffering unboundedly. Request heads
//!   and bodies are capped before they are buffered.
//! - **Memory admission.** Each `/impute` body is sized with the PR 5
//!   governor's [`estimate_footprint`] before any model work; requests
//!   that would blow the budget get `503 + Retry-After`, never an OOM.
//! - **Deadlines.** A per-request wall-clock deadline starts at accept
//!   time; requests that exceed it (queue wait included) get `504`.
//! - **Slowloris defense.** A socket read timeout bounds how long a slow
//!   client can hold a worker; stalled requests get `408`.
//! - **Fault injection.** [`SocketFaultPlan`] extends the `GrimpFs`-style
//!   deterministic fault injection to the socket layer (torn request,
//!   mid-response disconnect, malformed payload, stalled body), so the
//!   chaos harness can drive the full failure matrix reproducibly.
//! - **Graceful drain.** On shutdown the listener stops accepting,
//!   queued and in-flight requests finish within a drain deadline, and
//!   [`Server::run`] reports whether the drain was clean.
//! - **Hot reload.** A watcher thread polls the checkpoint file (with a
//!   deterministic per-seed jitter so replica fleets do not poll in
//!   lockstep); when the trainer rotates a new generation in
//!   (CRC-validated), workers rebuild their model between requests —
//!   in-flight requests always finish on the model they started with.
//! - **Incremental append.** `POST /append` pushes CSV rows through the
//!   WAL-backed incremental pipeline ([`Pipeline::append`]): the rows are
//!   durable before any model work, the base checkpoint is fine-tuned,
//!   and the served generation swaps to the grown table atomically.
//!   Concurrent appends are serialized; a conflicting pending append log
//!   from a crashed run is `409`, as is a delta with new categorical
//!   values (a refit cannot be recovered after a crash — that flow
//!   belongs to the offline `grimp append`).
//! - **Panic isolation.** Every handler runs under `catch_unwind`: a
//!   panicking request is answered `500`, the worker's replica is
//!   quarantined and rebuilt from the shared snapshot (never reused
//!   half-mutated — that is what makes the handler unwind-safe), and the
//!   pool keeps its size. Counted as `panics`/`workers_replaced` in
//!   `/stats` and the [`DrainReport`], traced as `worker_panic`.
//! - **Idempotent append.** An `Idempotency-Key` request header is
//!   journaled durably next to the WAL ([`idem`]) before any model work;
//!   a replayed key returns the recorded outcome instead of re-appending,
//!   so client-retry-after-crash can never double rows.
//! - **Liveness vs readiness.** `GET /healthz` answers `ok` while the
//!   process lives; `GET /readyz` reports generation, pending-WAL and
//!   append state, and failed-reload memoization, going `503` while an
//!   append holds the gate or a drain is underway.
//!
//! [`FittedModel`] is intentionally `!Send` (its tape shares `Rc` label
//! buffers), so no model ever crosses a thread: each worker restores its
//! own replica from the shared checkpoint bytes via [`Pipeline::restore`],
//! and hot reload is just "the bytes changed, restore again".

#![warn(missing_docs)]
#![cfg_attr(not(test), warn(clippy::unwrap_used))]

pub mod fault;
pub mod http;
pub mod idem;

use std::collections::VecDeque;
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, TryLockError};
use std::thread;
use std::time::{Duration, Instant};

use grimp::checkpoint::{crc32, TrainCheckpoint, CHECKPOINT_FILE};
use grimp::{estimate_footprint, FittedModel, GrimpError, Pipeline, ShutdownFlag};
use grimp_obs::{crashpoint, names, Event, EventSink, RealFs, Trace};
use grimp_table::csv::{read_csv_str, to_csv_bytes};
use grimp_table::{ColumnKind, Table};

pub use fault::{FaultStream, SocketFaultKind, SocketFaultPlan};
pub use http::{HttpError, Request};

/// Environment variable carrying a [`SocketFaultPlan`] spec
/// (`kind[:times[:from_conn]]`), the socket-layer sibling of
/// `GRIMP_FAULT_FS`.
pub const FAULT_SOCKET_ENV: &str = "GRIMP_FAULT_SOCKET";

/// Environment variable that, when set to `1`, enables the
/// `POST /panic` injection endpoint (see [`ServeConfig::panic_route`]) —
/// the panic-isolation sibling of [`FAULT_SOCKET_ENV`].
pub const FAULT_PANIC_ENV: &str = "GRIMP_FAULT_PANIC";

/// How the server behaves under load; every bound has a safe default.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Address to bind, e.g. `127.0.0.1:0` (port 0 picks a free port).
    pub addr: String,
    /// Worker threads, each holding its own restored model replica.
    pub workers: usize,
    /// Accepted connections allowed to wait for a worker; beyond this the
    /// accept loop sheds with `503 + Retry-After`.
    pub queue_depth: usize,
    /// Per-request wall-clock deadline, measured from accept; `None`
    /// disables the check.
    pub request_deadline: Option<Duration>,
    /// Memory admission budget in bytes for one request's estimated fit
    /// footprint; `None` admits everything.
    pub memory_budget_bytes: Option<u64>,
    /// Socket read timeout: how long a slow client may stall a worker.
    pub read_timeout: Duration,
    /// Largest request body accepted, in bytes.
    pub max_body_bytes: usize,
    /// How long a drain may take before in-flight work is abandoned.
    pub drain_deadline: Duration,
    /// How often the watcher polls the checkpoint file for a new
    /// generation. Each poll adds a deterministic jitter of up to a
    /// quarter of this interval, derived from `seed` and the poll count,
    /// so a fleet of replicas started together does not stampede the
    /// filesystem in lockstep — yet every run is reproducible.
    pub reload_poll: Duration,
    /// Seed for the watcher's poll jitter (and any future randomized
    /// serving decision): same seed, same jitter sequence.
    pub seed: u64,
    /// Deterministic socket-fault plan for chaos runs.
    pub fault: Option<SocketFaultPlan>,
    /// Expose `POST /panic`, which panics inside the handler — the chaos
    /// harness's deterministic probe that panic isolation answers `500`,
    /// rebuilds the replica, and never kills the worker. Off by default;
    /// the CLI enables it only under [`FAULT_PANIC_ENV`].
    pub panic_route: bool,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 2,
            queue_depth: 32,
            request_deadline: Some(Duration::from_secs(30)),
            memory_budget_bytes: None,
            read_timeout: Duration::from_secs(5),
            max_body_bytes: 8 * 1024 * 1024,
            drain_deadline: Duration::from_secs(10),
            reload_poll: Duration::from_millis(200),
            seed: 0,
            fault: None,
            panic_route: false,
        }
    }
}

/// Where the served model comes from: the pipeline and training table
/// that reproduce its structure, plus the checkpoint directory a trainer
/// rotates new generations into.
#[derive(Clone, Debug)]
pub struct ModelSource {
    /// The validated pipeline whose configuration matches the fit that
    /// wrote the checkpoint.
    pub pipeline: Pipeline,
    /// The training table the model structure is rebuilt from.
    pub train: Table,
    /// Directory holding `grimp.ckpt` (see
    /// [`grimp::checkpoint::CHECKPOINT_FILE`]).
    pub checkpoint_dir: PathBuf,
}

/// What [`Server::run`] hands back after the drain completes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DrainReport {
    /// Whether every queued and in-flight request finished within the
    /// drain deadline.
    pub clean: bool,
    /// Requests answered with a `2xx` response over the server's life.
    pub served: u64,
    /// Connections shed with `503` because the queue was full.
    pub shed: u64,
    /// Requests refused with `503` by memory admission.
    pub over_budget: u64,
    /// Successful hot reloads (checkpoint generation swaps).
    pub reloads: u64,
    /// Successful `POST /append` requests (rows appended and fine-tuned
    /// or refitted, served table swapped to the grown one).
    pub appends: u64,
    /// Handler panics caught and answered `500` (the process survived
    /// every one of them).
    pub panics: u64,
    /// Worker replicas quarantined and rebuilt after a caught panic.
    pub workers_replaced: u64,
}

/// An [`EventSink`] shareable across the accept loop, workers, and the
/// watcher: clones lock the same underlying sink per event. Lock
/// poisoning is absorbed (a panicking thread must not mute the trace).
#[derive(Clone)]
pub struct SharedSink(Arc<Mutex<Box<dyn EventSink + Send>>>);

impl SharedSink {
    /// Share `sink` between threads.
    pub fn new(sink: Box<dyn EventSink + Send>) -> Self {
        SharedSink(Arc::new(Mutex::new(sink)))
    }

    fn lock(&self) -> MutexGuard<'_, Box<dyn EventSink + Send>> {
        self.0
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }
}

impl EventSink for SharedSink {
    fn enabled(&self) -> bool {
        self.lock().enabled()
    }

    fn record(&mut self, event: Event) {
        self.lock().record(event);
    }

    fn flush(&mut self) -> std::io::Result<()> {
        self.lock().flush()
    }
}

/// One accepted connection waiting for a worker.
struct Job {
    stream: FaultStream,
    accepted_at: Instant,
    req_id: u64,
}

#[derive(Default)]
struct QueueState {
    jobs: VecDeque<Job>,
}

#[derive(Default)]
struct Counters {
    served: AtomicU64,
    shed: AtomicU64,
    over_budget: AtomicU64,
    client_gone: AtomicU64,
    reloads: AtomicU64,
    appends: AtomicU64,
    panics: AtomicU64,
    workers_replaced: AtomicU64,
}

/// The served model generation: checkpoint bytes plus the table the
/// replicas restore against. Swapped together — after an append, the
/// fine-tuned checkpoint only matches the *grown* table.
struct Current {
    /// Current checkpoint bytes (CRC-validated before the swap).
    blob: Arc<Vec<u8>>,
    /// The table the served model was fitted on.
    train: Arc<Table>,
}

/// State shared by the accept loop, workers, and the watcher thread.
struct Shared {
    cfg: ServeConfig,
    source: ModelSource,
    queue: Mutex<QueueState>,
    job_ready: Condvar,
    active_workers: Mutex<usize>,
    worker_done: Condvar,
    draining: AtomicBool,
    current: Mutex<Current>,
    /// Bumped on every successful hot reload or applied append.
    generation: AtomicU64,
    /// Serializes `POST /append` runs: the WAL/checkpoint directory is
    /// one shared resource, and a second concurrent append is answered
    /// `503` instead of racing the first for it. The gate also caches the
    /// idempotency journal (loaded lazily on the first keyed append) so
    /// the file is not re-read per request; a panic that poisons the
    /// mutex is absorbed — the journal's disk image is always consistent
    /// (atomic whole-file writes), so the cached copy is dropped and
    /// reloaded rather than trusted after a poisoning.
    append_gate: Mutex<Option<idem::Journal>>,
    /// Readiness memoization of the last reload that failed to restore:
    /// `generation + 1` of the bad rotation, `0` when the latest
    /// generation restored fine. Reported by `GET /readyz`.
    failed_reload: AtomicU64,
    counters: Counters,
    sink: SharedSink,
    shutdown: ShutdownFlag,
}

impl Shared {
    fn queue_lock(&self) -> MutexGuard<'_, QueueState> {
        self.queue.lock().unwrap_or_else(|p| p.into_inner())
    }

    fn current_snapshot(&self) -> (u64, Arc<Vec<u8>>, Arc<Table>) {
        let guard = self.current.lock().unwrap_or_else(|p| p.into_inner());
        (
            self.generation.load(Ordering::SeqCst),
            Arc::clone(&guard.blob),
            Arc::clone(&guard.train),
        )
    }
}

/// A bound-but-not-yet-running imputation server.
pub struct Server {
    listener: TcpListener,
    shared: Arc<Shared>,
}

impl Server {
    /// Bind the listener, load and CRC-validate the current checkpoint,
    /// and restore one throwaway model replica to fail fast on a
    /// checkpoint that does not match the pipeline/table.
    ///
    /// # Errors
    /// [`GrimpError::Checkpoint`] when the checkpoint is missing, corrupt,
    /// or shape-mismatched; [`GrimpError::Io`] when the bind fails.
    pub fn bind(
        cfg: ServeConfig,
        source: ModelSource,
        shutdown: ShutdownFlag,
        sink: Box<dyn EventSink + Send>,
    ) -> Result<Server, GrimpError> {
        let ckpt_path = source.checkpoint_dir.join(CHECKPOINT_FILE);
        let bytes = std::fs::read(&ckpt_path).map_err(|e| GrimpError::Checkpoint {
            path: ckpt_path.clone(),
            source: e.into(),
        })?;
        let ck = TrainCheckpoint::from_bytes(&bytes).map_err(|source| GrimpError::Checkpoint {
            path: ckpt_path.clone(),
            source,
        })?;
        // Fail fast: a shape-mismatched checkpoint must be a startup
        // error, not a 500 on the first request.
        source.pipeline.restore(&source.train, &ck)?;

        let bind_err = |source: std::io::Error| GrimpError::Io {
            context: format!("binding {}", cfg.addr),
            source,
        };
        let listener = TcpListener::bind(&cfg.addr).map_err(&bind_err)?;
        listener.set_nonblocking(true).map_err(&bind_err)?;
        let current = Current {
            blob: Arc::new(bytes),
            train: Arc::new(source.train.clone()),
        };
        let shared = Arc::new(Shared {
            cfg,
            source,
            queue: Mutex::new(QueueState::default()),
            job_ready: Condvar::new(),
            active_workers: Mutex::new(0),
            worker_done: Condvar::new(),
            draining: AtomicBool::new(false),
            current: Mutex::new(current),
            generation: AtomicU64::new(0),
            append_gate: Mutex::new(None),
            failed_reload: AtomicU64::new(0),
            counters: Counters::default(),
            sink: SharedSink::new(sink),
            shutdown,
        });
        Ok(Server { listener, shared })
    }

    /// The bound address (resolves port 0 to the actual port).
    ///
    /// # Errors
    /// Propagates the socket query failure.
    pub fn local_addr(&self) -> std::io::Result<std::net::SocketAddr> {
        self.listener.local_addr()
    }

    /// Run until the shutdown flag is raised, then drain and return.
    ///
    /// Spawns the worker pool and the checkpoint watcher, then accepts
    /// connections on the calling thread. On shutdown: stop accepting,
    /// emit `drain_begin`, let workers finish queued and in-flight
    /// requests within the drain deadline, emit `drain_end`
    /// (value 1 = clean, 0 = deadline expired, stragglers abandoned).
    ///
    /// # Errors
    /// [`GrimpError::Io`] when a worker or watcher thread cannot be
    /// spawned; any workers that did start are drained first, so the
    /// error path leaks neither threads nor sockets.
    pub fn run(self) -> Result<DrainReport, GrimpError> {
        let workers = self.shared.cfg.workers.max(1);
        {
            let mut active = self
                .shared
                .active_workers
                .lock()
                .unwrap_or_else(|p| p.into_inner());
            *active = workers;
        }
        let abort_spawn =
            |handles: Vec<thread::JoinHandle<()>>, what: &str, source: std::io::Error| {
                {
                    let mut active = self
                        .shared
                        .active_workers
                        .lock()
                        .unwrap_or_else(|p| p.into_inner());
                    *active = handles.len();
                }
                self.shared.draining.store(true, Ordering::SeqCst);
                self.shared.job_ready.notify_all();
                for h in handles {
                    let _ = h.join();
                }
                GrimpError::Io {
                    context: format!("spawning the {what} thread"),
                    source,
                }
            };
        let mut handles = Vec::with_capacity(workers);
        for worker_id in 0..workers {
            let shared = Arc::clone(&self.shared);
            match thread::Builder::new()
                .name(format!("grimp-serve-worker-{worker_id}"))
                .spawn(move || worker_loop(&shared))
            {
                Ok(handle) => handles.push(handle),
                Err(e) => return Err(abort_spawn(handles, "worker", e)),
            }
        }
        let watcher = {
            let shared = Arc::clone(&self.shared);
            match thread::Builder::new()
                .name("grimp-serve-watcher".to_string())
                .spawn(move || watcher_loop(&shared))
            {
                Ok(handle) => handle,
                Err(e) => return Err(abort_spawn(handles, "watcher", e)),
            }
        };

        self.accept_loop();

        // Drain: no new connections, wake every worker, wait for them to
        // finish what is queued and in flight.
        let shared = &self.shared;
        let pending = shared.queue_lock().jobs.len() as u64;
        {
            let mut sink = shared.sink.clone();
            let mut trace = Trace::new(&mut sink);
            trace.counter(names::DRAIN_BEGIN, 0, pending);
        }
        shared.draining.store(true, Ordering::SeqCst);
        shared.job_ready.notify_all();

        let deadline = Instant::now() + shared.cfg.drain_deadline;
        let mut active = shared
            .active_workers
            .lock()
            .unwrap_or_else(|p| p.into_inner());
        while *active > 0 {
            let now = Instant::now();
            if now >= deadline {
                break;
            }
            let (guard, _timeout) = shared
                .worker_done
                .wait_timeout(active, deadline - now)
                .unwrap_or_else(|p| p.into_inner());
            active = guard;
        }
        let clean = *active == 0;
        drop(active);

        {
            let mut sink = shared.sink.clone();
            let mut trace = Trace::new(&mut sink);
            trace.counter(names::DRAIN_END, 0, u64::from(clean));
            let _ = trace.flush();
        }
        let _ = watcher.join();
        if clean {
            for h in handles {
                let _ = h.join();
            }
        }
        // On an expired drain the handles are dropped (detached); the
        // stragglers die with the process.
        Ok(DrainReport {
            clean,
            served: shared.counters.served.load(Ordering::SeqCst),
            shed: shared.counters.shed.load(Ordering::SeqCst),
            over_budget: shared.counters.over_budget.load(Ordering::SeqCst),
            reloads: shared.counters.reloads.load(Ordering::SeqCst),
            appends: shared.counters.appends.load(Ordering::SeqCst),
            panics: shared.counters.panics.load(Ordering::SeqCst),
            workers_replaced: shared.counters.workers_replaced.load(Ordering::SeqCst),
        })
    }

    fn accept_loop(&self) {
        let shared = &self.shared;
        let mut accepted: usize = 0;
        let mut next_req_id: u64 = 0;
        while !shared.shutdown.is_requested() {
            match self.listener.accept() {
                Ok((stream, _peer)) => {
                    let conn = accepted;
                    accepted += 1;
                    let req_id = next_req_id;
                    next_req_id += 1;
                    let fault = shared
                        .cfg
                        .fault
                        .filter(|plan| plan.fires_on(conn))
                        .map(|plan| plan.kind);
                    // Accepted sockets do not inherit the listener's
                    // non-blocking mode on Linux, but make it explicit:
                    // workers rely on blocking reads bounded by timeouts.
                    let _ = stream.set_nonblocking(false);
                    let mut job = Job {
                        stream: FaultStream::new(stream, fault),
                        accepted_at: Instant::now(),
                        req_id,
                    };
                    if let Some(kind) = fault {
                        let mut sink = shared.sink.clone();
                        let mut trace = Trace::new(&mut sink);
                        trace.counter(names::SOCKET_FAULT, req_id, kind.code());
                    }
                    let mut q = shared.queue_lock();
                    if q.jobs.len() >= shared.cfg.queue_depth {
                        drop(q);
                        shared.counters.shed.fetch_add(1, Ordering::SeqCst);
                        let mut sink = shared.sink.clone();
                        let mut trace = Trace::new(&mut sink);
                        trace.counter(names::REQUEST_SHED, req_id, 1);
                        // Consume the request (briefly, bounded) so the
                        // close sends a clean FIN instead of RST-ing the
                        // 503 away before the client reads it.
                        absorb_remaining(job.stream.socket(), Duration::from_millis(20));
                        let _ = http::write_response(
                            &mut job.stream,
                            503,
                            "text/plain",
                            &[("Retry-After", "1".to_string())],
                            b"queue full, retry shortly\n",
                        );
                    } else {
                        q.jobs.push_back(job);
                        drop(q);
                        shared.job_ready.notify_one();
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    thread::sleep(Duration::from_millis(5));
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(_) => {
                    // Transient accept failures (EMFILE, ECONNABORTED)
                    // must not kill the server; back off briefly.
                    thread::sleep(Duration::from_millis(5));
                }
            }
        }
    }
}

/// Bounded best-effort drain of a socket's receive buffer (at most
/// 64 KiB, at most `timeout` per read). Called before answering a
/// request whose body was not fully read: closing a socket with unread
/// bytes turns into a TCP RST that can race the error response off the
/// wire before the client reads it.
fn absorb_remaining(socket: &TcpStream, timeout: Duration) {
    if socket.set_nonblocking(false).is_err() || socket.set_read_timeout(Some(timeout)).is_err() {
        return;
    }
    let mut sunk = 0usize;
    let mut buf = [0u8; 4096];
    let mut reader = socket;
    loop {
        match reader.read(&mut buf) {
            Ok(0) | Err(_) => break,
            Ok(n) => {
                sunk += n;
                if sunk >= 64 * 1024 {
                    break;
                }
            }
        }
    }
}

/// SplitMix64: the jitter's deterministic bit mixer.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// The deterministic extra wait added to poll number `polls`: a pure
/// function of `(seed, polls)` in `[0, reload_poll / 4]`, so replicas
/// with different seeds drift apart while any single run replays its
/// exact poll schedule.
fn poll_jitter(seed: u64, polls: u64, reload_poll: Duration) -> Duration {
    let quarter = (reload_poll.as_millis() as u64) / 4;
    if quarter == 0 {
        return Duration::ZERO;
    }
    Duration::from_millis(splitmix64(seed ^ polls.wrapping_mul(0x9E37_79B9)) % (quarter + 1))
}

fn watcher_loop(shared: &Shared) {
    let ckpt_path = shared.source.checkpoint_dir.join(CHECKPOINT_FILE);
    let mut polls: u64 = 0;
    while !shared.shutdown.is_requested() && !shared.draining.load(Ordering::SeqCst) {
        // Sleep in small slices so shutdown is honored promptly even
        // with a long poll interval.
        let jitter = poll_jitter(shared.cfg.seed, polls, shared.cfg.reload_poll);
        let wait = shared.cfg.reload_poll + jitter;
        let mut slept = Duration::ZERO;
        while slept < wait {
            if shared.shutdown.is_requested() || shared.draining.load(Ordering::SeqCst) {
                return;
            }
            let slice = Duration::from_millis(10).min(wait - slept);
            thread::sleep(slice);
            slept += slice;
        }
        polls += 1;
        {
            let mut sink = shared.sink.clone();
            let mut trace = Trace::new(&mut sink);
            trace.counter(names::RELOAD_POLL, polls, jitter.as_millis() as u64);
        }
        let Ok(bytes) = std::fs::read(&ckpt_path) else {
            // Mid-rotation (tmp rename in flight) or deleted: keep the
            // current generation and try again next poll.
            continue;
        };
        let changed = {
            let guard = shared.current.lock().unwrap_or_else(|p| p.into_inner());
            *guard.blob != bytes
        };
        if !changed {
            continue;
        }
        // CRC and structure validation happen before the swap: a torn or
        // bit-flipped rotation never replaces a good generation.
        if TrainCheckpoint::from_bytes(&bytes).is_err() {
            continue;
        }
        let crc = crc32(&bytes);
        let generation = {
            let mut guard = shared.current.lock().unwrap_or_else(|p| p.into_inner());
            guard.blob = Arc::new(bytes);
            shared.generation.fetch_add(1, Ordering::SeqCst) + 1
        };
        shared.counters.reloads.fetch_add(1, Ordering::SeqCst);
        let mut sink = shared.sink.clone();
        let mut trace = Trace::new(&mut sink);
        trace.counter(names::MODEL_RELOADED, generation, u64::from(crc));
    }
}

/// A worker's current model replica, tagged with the generation it was
/// restored from.
struct Replica {
    generation: u64,
    model: FittedModel,
}

fn worker_loop(shared: &Shared) {
    let mut replica: Option<Replica> = None;
    // Remember a generation that failed to restore so a bad rotation
    // does not trigger a rebuild attempt on every request.
    let mut failed_generation: Option<u64> = None;
    while let Some(job) = next_job(shared) {
        let req_id = job.req_id;
        // Last-resort panic isolation: `serve_one` already catches
        // handler panics and answers 500; this outer belt catches a
        // panic anywhere else on the request path (parsing, response
        // IO), so one poisoned request can never shrink the worker pool
        // or hang the drain waiting on a dead worker.
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            serve_one(shared, job, &mut replica, &mut failed_generation);
        }));
        if caught.is_err() {
            replica = None;
            failed_generation = None;
            note_panic(shared, req_id);
        }
    }
    let mut active = shared
        .active_workers
        .lock()
        .unwrap_or_else(|p| p.into_inner());
    *active = active.saturating_sub(1);
    drop(active);
    shared.worker_done.notify_all();
}

/// Count a caught panic (the replica was already dropped for rebuild)
/// and put a `worker_panic` event in the trace.
fn note_panic(shared: &Shared, req_id: u64) {
    shared.counters.panics.fetch_add(1, Ordering::SeqCst);
    shared
        .counters
        .workers_replaced
        .fetch_add(1, Ordering::SeqCst);
    let mut sink = shared.sink.clone();
    let mut trace = Trace::new(&mut sink);
    trace.counter(names::WORKER_PANIC, req_id, 1);
}

fn next_job(shared: &Shared) -> Option<Job> {
    let mut q = shared.queue_lock();
    loop {
        if let Some(job) = q.jobs.pop_front() {
            return Some(job);
        }
        if shared.draining.load(Ordering::SeqCst) {
            return None;
        }
        let (guard, _timeout) = shared
            .job_ready
            .wait_timeout(q, Duration::from_millis(100))
            .unwrap_or_else(|p| p.into_inner());
        q = guard;
    }
}

/// What one request resolved to; `status` 0 means the client vanished
/// before a response could be written.
struct Outcome {
    status: u16,
    content_type: &'static str,
    extra: Vec<(&'static str, String)>,
    body: Vec<u8>,
}

impl Outcome {
    fn text(status: u16, msg: impl Into<String>) -> Outcome {
        let mut body = msg.into().into_bytes();
        body.push(b'\n');
        Outcome {
            status,
            content_type: "text/plain",
            extra: Vec::new(),
            body,
        }
    }

    fn busy(status: u16, msg: &str) -> Outcome {
        let mut o = Outcome::text(status, msg);
        o.extra.push(("Retry-After", "1".to_string()));
        o
    }
}

fn serve_one(
    shared: &Shared,
    mut job: Job,
    replica: &mut Option<Replica>,
    failed_generation: &mut Option<u64>,
) {
    let req_id = job.req_id;
    let queue_wait = job.accepted_at.elapsed();
    let mut sink = shared.sink.clone();
    let mut trace = Trace::new(&mut sink);
    let span = trace.enter(names::REQUEST, req_id);
    trace.metric(names::QUEUE_WAIT, req_id, queue_wait.as_secs_f64());

    let _ = job
        .stream
        .socket()
        .set_read_timeout(Some(shared.cfg.read_timeout));

    let deadline = shared
        .cfg
        .request_deadline
        .map(|limit| job.accepted_at + limit);
    let parsed = http::read_request(&mut job.stream, shared.cfg.max_body_bytes);
    if matches!(parsed, Err(ref e) if !matches!(e, HttpError::Torn)) {
        // The request was not fully read; drain what is left so the
        // error response is not RST-raced off the wire (see
        // `absorb_remaining`).
        absorb_remaining(job.stream.socket(), Duration::from_millis(50));
    }
    let outcome = match parsed {
        Ok(request) => {
            // Panic isolation: any panic out of the handler (replica
            // restore, imputation, append) unwinds to here. The worker's
            // replica is the only state the handler mutates; it is
            // dropped and rebuilt from the shared snapshot — never
            // reused half-mutated — which is what makes the closure
            // sound under `AssertUnwindSafe`.
            let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                route(
                    shared,
                    &mut trace,
                    req_id,
                    &request,
                    deadline,
                    replica,
                    failed_generation,
                )
            }));
            Some(match caught {
                Ok(outcome) => outcome,
                Err(_panic) => {
                    *replica = None;
                    *failed_generation = None;
                    note_panic(shared, req_id);
                    Outcome::text(
                        500,
                        "handler panicked; worker replica quarantined and rebuilt",
                    )
                }
            })
        }
        Err(HttpError::Timeout) => Some(Outcome::text(408, "request read timed out")),
        Err(HttpError::Torn) => None,
        Err(HttpError::Malformed(why)) => Some(Outcome::text(400, format!("bad request: {why}"))),
        Err(HttpError::TooLarge("request head")) => {
            Some(Outcome::text(431, "request head too large"))
        }
        Err(HttpError::TooLarge(_)) => Some(Outcome::text(413, "request body too large")),
    };

    let status = match outcome {
        None => 0,
        Some(outcome) => {
            let wrote = http::write_response(
                &mut job.stream,
                outcome.status,
                outcome.content_type,
                &outcome.extra,
                &outcome.body,
            );
            match wrote {
                Ok(()) => {
                    if (200..300).contains(&outcome.status) {
                        shared.counters.served.fetch_add(1, Ordering::SeqCst);
                    }
                    outcome.status
                }
                Err(_) => 0,
            }
        }
    };
    if status == 0 {
        shared.counters.client_gone.fetch_add(1, Ordering::SeqCst);
    }
    trace.counter(names::REQUEST_OUTCOME, req_id, u64::from(status));
    trace.exit(names::REQUEST, req_id, span);
}

fn route(
    shared: &Shared,
    trace: &mut Trace<'_>,
    req_id: u64,
    request: &Request,
    deadline: Option<Instant>,
    replica: &mut Option<Replica>,
    failed_generation: &mut Option<u64>,
) -> Outcome {
    match (request.method.as_str(), request.path.as_str()) {
        ("GET", "/healthz") => Outcome::text(200, "ok"),
        ("GET", "/readyz") => readyz(shared),
        ("GET", "/stats") => stats(shared),
        ("POST", "/panic") if shared.cfg.panic_route => {
            // A body of `append-gate` unwinds while HOLDING the append
            // gate — the deterministic probe that a panic anywhere inside
            // the gated append region (which poisons the mutex) does not
            // wedge later appends or readiness.
            if request.body == b"append-gate" {
                let _gate = shared.append_gate.lock();
                panic!("injected handler panic while holding the append gate")
            }
            panic!("injected handler panic (panic route enabled)")
        }
        ("POST", "/impute") => impute(
            shared,
            trace,
            req_id,
            request,
            deadline,
            replica,
            failed_generation,
        ),
        ("POST", "/append") => append(shared, trace, req_id, request, deadline),
        _ => Outcome::text(
            404,
            format!("no such endpoint: {} {}", request.method, request.path),
        ),
    }
}

fn stats(shared: &Shared) -> Outcome {
    let c = &shared.counters;
    let body = format!(
        "{{\"served\":{},\"shed\":{},\"over_budget\":{},\"client_gone\":{},\"reloads\":{},\"appends\":{},\"panics\":{},\"workers_replaced\":{},\"generation\":{}}}\n",
        c.served.load(Ordering::SeqCst),
        c.shed.load(Ordering::SeqCst),
        c.over_budget.load(Ordering::SeqCst),
        c.client_gone.load(Ordering::SeqCst),
        c.reloads.load(Ordering::SeqCst),
        c.appends.load(Ordering::SeqCst),
        c.panics.load(Ordering::SeqCst),
        c.workers_replaced.load(Ordering::SeqCst),
        shared.generation.load(Ordering::SeqCst),
    );
    Outcome {
        status: 200,
        content_type: "application/json",
        extra: Vec::new(),
        body: body.into_bytes(),
    }
}

/// `GET /readyz`: readiness, as opposed to `/healthz` liveness. Reports
/// the served generation, whether an append WAL is pending on disk,
/// whether the append gate is held right now, and the failed-reload
/// memoization; answers `503 + Retry-After` while an append is running
/// or a drain is underway (the process is alive but should not receive
/// new traffic from a balancer).
fn readyz(shared: &Shared) -> Outcome {
    let draining = shared.draining.load(Ordering::SeqCst);
    // Only WouldBlock means an append is actually running; a poisoned
    // gate (a worker panicked mid-append and was rebuilt) must not leave
    // readiness stuck at 503 forever.
    let append_in_progress = matches!(shared.append_gate.try_lock(), Err(TryLockError::WouldBlock));
    let pending_wal = shared.source.checkpoint_dir.join(grimp::WAL_FILE).exists();
    let generation = shared.generation.load(Ordering::SeqCst);
    let failed = shared.failed_reload.load(Ordering::SeqCst);
    let failed_json = match failed {
        0 => "null".to_string(),
        g => (g - 1).to_string(),
    };
    let ready = !draining && !append_in_progress;
    let body = format!(
        "{{\"ready\":{ready},\"generation\":{generation},\"pending_wal\":{pending_wal},\"append_in_progress\":{append_in_progress},\"draining\":{draining},\"failed_reload_generation\":{failed_json}}}\n",
    );
    let mut outcome = Outcome {
        status: if ready { 200 } else { 503 },
        content_type: "application/json",
        extra: Vec::new(),
        body: body.into_bytes(),
    };
    if !ready {
        outcome.extra.push(("Retry-After", "1".to_string()));
    }
    outcome
}

fn impute(
    shared: &Shared,
    trace: &mut Trace<'_>,
    req_id: u64,
    request: &Request,
    deadline: Option<Instant>,
    replica: &mut Option<Replica>,
    failed_generation: &mut Option<u64>,
) -> Outcome {
    if deadline.is_some_and(|d| Instant::now() >= d) {
        return Outcome::busy(504, "request deadline exceeded while queued");
    }
    let Ok(text) = std::str::from_utf8(&request.body) else {
        return Outcome::text(400, "body is not UTF-8");
    };
    let table = match read_csv_str(text) {
        Ok(table) => table,
        Err(e) => return Outcome::text(400, format!("body is not parseable CSV: {e}")),
    };

    // Memory admission happens before any model work, on the governor's
    // fit-footprint estimate for this table.
    if let Some(budget) = shared.cfg.memory_budget_bytes {
        let need = estimate_footprint(&table, shared.source.pipeline.config()).total_bytes();
        if need > budget {
            shared.counters.over_budget.fetch_add(1, Ordering::SeqCst);
            trace.counter(names::REQUEST_OVER_BUDGET, req_id, need);
            return Outcome::busy(
                503,
                &format!("request needs ~{need} bytes, budget is {budget}"),
            );
        }
    }

    refresh_replica(shared, replica, failed_generation);
    let Some(replica) = replica.as_mut() else {
        return Outcome::text(500, "no usable model generation");
    };

    if deadline.is_some_and(|d| Instant::now() >= d) {
        return Outcome::busy(504, "request deadline exceeded");
    }
    match replica.model.impute(&table) {
        Ok(imputed) => Outcome {
            status: 200,
            content_type: "text/csv",
            extra: Vec::new(),
            body: to_csv_bytes(&imputed),
        },
        Err(
            e @ (GrimpError::SchemaMismatch { .. }
            | GrimpError::Table { .. }
            | GrimpError::InductiveUnsupported),
        ) => Outcome::text(400, format!("cannot impute this table: {e}")),
        Err(e) => Outcome::text(500, format!("imputation failed: {e}")),
    }
}

/// `POST /append`: durably append the body's CSV rows to the served
/// table through the WAL-backed incremental pipeline, then swap the
/// served generation to the grown table and its fine-tuned checkpoint.
/// The response body is the imputed grown table.
///
/// Appends are serialized through `append_gate` (a second concurrent one
/// gets `503 + Retry-After`), and a pending append log from a crashed
/// earlier run that conflicts with this request is `409`. A delta that
/// introduces new categorical values is `409` too: it would force a full
/// refit whose checkpoint cannot be restored against the base table
/// after a restart — that flow belongs to the offline `grimp append`.
///
/// An `Idempotency-Key` request header makes the append safe to retry
/// across crashes (see [`idem`]): the key is journaled durably before
/// any model work, the response is journaled before the generation
/// swaps, and a replayed key is answered from the journal (marked with
/// an `Idempotency-Replay: true` response header) instead of
/// re-appending. A replayed key with a *different* body is `422`; one
/// whose recorded response was compacted away (see
/// [`idem::MAX_DONE_BODIES`]) is `410` — applied exactly once, but the
/// bytes are gone.
fn append(
    shared: &Shared,
    trace: &mut Trace<'_>,
    req_id: u64,
    request: &Request,
    deadline: Option<Instant>,
) -> Outcome {
    if deadline.is_some_and(|d| Instant::now() >= d) {
        return Outcome::busy(504, "request deadline exceeded while queued");
    }
    let Ok(text) = std::str::from_utf8(&request.body) else {
        return Outcome::text(400, "body is not UTF-8");
    };
    let rows_table = match read_csv_str(text) {
        Ok(table) => table,
        Err(e) => return Outcome::text(400, format!("body is not parseable CSV: {e}")),
    };

    // Idempotency-Key validation is pure, so it happens before the gate —
    // an invalid key must never consume it.
    let idem_key = match request.header("idempotency-key") {
        None => None,
        Some(key) if idem::valid_key(key) => Some(key.to_string()),
        Some(_) => {
            return Outcome::text(
                400,
                "invalid Idempotency-Key: need 1-255 visible ASCII characters",
            )
        }
    };

    // The gate comes BEFORE the base-table snapshot: a concurrent append
    // that swapped the generation between a snapshot and the gate would
    // make this request validate against — and fine-tune from — a stale
    // base, silently dropping the earlier append's rows. Only WouldBlock
    // means busy; a poisoned gate (a worker panicked mid-append) is
    // recovered by dropping the cached journal and reloading it from its
    // crash-consistent disk image.
    let mut gate = match shared.append_gate.try_lock() {
        Ok(gate) => gate,
        Err(TryLockError::Poisoned(p)) => {
            let mut gate = p.into_inner();
            *gate = None;
            shared.append_gate.clear_poison();
            gate
        }
        Err(TryLockError::WouldBlock) => {
            return Outcome::busy(503, "another append is in progress, retry shortly")
        }
    };

    let (_, _, train) = shared.current_snapshot();
    let names_match = rows_table.n_columns() == train.n_columns()
        && (0..train.n_columns())
            .all(|j| rows_table.schema().column(j).name == train.schema().column(j).name);
    if !names_match {
        return Outcome::text(
            400,
            "appended columns do not match the served table's header",
        );
    }

    // Build the concatenation once: the dictionary-growth check and the
    // memory admission both need base + delta.
    let mut concat = (*train).clone();
    for i in 0..rows_table.n_rows() {
        let row: Vec<Option<String>> = (0..rows_table.n_columns())
            .map(|j| (!rows_table.is_missing(i, j)).then(|| rows_table.display(i, j)))
            .collect();
        let r: Vec<Option<&str>> = row.iter().map(|c| c.as_deref()).collect();
        if let Err(e) = concat.try_push_str_row(&r) {
            return Outcome::text(400, format!("cannot append row {i}: {e}"));
        }
    }

    // The serve surface only accepts appends it can recover from. A delta
    // that grows a categorical dictionary forces a full refit (same test
    // as the incremental pipeline's decide step), and a refitted
    // checkpoint no longer restores against the base table a respawned
    // server starts from — a crash after the rotation would turn into a
    // startup failure, not a replay. Those deltas belong to the offline
    // `grimp append` flow.
    let grows_dictionary = (0..train.n_columns()).any(|j| {
        train.schema().column(j).kind == ColumnKind::Categorical
            && concat.dictionary(j).len() != train.dictionary(j).len()
    });
    if grows_dictionary {
        return Outcome::text(
            409,
            "append introduces new categorical values, which would force a full refit \
             that cannot be recovered after a crash; run `grimp append` offline and \
             restart the server with the grown table",
        );
    }

    // Memory admission on the *grown* table: the append fine-tunes over
    // base + delta, so that concatenation is what must fit.
    if let Some(budget) = shared.cfg.memory_budget_bytes {
        let need = estimate_footprint(&concat, shared.source.pipeline.config()).total_bytes();
        if need > budget {
            shared.counters.over_budget.fetch_add(1, Ordering::SeqCst);
            trace.counter(names::REQUEST_OVER_BUDGET, req_id, need);
            return Outcome::busy(
                503,
                &format!("grown table needs ~{need} bytes, budget is {budget}"),
            );
        }
    }
    drop(concat);

    let rows_crc = crc32(&request.body);
    if let Some(key) = &idem_key {
        // The journal is cached under the gate (appends are serialized,
        // so journal access is too); the file is only read when the cache
        // is cold — process start or post-panic recovery.
        if gate.is_none() {
            match idem::Journal::load(&shared.source.checkpoint_dir) {
                Ok(journal) => *gate = Some(journal),
                Err(e) => return Outcome::text(500, format!("idempotency journal: {e}")),
            }
        }
        let Some(journal) = gate.as_mut() else {
            return Outcome::text(500, "idempotency journal cache unavailable");
        };
        match journal.lookup(key) {
            Some(entry) if entry.rows_crc != rows_crc => {
                return Outcome::text(
                    422,
                    "Idempotency-Key was already used with a different body",
                );
            }
            Some(entry) => {
                if let Some(done) = &entry.done {
                    // The append already completed (possibly in a previous
                    // process life): answer from the journal, touch nothing.
                    trace.counter(names::IDEM_REPLAY, req_id, 1);
                    return match &done.body {
                        Some(body) => Outcome {
                            status: 200,
                            content_type: "text/csv",
                            extra: vec![("Idempotency-Replay", "true".to_string())],
                            body: body.clone(),
                        },
                        // The recorded response outlived the journal's
                        // body cap: the rows were applied exactly once
                        // and must not be re-applied, but the bytes are
                        // gone — `410` tells the client its append
                        // succeeded without pretending to replay it.
                        None => {
                            let mut gone = Outcome::text(
                                410,
                                format!(
                                    "append already applied ({} rows); its recorded \
                                     response has been compacted away — do not retry",
                                    done.appended_rows
                                ),
                            );
                            gone.extra.push(("Idempotency-Replay", "true".to_string()));
                            gone
                        }
                    };
                }
                // Pending from an interrupted earlier attempt: fall
                // through — `Pipeline::append` reconciles whatever the
                // crash left (pending WAL resumed, rotated WAL restarted
                // against the recovered base table).
            }
            None => {
                // Durable before ack *and* before any model work.
                if let Err(e) = journal.record_pending(&mut RealFs, key, rows_crc) {
                    return Outcome::text(500, format!("idempotency journal: {e}"));
                }
            }
        }
        crashpoint::hit(crashpoint::IDEM_JOURNAL);
    }

    // The serving pipeline is structure-only; give the append run the
    // checkpoint directory so its WAL and fine-tuned generation land
    // where the watcher and the replicas look.
    let mut cfg = shared.source.pipeline.config().clone();
    cfg.checkpoint_dir = Some(shared.source.checkpoint_dir.clone());
    let pipeline = match Pipeline::new(cfg) {
        Ok(p) => p,
        Err(e) => return Outcome::text(500, format!("append pipeline: {e}")),
    };
    let rows = grimp::table_to_wal_rows(&rows_table);
    match pipeline.append(&train, &rows) {
        Ok(outcome) => {
            let body = to_csv_bytes(&outcome.imputed);
            if let (Some(key), Some(j)) = (&idem_key, gate.as_mut()) {
                // The done record must be durable before the generation
                // swaps: once the served table has grown, a replayed key
                // that fell through here would append onto the grown
                // table and double the rows. If this write fails the
                // swap is abandoned too — the server keeps serving the
                // base table, so a retry still converges to exactly one
                // application of the rows.
                if let Err(e) = j.record_done(
                    &mut RealFs,
                    key,
                    rows_crc,
                    outcome.appended_rows as u32,
                    &body,
                ) {
                    return Outcome::text(
                        500,
                        format!("append applied, journal write failed: {e}"),
                    );
                }
            }
            crashpoint::hit(crashpoint::GENERATION_SWAP);
            // Swap the served generation: grown table plus whatever
            // checkpoint the append left on disk. An unreadable file is
            // not fatal — the watcher retries — but table and blob must
            // move together, so read it here under the same lock.
            let ckpt_path = shared.source.checkpoint_dir.join(CHECKPOINT_FILE);
            let generation = {
                let mut guard = shared.current.lock().unwrap_or_else(|p| p.into_inner());
                if let Ok(bytes) = std::fs::read(&ckpt_path) {
                    if TrainCheckpoint::from_bytes(&bytes).is_ok() {
                        guard.blob = Arc::new(bytes);
                    }
                }
                guard.train = Arc::new(outcome.table);
                shared.generation.fetch_add(1, Ordering::SeqCst) + 1
            };
            shared.counters.appends.fetch_add(1, Ordering::SeqCst);
            trace.counter(names::APPEND, generation, outcome.appended_rows as u64);
            Outcome {
                status: 200,
                content_type: "text/csv",
                extra: Vec::new(),
                body,
            }
        }
        Err(e @ GrimpError::PendingAppend { .. }) => {
            Outcome::text(409, format!("conflicting pending append: {e}"))
        }
        Err(e) => match e.category() {
            grimp::ErrorCategory::Data => Outcome::text(400, format!("cannot append: {e}")),
            grimp::ErrorCategory::Busy => Outcome::busy(503, &format!("busy: {e}")),
            _ => Outcome::text(500, format!("append failed: {e}")),
        },
    }
}

/// Rebuild this worker's model replica when the checkpoint generation
/// moved. In-flight requests never see a swap: the rebuild happens
/// between requests, and a generation that fails to restore is skipped
/// (the worker keeps serving its current replica).
fn refresh_replica(
    shared: &Shared,
    replica: &mut Option<Replica>,
    failed_generation: &mut Option<u64>,
) {
    let (generation, blob, train) = shared.current_snapshot();
    let stale = match replica {
        Some(r) => r.generation != generation,
        None => true,
    };
    if !stale || *failed_generation == Some(generation) {
        return;
    }
    let restored = TrainCheckpoint::from_bytes(&blob)
        .map_err(|source| GrimpError::Checkpoint {
            path: shared.source.checkpoint_dir.join(CHECKPOINT_FILE),
            source,
        })
        .and_then(|ck| shared.source.pipeline.restore(&train, &ck));
    match restored {
        Ok(model) => {
            *replica = Some(Replica { generation, model });
            *failed_generation = None;
            shared.failed_reload.store(0, Ordering::SeqCst);
        }
        Err(_) => {
            *failed_generation = Some(generation);
            // Memoized for `/readyz` (stored as generation + 1 so 0 can
            // mean "none"): the process serves an older replica, and
            // operators can see which rotation went bad.
            shared.failed_reload.store(generation + 1, Ordering::SeqCst);
        }
    }
}

/// A minimal blocking HTTP client for tests, benches, and the chaos
/// harness: one request, `Connection: close`, whole response buffered.
pub mod client {
    use super::*;

    /// A buffered response: status code plus raw body bytes.
    #[derive(Clone, Debug)]
    pub struct Response {
        /// The HTTP status code.
        pub status: u16,
        /// The response body.
        pub body: Vec<u8>,
        /// Raw header lines (request line excluded).
        pub headers: Vec<String>,
    }

    impl Response {
        /// The value of `name` (case-insensitive), when present.
        pub fn header(&self, name: &str) -> Option<&str> {
            self.headers.iter().find_map(|line| {
                let (key, value) = line.split_once(':')?;
                key.trim().eq_ignore_ascii_case(name).then(|| value.trim())
            })
        }
    }

    /// Send one request and read the full response.
    ///
    /// # Errors
    /// IO errors from the socket, or `InvalidData` when the response
    /// does not parse as HTTP.
    pub fn request(addr: &str, method: &str, path: &str, body: &[u8]) -> std::io::Result<Response> {
        request_with_headers(addr, method, path, &[], body)
    }

    /// [`request`] with extra request headers (e.g. `Idempotency-Key`).
    ///
    /// # Errors
    /// Same contract as [`request`].
    pub fn request_with_headers(
        addr: &str,
        method: &str,
        path: &str,
        headers: &[(&str, &str)],
        body: &[u8],
    ) -> std::io::Result<Response> {
        let mut stream = TcpStream::connect(addr)?;
        stream.set_read_timeout(Some(Duration::from_secs(30)))?;
        let mut head = format!(
            "{method} {path} HTTP/1.1\r\nHost: grimp\r\nContent-Length: {}\r\n",
            body.len()
        );
        for (name, value) in headers {
            head.push_str(name);
            head.push_str(": ");
            head.push_str(value);
            head.push_str("\r\n");
        }
        head.push_str("Connection: close\r\n\r\n");
        stream.write_all(head.as_bytes())?;
        stream.write_all(body)?;
        let mut raw = Vec::new();
        stream.read_to_end(&mut raw)?;
        parse_response(&raw)
    }

    /// POST a CSV body to `/impute`.
    ///
    /// # Errors
    /// Same contract as [`request`].
    pub fn impute(addr: &str, csv: &str) -> std::io::Result<Response> {
        request(addr, "POST", "/impute", csv.as_bytes())
    }

    fn parse_response(raw: &[u8]) -> std::io::Result<Response> {
        let bad = |why: &str| std::io::Error::new(std::io::ErrorKind::InvalidData, why.to_string());
        let head_end = raw
            .windows(4)
            .position(|w| w == b"\r\n\r\n")
            .ok_or_else(|| bad("no header terminator"))?;
        let head =
            std::str::from_utf8(&raw[..head_end]).map_err(|_| bad("response head not UTF-8"))?;
        let mut lines = head.split("\r\n");
        let status_line = lines.next().unwrap_or("");
        let status = status_line
            .split(' ')
            .nth(1)
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| bad("bad status line"))?;
        Ok(Response {
            status,
            body: raw[head_end + 4..].to_vec(),
            headers: lines.map(str::to_string).collect(),
        })
    }
}

#[cfg(test)]
mod jitter_tests {
    use super::*;

    #[test]
    fn poll_jitter_is_deterministic_and_bounded() {
        let poll = Duration::from_millis(200);
        for polls in 0..64u64 {
            let a = poll_jitter(9, polls, poll);
            let b = poll_jitter(9, polls, poll);
            assert_eq!(a, b, "same seed and poll count must jitter identically");
            assert!(a <= poll / 4, "jitter stays within a quarter interval");
        }
        // Different seeds decorrelate the fleet: at least one poll differs.
        assert!((0..64u64).any(|p| poll_jitter(9, p, poll) != poll_jitter(10, p, poll)));
    }

    #[test]
    fn poll_jitter_degrades_to_zero_for_tiny_intervals() {
        for ms in 0..4u64 {
            assert_eq!(poll_jitter(1, 7, Duration::from_millis(ms)), Duration::ZERO);
        }
    }
}

//! A minimal, bounded HTTP/1.1 implementation for `grimp serve`.
//!
//! Hand-rolled on purpose: the build environment is offline, so the server
//! speaks just enough HTTP for CSV-in/CSV-out imputation — request line,
//! `Content-Length`-framed bodies, `Connection: close` responses. Every
//! read is bounded (header and body caps) so a hostile client can neither
//! exhaust memory nor hold a worker forever; the socket read timeout is
//! configured by the server and surfaces here as [`HttpError::Timeout`].

use std::fmt;
use std::io::{self, Read, Write};

/// Cap on the request head (request line + headers), in bytes.
pub const MAX_HEAD_BYTES: usize = 8 * 1024;

/// A parsed request: method, path, headers, and the raw body bytes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Request {
    /// The request method, uppercased by the client (`GET`, `POST`, ...).
    pub method: String,
    /// The request target, e.g. `/impute`.
    pub path: String,
    /// Header name/value pairs in arrival order, values trimmed. Bounded
    /// by [`MAX_HEAD_BYTES`] like the rest of the head.
    pub headers: Vec<(String, String)>,
    /// The request body (empty when no `Content-Length` was sent).
    pub body: Vec<u8>,
}

impl Request {
    /// The value of header `name` (case-insensitive), when present.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(key, _)| key.eq_ignore_ascii_case(name))
            .map(|(_, value)| value.as_str())
    }
}

/// How reading a request can fail; each variant maps to a distinct
/// response (or to silently dropping a vanished client).
#[derive(Debug)]
pub enum HttpError {
    /// The socket read timed out: a slow or stalled client (408).
    Timeout,
    /// The connection ended before a full request arrived: nobody is
    /// left to answer, so the worker just drops the socket.
    Torn,
    /// The bytes do not parse as an HTTP request (400).
    Malformed(String),
    /// The declared or actual size exceeds a bound (413 or 431).
    TooLarge(&'static str),
}

impl fmt::Display for HttpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HttpError::Timeout => write!(f, "request read timed out"),
            HttpError::Torn => write!(f, "connection closed mid-request"),
            HttpError::Malformed(why) => write!(f, "malformed request: {why}"),
            HttpError::TooLarge(what) => write!(f, "request too large: {what}"),
        }
    }
}

impl std::error::Error for HttpError {}

fn read_error(e: io::Error) -> HttpError {
    match e.kind() {
        io::ErrorKind::TimedOut | io::ErrorKind::WouldBlock => HttpError::Timeout,
        _ => HttpError::Torn,
    }
}

/// Read one request from `stream`, honouring the head cap and `max_body`.
///
/// # Errors
/// [`HttpError`] as documented on each variant; `max_body` overruns are
/// detected from `Content-Length` before the body is buffered, so an
/// over-budget request never allocates its declared size.
pub fn read_request(stream: &mut dyn Read, max_body: usize) -> Result<Request, HttpError> {
    let mut buf: Vec<u8> = Vec::with_capacity(1024);
    let mut chunk = [0u8; 4096];
    let head_end = loop {
        if let Some(pos) = find_head_end(&buf) {
            break pos;
        }
        if buf.len() > MAX_HEAD_BYTES {
            return Err(HttpError::TooLarge("request head"));
        }
        let n = stream.read(&mut chunk).map_err(read_error)?;
        if n == 0 {
            return Err(if buf.is_empty() {
                // A connection opened and closed without a byte: a
                // health-checker probe, not a torn request.
                HttpError::Malformed("empty connection".to_string())
            } else {
                HttpError::Torn
            });
        }
        buf.extend_from_slice(&chunk[..n]);
    };

    let head = std::str::from_utf8(&buf[..head_end])
        .map_err(|_| HttpError::Malformed("head is not UTF-8".to_string()))?;
    let mut lines = head.split("\r\n");
    let request_line = lines.next().unwrap_or("");
    let mut parts = request_line.split(' ');
    let method = parts
        .next()
        .filter(|m| !m.is_empty() && m.bytes().all(|b| b.is_ascii_uppercase()))
        .ok_or_else(|| HttpError::Malformed(format!("bad request line {request_line:?}")))?;
    let path = parts
        .next()
        .filter(|p| p.starts_with('/'))
        .ok_or_else(|| HttpError::Malformed(format!("bad request line {request_line:?}")))?;
    match parts.next() {
        Some(v) if v.starts_with("HTTP/1.") => {}
        _ => {
            return Err(HttpError::Malformed(format!(
                "bad request line {request_line:?}"
            )))
        }
    }

    let mut content_length = 0usize;
    let mut headers = Vec::new();
    for line in lines {
        let Some((name, value)) = line.split_once(':') else {
            continue;
        };
        if name.trim().eq_ignore_ascii_case("content-length") {
            content_length = value
                .trim()
                .parse()
                .map_err(|_| HttpError::Malformed(format!("bad content-length {value:?}")))?;
        }
        headers.push((name.trim().to_string(), value.trim().to_string()));
    }
    if content_length > max_body {
        return Err(HttpError::TooLarge("request body"));
    }

    let body_start = head_end + 4;
    let mut body = buf[body_start.min(buf.len())..].to_vec();
    if body.len() > content_length {
        return Err(HttpError::Malformed(
            "body longer than content-length".to_string(),
        ));
    }
    while body.len() < content_length {
        let want = (content_length - body.len()).min(chunk.len());
        let n = stream.read(&mut chunk[..want]).map_err(read_error)?;
        if n == 0 {
            return Err(HttpError::Torn);
        }
        body.extend_from_slice(&chunk[..n]);
    }

    Ok(Request {
        method: method.to_string(),
        path: path.to_string(),
        headers,
        body,
    })
}

fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

/// The canonical reason phrase for the status codes the server emits.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        408 => "Request Timeout",
        409 => "Conflict",
        413 => "Payload Too Large",
        422 => "Unprocessable Entity",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        504 => "Gateway Timeout",
        _ => "Unknown",
    }
}

/// Write a complete `Connection: close` response.
///
/// # Errors
/// Propagates socket write errors; the caller decides whether a failed
/// write matters (a vanished client is not a server failure).
pub fn write_response(
    stream: &mut dyn Write,
    status: u16,
    content_type: &str,
    extra_headers: &[(&str, String)],
    body: &[u8],
) -> io::Result<()> {
    let mut head = format!(
        "HTTP/1.1 {status} {}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n",
        reason(status),
        body.len(),
    );
    for (name, value) in extra_headers {
        head.push_str(name);
        head.push_str(": ");
        head.push_str(value);
        head.push_str("\r\n");
    }
    head.push_str("\r\n");
    stream.write_all(head.as_bytes())?;
    stream.write_all(body)?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(bytes: &[u8]) -> Result<Request, HttpError> {
        let mut cursor = io::Cursor::new(bytes.to_vec());
        read_request(&mut cursor, 1024)
    }

    #[test]
    fn parses_a_post_with_body() {
        let req = parse(b"POST /impute HTTP/1.1\r\nContent-Length: 7\r\n\r\na,b\r\n1,").unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/impute");
        assert_eq!(req.body, b"a,b\r\n1,");
    }

    #[test]
    fn headers_are_captured_and_looked_up_case_insensitively() {
        let req = parse(
            b"POST /append HTTP/1.1\r\nIdempotency-Key: k-1\r\nContent-Length: 4\r\n\r\na,b\n",
        )
        .unwrap();
        assert_eq!(req.header("idempotency-key"), Some("k-1"));
        assert_eq!(req.header("IDEMPOTENCY-KEY"), Some("k-1"));
        assert_eq!(req.header("content-length"), Some("4"));
        assert_eq!(req.header("absent"), None);
    }

    #[test]
    fn parses_a_bodyless_get() {
        let req = parse(b"GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/healthz");
        assert!(req.body.is_empty());
    }

    #[test]
    fn garbage_is_malformed_not_a_panic() {
        for bytes in [
            &b"\x00\xffnot http at all\r\n\r\n"[..],
            b"GET\r\n\r\n",
            b"get /x HTTP/1.1\r\n\r\n",
            b"GET nopath HTTP/1.1\r\n\r\n",
            b"GET / SMTP/1.0\r\n\r\n",
            b"POST / HTTP/1.1\r\nContent-Length: banana\r\n\r\n",
        ] {
            match parse(bytes) {
                Err(HttpError::Malformed(_)) => {}
                other => panic!("expected malformed for {bytes:?}, got {other:?}"),
            }
        }
    }

    #[test]
    fn truncated_requests_are_torn() {
        for bytes in [
            &b"POST /impute HTTP/1.1\r\nContent-Leng"[..],
            b"POST /impute HTTP/1.1\r\nContent-Length: 50\r\n\r\nshort",
        ] {
            match parse(bytes) {
                Err(HttpError::Torn) => {}
                other => panic!("expected torn for {bytes:?}, got {other:?}"),
            }
        }
    }

    #[test]
    fn oversized_declared_body_is_rejected_before_buffering() {
        let req = b"POST /impute HTTP/1.1\r\nContent-Length: 99999999\r\n\r\n";
        match parse(req) {
            Err(HttpError::TooLarge("request body")) => {}
            other => panic!("expected too-large, got {other:?}"),
        }
    }

    #[test]
    fn oversized_head_is_rejected() {
        let mut req = b"GET /x HTTP/1.1\r\n".to_vec();
        req.extend(std::iter::repeat_n(b'h', MAX_HEAD_BYTES + 10));
        match parse(&req) {
            Err(HttpError::TooLarge("request head")) => {}
            other => panic!("expected too-large head, got {other:?}"),
        }
    }

    #[test]
    fn responses_are_well_formed() {
        let mut out = Vec::new();
        write_response(
            &mut out,
            503,
            "text/plain",
            &[("Retry-After", "1".to_string())],
            b"busy",
        )
        .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 503 Service Unavailable\r\n"));
        assert!(text.contains("Content-Length: 4\r\n"));
        assert!(text.contains("Retry-After: 1\r\n"));
        assert!(text.contains("Connection: close\r\n"));
        assert!(text.ends_with("\r\n\r\nbusy"));
    }
}

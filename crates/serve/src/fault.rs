//! Deterministic socket-fault injection for the serve layer.
//!
//! The training pipeline's durable writes go through
//! [`grimp_obs::fs::FaultFs`]; this module extends the same idea to the
//! server's sockets. A [`SocketFaultPlan`] (parsed from the
//! `GRIMP_FAULT_SOCKET` spec or `--fault-socket` flag) decides which
//! connections misbehave, and [`FaultStream`] wraps the accepted
//! [`TcpStream`] so the worker sees the injected failure through the
//! ordinary `Read`/`Write` traits:
//!
//! - **torn request** — the client vanishes mid-request: reads return EOF
//!   after the first chunk;
//! - **disconnect mid-response** — the client resets the connection while
//!   the response is being written;
//! - **malformed payload** — the first chunk of request bytes arrives
//!   corrupted (line noise, a proxy bug, a hostile client);
//! - **stalled body** — the client sends the headers then goes silent:
//!   reads after the first chunk time out (the slowloris shape).
//!
//! Decisions depend only on the plan and the accepted-connection index,
//! never on a clock, so chaos runs are reproducible.

use std::io::{self, Read, Write};
use std::net::TcpStream;

/// The four deterministic socket faults the serve chaos matrix injects.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum SocketFaultKind {
    /// Reads return EOF after the first chunk: the request was torn.
    TornRequest,
    /// Writes fail with `ConnectionReset` after the first chunk: the
    /// client disconnected while the response was in flight.
    DisconnectMidResponse,
    /// The first chunk of request bytes is corrupted before the parser
    /// sees it.
    MalformedPayload,
    /// Reads after the first chunk fail with `TimedOut`: a slow client
    /// holding the connection open (slowloris).
    StalledBody,
}

impl SocketFaultKind {
    /// Every kind, in a stable order (the chaos matrix iterates this).
    pub fn all() -> [SocketFaultKind; 4] {
        [
            SocketFaultKind::TornRequest,
            SocketFaultKind::DisconnectMidResponse,
            SocketFaultKind::MalformedPayload,
            SocketFaultKind::StalledBody,
        ]
    }

    /// Stable lowercase label (used by `GRIMP_FAULT_SOCKET` and traces).
    pub fn label(self) -> &'static str {
        match self {
            SocketFaultKind::TornRequest => "torn-request",
            SocketFaultKind::DisconnectMidResponse => "disconnect",
            SocketFaultKind::MalformedPayload => "malformed",
            SocketFaultKind::StalledBody => "stalled",
        }
    }

    /// Inverse of [`SocketFaultKind::label`].
    pub fn from_label(label: &str) -> Option<SocketFaultKind> {
        Some(match label {
            "torn-request" => SocketFaultKind::TornRequest,
            "disconnect" => SocketFaultKind::DisconnectMidResponse,
            "malformed" => SocketFaultKind::MalformedPayload,
            "stalled" => SocketFaultKind::StalledBody,
            _ => return None,
        })
    }

    /// Stable numeric code recorded in `socket_fault` trace events.
    pub fn code(self) -> u64 {
        match self {
            SocketFaultKind::TornRequest => 0,
            SocketFaultKind::DisconnectMidResponse => 1,
            SocketFaultKind::MalformedPayload => 2,
            SocketFaultKind::StalledBody => 3,
        }
    }
}

/// Which accepted connections get a [`SocketFaultKind`] injected.
///
/// Mirrors [`grimp_obs::fs::IoFaultPlan`]: the decision is a pure function
/// of the plan and the 0-based accepted-connection index.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SocketFaultPlan {
    /// The fault to inject.
    pub kind: SocketFaultKind,
    /// First accepted-connection index (0-based) at which faults fire.
    pub from_conn: usize,
    /// How many connections to fault in total (`usize::MAX` = all).
    pub times: usize,
}

impl SocketFaultPlan {
    /// A fault injected into every accepted connection.
    pub fn persistent(kind: SocketFaultKind) -> SocketFaultPlan {
        SocketFaultPlan {
            kind,
            from_conn: 0,
            times: usize::MAX,
        }
    }

    /// Parse a `kind[:times[:from_conn]]` spec, the `GRIMP_FAULT_SOCKET`
    /// format. `times` defaults to persistent.
    pub fn parse(spec: &str) -> Option<SocketFaultPlan> {
        let mut parts = spec.split(':');
        let kind = SocketFaultKind::from_label(parts.next()?.trim())?;
        let times = match parts.next() {
            Some(t) => t.trim().parse().ok()?,
            None => usize::MAX,
        };
        let from_conn = match parts.next() {
            Some(f) => f.trim().parse().ok()?,
            None => 0,
        };
        if parts.next().is_some() {
            return None;
        }
        Some(SocketFaultPlan {
            kind,
            from_conn,
            times,
        })
    }

    /// Whether the `conn`-th accepted connection (0-based) faults.
    pub fn fires_on(&self, conn: usize) -> bool {
        conn >= self.from_conn && conn - self.from_conn < self.times
    }
}

/// A connection stream with an optional injected fault.
///
/// Workers read requests from and write responses to this wrapper; when
/// `fault` is `None` it is a transparent passthrough.
#[derive(Debug)]
pub struct FaultStream {
    inner: TcpStream,
    fault: Option<SocketFaultKind>,
    reads: usize,
    writes: usize,
}

impl FaultStream {
    /// Wrap `inner`, injecting `fault` if the plan fired for this
    /// connection.
    pub fn new(inner: TcpStream, fault: Option<SocketFaultKind>) -> FaultStream {
        FaultStream {
            inner,
            fault,
            reads: 0,
            writes: 0,
        }
    }

    /// The injected fault, if any (recorded in the request trace).
    pub fn fault(&self) -> Option<SocketFaultKind> {
        self.fault
    }

    /// The underlying socket, for timeouts and shutdown.
    pub fn socket(&self) -> &TcpStream {
        &self.inner
    }
}

impl Read for FaultStream {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        let read_index = self.reads;
        self.reads += 1;
        match self.fault {
            Some(SocketFaultKind::TornRequest) if read_index >= 1 => Ok(0),
            Some(SocketFaultKind::StalledBody) if read_index >= 1 => Err(io::Error::new(
                io::ErrorKind::TimedOut,
                "injected stalled body: client went silent",
            )),
            Some(SocketFaultKind::MalformedPayload) if read_index == 0 => {
                let n = self.inner.read(buf)?;
                // Corrupt the content but keep the CRLF framing intact,
                // so the parser sees a complete-but-garbage request
                // instead of an unterminated head.
                for b in buf[..n].iter_mut() {
                    if b.is_ascii_alphanumeric() {
                        *b ^= 0x5a;
                    }
                }
                Ok(n)
            }
            _ => self.inner.read(buf),
        }
    }
}

impl Write for FaultStream {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        let write_index = self.writes;
        self.writes += 1;
        match self.fault {
            Some(SocketFaultKind::DisconnectMidResponse) if write_index >= 1 => {
                Err(io::Error::new(
                    io::ErrorKind::ConnectionReset,
                    "injected disconnect: client reset mid-response",
                ))
            }
            _ => self.inner.write(buf),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_round_trip() {
        for kind in SocketFaultKind::all() {
            assert_eq!(SocketFaultKind::from_label(kind.label()), Some(kind));
        }
        assert_eq!(SocketFaultKind::from_label("nope"), None);
    }

    #[test]
    fn parse_accepts_the_io_fault_spec_shape() {
        assert_eq!(
            SocketFaultPlan::parse("torn-request"),
            Some(SocketFaultPlan::persistent(SocketFaultKind::TornRequest))
        );
        assert_eq!(
            SocketFaultPlan::parse("stalled:3:2"),
            Some(SocketFaultPlan {
                kind: SocketFaultKind::StalledBody,
                times: 3,
                from_conn: 2,
            })
        );
        assert_eq!(SocketFaultPlan::parse("disconnect: 1 : 0"), {
            Some(SocketFaultPlan {
                kind: SocketFaultKind::DisconnectMidResponse,
                times: 1,
                from_conn: 0,
            })
        });
        assert_eq!(SocketFaultPlan::parse(""), None);
        assert_eq!(SocketFaultPlan::parse("torn-request:x"), None);
        assert_eq!(SocketFaultPlan::parse("torn-request:1:2:3"), None);
    }

    #[test]
    fn fires_on_windows_the_connection_index() {
        let plan = SocketFaultPlan {
            kind: SocketFaultKind::TornRequest,
            from_conn: 2,
            times: 2,
        };
        assert!(!plan.fires_on(0));
        assert!(!plan.fires_on(1));
        assert!(plan.fires_on(2));
        assert!(plan.fires_on(3));
        assert!(!plan.fires_on(4));
        assert!(SocketFaultPlan::persistent(SocketFaultKind::StalledBody).fires_on(usize::MAX - 1));
    }
}

//! End-to-end tests against a real listening server: health, imputation,
//! load shedding, memory admission, the injected socket-fault matrix,
//! hot reload, and graceful drain.

use std::path::{Path, PathBuf};
use std::thread;
use std::time::{Duration, Instant};

use grimp::{GrimpConfig, GrimpError, Pipeline, ShutdownFlag};
use grimp_obs::JsonlSink;
use grimp_serve::{client, ModelSource, ServeConfig, Server, SocketFaultKind, SocketFaultPlan};
use grimp_table::csv::{read_csv_str, to_csv_string};
use grimp_table::{inject_mcar, ColumnKind, Schema, Table};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn small_table(n: usize) -> Table {
    let schema = Schema::from_pairs(&[
        ("a", ColumnKind::Categorical),
        ("b", ColumnKind::Categorical),
    ]);
    let mut t = Table::empty(schema);
    for i in 0..n {
        let a = format!("a{}", i % 3);
        let b = format!("b{}", i % 3);
        t.push_str_row(&[Some(&a), Some(&b)]);
    }
    t
}

fn quick_config(seed: u64, dir: &Path) -> GrimpConfig {
    GrimpConfig {
        checkpoint_dir: Some(dir.to_path_buf()),
        ..GrimpConfig::builder()
            .feature_dim(8)
            .gnn(grimp_gnn::GnnConfig {
                layers: 2,
                hidden: 8,
                ..Default::default()
            })
            .merge_hidden(16)
            .embed_dim(8)
            .max_epochs(8)
            .patience(8)
            .learning_rate(2e-2)
            .seed(seed)
            .build()
            .unwrap()
    }
}

/// Fit a model into `dir` and return the serving-ready pieces.
fn fitted_source(name: &str, seed: u64) -> (ModelSource, Table, PathBuf) {
    let dir = std::env::temp_dir().join(format!("grimp-serve-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let mut dirty = small_table(45);
    inject_mcar(&mut dirty, 0.1, &mut StdRng::seed_from_u64(2));
    let pipeline = Pipeline::new(quick_config(seed, &dir)).unwrap();
    pipeline.fit(&dirty).unwrap();
    // The served pipeline must not itself write checkpoints.
    let serving = Pipeline::new(GrimpConfig {
        checkpoint_dir: None,
        ..quick_config(seed, &dir)
    })
    .unwrap();
    (
        ModelSource {
            pipeline: serving,
            train: dirty.clone(),
            checkpoint_dir: dir.clone(),
        },
        dirty,
        dir,
    )
}

struct Running {
    addr: String,
    shutdown: ShutdownFlag,
    handle: thread::JoinHandle<Result<grimp_serve::DrainReport, grimp::GrimpError>>,
    trace_path: PathBuf,
}

impl Running {
    fn start(name: &str, cfg: ServeConfig, source: ModelSource) -> Running {
        let trace_path = std::env::temp_dir().join(format!(
            "grimp-serve-trace-{name}-{}.jsonl",
            std::process::id()
        ));
        let sink = JsonlSink::create(&trace_path).unwrap();
        let shutdown = ShutdownFlag::new();
        let server = Server::bind(cfg, source, shutdown.clone(), Box::new(sink)).unwrap();
        let addr = server.local_addr().unwrap().to_string();
        let handle = thread::spawn(move || server.run());
        Running {
            addr,
            shutdown,
            handle,
            trace_path,
        }
    }

    fn stop(self) -> (grimp_serve::DrainReport, String) {
        self.shutdown.request();
        let report = self
            .handle
            .join()
            .expect("server thread must not panic")
            .expect("server ran to a drain report");
        let trace = std::fs::read_to_string(&self.trace_path).unwrap();
        let _ = std::fs::remove_file(&self.trace_path);
        (report, trace)
    }
}

#[test]
fn serves_impute_health_and_stats_then_drains_clean() {
    let (source, dirty, dir) = fitted_source("basic", 5);
    let running = Running::start("basic", ServeConfig::default(), source);

    let health = client::request(&running.addr, "GET", "/healthz", b"").unwrap();
    assert_eq!((health.status, health.body.as_slice()), (200, &b"ok\n"[..]));

    let res = client::impute(&running.addr, &to_csv_string(&dirty)).unwrap();
    assert_eq!(res.status, 200, "{:?}", String::from_utf8_lossy(&res.body));
    let imputed = read_csv_str(std::str::from_utf8(&res.body).unwrap()).unwrap();
    assert_eq!(imputed.n_missing(), 0, "every hole must be filled");
    assert_eq!(imputed.n_rows(), dirty.n_rows());

    let stats = client::request(&running.addr, "GET", "/stats", b"").unwrap();
    assert_eq!(stats.status, 200);
    let body = String::from_utf8(stats.body).unwrap();
    assert!(body.contains("\"generation\":0"), "{body}");

    let missing = client::request(&running.addr, "GET", "/nope", b"").unwrap();
    assert_eq!(missing.status, 404);

    let (report, trace) = running.stop();
    assert!(report.clean, "drain must finish within the deadline");
    assert!(report.served >= 3, "impute + healthz + stats are all 2xx");
    assert_eq!(report.shed, 0);

    // The trace must parse with the replay reader and carry the serve
    // vocabulary: request spans, outcomes, and the drain bracket.
    let replay = grimp_obs::read_jsonl(&trace).unwrap();
    let has = |name: &str| replay.events.iter().any(|e| e.name == name);
    assert!(has(grimp_obs::names::REQUEST), "request spans");
    assert!(has(grimp_obs::names::QUEUE_WAIT), "queue-wait metrics");
    assert!(has(grimp_obs::names::REQUEST_OUTCOME), "outcome counters");
    assert!(has(grimp_obs::names::DRAIN_BEGIN), "drain_begin");
    assert!(has(grimp_obs::names::DRAIN_END), "drain_end");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn sheds_load_with_503_when_the_queue_is_full() {
    let (source, dirty, dir) = fitted_source("shed", 5);
    let cfg = ServeConfig {
        workers: 1,
        queue_depth: 0,
        ..ServeConfig::default()
    };
    let running = Running::start("shed", cfg, source);

    let res = client::impute(&running.addr, &to_csv_string(&dirty)).unwrap();
    assert_eq!(res.status, 503);
    assert_eq!(res.header("Retry-After"), Some("1"));

    let (report, trace) = running.stop();
    assert!(report.clean);
    assert_eq!(report.shed, 1);
    let replay = grimp_obs::read_jsonl(&trace).unwrap();
    assert!(replay
        .events
        .iter()
        .any(|e| e.name == grimp_obs::names::REQUEST_SHED));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn memory_admission_refuses_over_budget_requests() {
    let (source, dirty, dir) = fitted_source("budget", 5);
    let cfg = ServeConfig {
        memory_budget_bytes: Some(1),
        ..ServeConfig::default()
    };
    let running = Running::start("budget", cfg, source);

    let res = client::impute(&running.addr, &to_csv_string(&dirty)).unwrap();
    assert_eq!(res.status, 503);
    assert_eq!(res.header("Retry-After"), Some("1"));
    let body = String::from_utf8(res.body).unwrap();
    assert!(body.contains("budget"), "{body}");

    let (report, trace) = running.stop();
    assert!(report.clean);
    assert_eq!(report.over_budget, 1);
    let replay = grimp_obs::read_jsonl(&trace).unwrap();
    assert!(replay
        .events
        .iter()
        .any(|e| e.name == grimp_obs::names::REQUEST_OVER_BUDGET));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn malformed_payloads_get_400_not_a_panic() {
    let (source, _dirty, dir) = fitted_source("malformed", 5);
    let running = Running::start("malformed", ServeConfig::default(), source);

    let res = client::impute(&running.addr, "a,b\n\"unterminated").unwrap();
    assert_eq!(res.status, 400);
    let res = client::request(&running.addr, "POST", "/impute", &[0xff, 0xfe, 0x00]).unwrap();
    assert_eq!(res.status, 400, "non-UTF-8 body");

    let (report, _) = running.stop();
    assert!(report.clean);
    let _ = std::fs::remove_dir_all(&dir);
}

/// A request big enough to need more than one socket read, so read-side
/// faults (torn, stalled) trigger on the second read.
fn big_body() -> String {
    let mut csv = "a,b\n".to_string();
    for i in 0..700 {
        csv.push_str(&format!("a{},b{}\n", i % 3, i % 3));
    }
    assert!(csv.len() > 4096);
    csv
}

#[test]
fn injected_socket_faults_never_kill_the_server() {
    for kind in SocketFaultKind::all() {
        let name = format!("fault-{}", kind.label());
        let (source, _dirty, dir) = fitted_source(&name, 5);
        let cfg = ServeConfig {
            fault: Some(SocketFaultPlan {
                kind,
                times: 1,
                from_conn: 0,
            }),
            read_timeout: Duration::from_millis(200),
            ..ServeConfig::default()
        };
        let running = Running::start(&name, cfg, source);

        // Connection 0 gets the fault; the server must absorb it.
        let faulted = client::request(&running.addr, "POST", "/impute", big_body().as_bytes());
        match kind {
            SocketFaultKind::TornRequest => {
                // The server saw EOF mid-request and dropped the socket.
                assert!(faulted.is_err(), "torn request must get no response");
            }
            SocketFaultKind::StalledBody => {
                let res = faulted.expect("stalled body gets a timeout response");
                assert_eq!(res.status, 408);
            }
            SocketFaultKind::MalformedPayload => {
                let res = faulted.expect("corrupted head gets a response");
                assert_eq!(res.status, 400);
            }
            SocketFaultKind::DisconnectMidResponse => {
                // The response write was cut; anything but a server
                // panic is acceptable here.
                let _ = faulted;
            }
        }

        // Connection 1 is past the fault window: normal service resumes.
        let health = client::request(&running.addr, "GET", "/healthz", b"").unwrap();
        assert_eq!(health.status, 200, "{}", kind.label());

        let (report, trace) = running.stop();
        assert!(report.clean, "{}", kind.label());
        let replay = grimp_obs::read_jsonl(&trace).unwrap();
        assert!(
            replay
                .events
                .iter()
                .any(|e| e.name == grimp_obs::names::SOCKET_FAULT && e.value == kind.code() as f64),
            "{} must be recorded in the trace",
            kind.label()
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn checkpoint_rotation_hot_reloads_between_requests() {
    let (source, dirty, dir) = fitted_source("reload", 5);
    let cfg = ServeConfig {
        reload_poll: Duration::from_millis(20),
        ..ServeConfig::default()
    };
    let running = Running::start("reload", cfg, source);

    let res = client::impute(&running.addr, &to_csv_string(&dirty)).unwrap();
    assert_eq!(res.status, 200);

    // A trainer rotates a new generation into the same directory (a
    // different seed produces different weights, same shapes).
    Pipeline::new(quick_config(6, &dir))
        .unwrap()
        .fit(&dirty)
        .unwrap();

    // The trainer checkpoints every epoch, so the watcher may observe
    // several intermediate generations — at least one reload must land.
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let stats = client::request(&running.addr, "GET", "/stats", b"").unwrap();
        let body = String::from_utf8(stats.body).unwrap();
        if !body.contains("\"reloads\":0") && !body.contains("\"generation\":0") {
            break;
        }
        assert!(Instant::now() < deadline, "reload never observed: {body}");
        thread::sleep(Duration::from_millis(20));
    }

    let res = client::impute(&running.addr, &to_csv_string(&dirty)).unwrap();
    assert_eq!(res.status, 200, "the reloaded generation serves");

    let (report, trace) = running.stop();
    assert!(report.clean);
    assert!(report.reloads >= 1);
    let replay = grimp_obs::read_jsonl(&trace).unwrap();
    assert!(replay
        .events
        .iter()
        .any(|e| e.name == grimp_obs::names::MODEL_RELOADED && e.index >= 1));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn binding_without_a_checkpoint_is_a_typed_startup_error() {
    let dir = std::env::temp_dir().join(format!("grimp-serve-nockpt-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let dirty = small_table(20);
    let source = ModelSource {
        pipeline: Pipeline::new(GrimpConfig {
            checkpoint_dir: None,
            ..quick_config(5, &dir)
        })
        .unwrap(),
        train: dirty,
        checkpoint_dir: dir.clone(),
    };
    match Server::bind(
        ServeConfig::default(),
        source,
        ShutdownFlag::new(),
        Box::new(grimp_obs::NullSink),
    ) {
        Err(GrimpError::Checkpoint { .. }) => {}
        Err(e) => panic!("wrong error: {e}"),
        Ok(_) => panic!("bind must fail without a checkpoint"),
    }
}

#[test]
fn drain_finishes_queued_work_before_exiting() {
    let (source, dirty, dir) = fitted_source("drain", 5);
    let cfg = ServeConfig {
        workers: 1,
        ..ServeConfig::default()
    };
    let running = Running::start("drain", cfg, source);
    let csv = to_csv_string(&dirty);

    // Launch a few concurrent imputes and immediately request shutdown:
    // accepted requests must still be answered during the drain.
    let addr = running.addr.clone();
    let clients: Vec<_> = (0..3)
        .map(|_| {
            let addr = addr.clone();
            let csv = csv.clone();
            thread::spawn(move || client::impute(&addr, &csv))
        })
        .collect();
    thread::sleep(Duration::from_millis(50));
    let (report, _) = running.stop();
    assert!(report.clean, "drain must complete");
    for c in clients {
        if let Ok(res) = c.join().unwrap() {
            assert!(
                res.status == 200 || res.status == 503,
                "drained request got {}",
                res.status
            );
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn post_append_grows_the_served_table_and_swaps_the_generation() {
    let (source, dirty, dir) = fitted_source("append", 5);
    let cfg = ServeConfig {
        reload_poll: Duration::from_millis(20),
        ..ServeConfig::default()
    };
    let running = Running::start("append", cfg, source);

    // Mismatched header: rejected before any model work.
    let bad = client::request(&running.addr, "POST", "/append", b"x,y\n1,2\n").unwrap();
    assert_eq!(bad.status, 400, "{:?}", String::from_utf8_lossy(&bad.body));

    // Two rows in the served schema, one hole each.
    let res = client::request(&running.addr, "POST", "/append", b"a,b\na1,\n,b2\n").unwrap();
    assert_eq!(res.status, 200, "{:?}", String::from_utf8_lossy(&res.body));
    let grown = read_csv_str(std::str::from_utf8(&res.body).unwrap()).unwrap();
    assert_eq!(grown.n_rows(), dirty.n_rows() + 2);
    assert_eq!(grown.n_missing(), 0, "the appended holes are filled");

    // The served generation moved to the grown table and its checkpoint.
    let stats = client::request(&running.addr, "GET", "/stats", b"").unwrap();
    let body = String::from_utf8(stats.body).unwrap();
    assert!(body.contains("\"appends\":1"), "{body}");
    assert!(!body.contains("\"generation\":0"), "{body}");

    // The grown table round-trips through the swapped replica.
    let res = client::impute(&running.addr, &to_csv_string(&grown)).unwrap();
    assert_eq!(res.status, 200, "{:?}", String::from_utf8_lossy(&res.body));

    let (report, trace) = running.stop();
    assert!(report.clean);
    assert_eq!(report.appends, 1);
    assert!(
        dir.join(grimp::WAL_APPLIED_FILE).exists(),
        "the append rotated its WAL"
    );
    let replay = grimp_obs::read_jsonl(&trace).unwrap();
    assert!(replay
        .events
        .iter()
        .any(|e| e.name == grimp_obs::names::APPEND));
    // Satellite: the watcher's jittered polls are visible in the trace.
    assert!(replay
        .events
        .iter()
        .any(|e| e.name == grimp_obs::names::RELOAD_POLL));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn a_panicking_handler_gets_500_and_the_worker_is_replaced() {
    let (source, dirty, dir) = fitted_source("panic", 5);
    let cfg = ServeConfig {
        panic_route: true,
        workers: 2,
        ..ServeConfig::default()
    };
    let running = Running::start("panic", cfg, source);

    // The injected panic answers *that* request with a 500 instead of
    // killing the worker thread or the server.
    let res = client::request(&running.addr, "POST", "/panic", b"").unwrap();
    assert_eq!(res.status, 500, "{:?}", String::from_utf8_lossy(&res.body));
    let body = String::from_utf8(res.body).unwrap();
    assert!(body.contains("quarantined"), "{body}");

    // Service continues: the quarantined replica is rebuilt on demand.
    let res = client::impute(&running.addr, &to_csv_string(&dirty)).unwrap();
    assert_eq!(res.status, 200, "{:?}", String::from_utf8_lossy(&res.body));

    let stats = client::request(&running.addr, "GET", "/stats", b"").unwrap();
    let stats_body = String::from_utf8(stats.body).unwrap();
    assert!(stats_body.contains("\"panics\":1"), "{stats_body}");
    assert!(
        stats_body.contains("\"workers_replaced\":1"),
        "{stats_body}"
    );

    let (report, trace) = running.stop();
    assert!(report.clean, "a panic must not wedge the drain");
    assert_eq!(report.panics, 1);
    assert_eq!(report.workers_replaced, 1);
    let replay = grimp_obs::read_jsonl(&trace).unwrap();
    assert!(replay
        .events
        .iter()
        .any(|e| e.name == grimp_obs::names::WORKER_PANIC));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn a_panic_holding_the_append_gate_does_not_wedge_append_or_readyz() {
    let (source, dirty, dir) = fitted_source("gatepoison", 5);
    let cfg = ServeConfig {
        panic_route: true,
        workers: 2,
        ..ServeConfig::default()
    };
    let running = Running::start("gatepoison", cfg, source);

    // Panic while the handler HOLDS the append gate: the unwind poisons
    // the mutex. That request is a 500 like any caught panic…
    let res = client::request(&running.addr, "POST", "/panic", b"append-gate").unwrap();
    assert_eq!(res.status, 500, "{:?}", String::from_utf8_lossy(&res.body));

    // …but the poisoning must not read as "append in progress" forever:
    // readiness recovers, and the next append takes the gate and runs.
    let ready = client::request(&running.addr, "GET", "/readyz", b"").unwrap();
    assert_eq!(
        ready.status,
        200,
        "{:?}",
        String::from_utf8_lossy(&ready.body)
    );
    let body = String::from_utf8(ready.body).unwrap();
    assert!(body.contains("\"append_in_progress\":false"), "{body}");

    let appended = client::request_with_headers(
        &running.addr,
        "POST",
        "/append",
        &[("Idempotency-Key", "after-poison")],
        b"a,b\na1,\n",
    )
    .unwrap();
    assert_eq!(
        appended.status,
        200,
        "{:?}",
        String::from_utf8_lossy(&appended.body)
    );
    let grown = read_csv_str(std::str::from_utf8(&appended.body).unwrap()).unwrap();
    assert_eq!(grown.n_rows(), dirty.n_rows() + 1);

    let (report, _) = running.stop();
    assert!(report.clean);
    assert_eq!(report.appends, 1, "the append ran despite the poisoning");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn readyz_reports_generation_and_pending_wal() {
    let (source, _dirty, dir) = fitted_source("readyz", 5);
    let running = Running::start("readyz", ServeConfig::default(), source);

    let res = client::request(&running.addr, "GET", "/readyz", b"").unwrap();
    assert_eq!(res.status, 200);
    let body = String::from_utf8(res.body).unwrap();
    assert!(body.contains("\"ready\":true"), "{body}");
    assert!(body.contains("\"generation\":0"), "{body}");
    assert!(body.contains("\"pending_wal\":false"), "{body}");
    assert!(body.contains("\"failed_reload_generation\":null"), "{body}");

    // A pending append log left by a crash is visible to orchestrators
    // (informational: readiness itself keys on drain/append state).
    std::fs::write(dir.join(grimp::WAL_FILE), b"GRIMPWAL").unwrap();
    let res = client::request(&running.addr, "GET", "/readyz", b"").unwrap();
    let body = String::from_utf8(res.body).unwrap();
    assert!(body.contains("\"pending_wal\":true"), "{body}");
    std::fs::remove_file(dir.join(grimp::WAL_FILE)).unwrap();

    let (report, _) = running.stop();
    assert!(report.clean);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn keyed_append_replays_from_the_journal_not_the_model() {
    let (source, dirty, dir) = fitted_source("idem", 5);
    let running = Running::start("idem", ServeConfig::default(), source);
    let delta = b"a,b\na1,\n,b2\n";
    let headers: &[(&str, &str)] = &[("Idempotency-Key", "append-42")];

    // Invalid keys are rejected before anything is journaled.
    let bad = client::request_with_headers(
        &running.addr,
        "POST",
        "/append",
        &[("Idempotency-Key", "has space")],
        delta,
    )
    .unwrap();
    assert_eq!(bad.status, 400, "{:?}", String::from_utf8_lossy(&bad.body));

    let first =
        client::request_with_headers(&running.addr, "POST", "/append", headers, delta).unwrap();
    assert_eq!(
        first.status,
        200,
        "{:?}",
        String::from_utf8_lossy(&first.body)
    );
    let grown = read_csv_str(std::str::from_utf8(&first.body).unwrap()).unwrap();
    assert_eq!(grown.n_rows(), dirty.n_rows() + 2);

    // Same key, same body: answered byte-for-byte from the journal,
    // flagged as a replay, and the model is not touched again.
    let second =
        client::request_with_headers(&running.addr, "POST", "/append", headers, delta).unwrap();
    assert_eq!(second.status, 200);
    assert_eq!(second.header("Idempotency-Replay"), Some("true"));
    assert_eq!(second.body, first.body, "recorded response replays");

    // Same key, different body: a client bug, refused loudly.
    let conflict =
        client::request_with_headers(&running.addr, "POST", "/append", headers, b"a,b\na2,\n")
            .unwrap();
    assert_eq!(conflict.status, 422);

    let (report, trace) = running.stop();
    assert!(report.clean);
    assert_eq!(report.appends, 1, "the replay applied nothing");
    let replay = grimp_obs::read_jsonl(&trace).unwrap();
    assert!(replay
        .events
        .iter()
        .any(|e| e.name == grimp_obs::names::IDEM_REPLAY));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn a_dictionary_growing_append_is_refused_before_any_model_work() {
    let (source, dirty, dir) = fitted_source("dictgrow", 5);
    let running = Running::start("dictgrow", ServeConfig::default(), source);

    // "zebra" is not in column a's dictionary: appending it would force a
    // full refit, whose checkpoint a respawned server (which restores
    // against the base table) could never start from. Refused up front —
    // nothing journaled, nothing rotated, no generation bump.
    let refused = client::request_with_headers(
        &running.addr,
        "POST",
        "/append",
        &[("Idempotency-Key", "grow-1")],
        b"a,b\nzebra,b0\n",
    )
    .unwrap();
    assert_eq!(
        refused.status,
        409,
        "{:?}",
        String::from_utf8_lossy(&refused.body)
    );
    assert!(
        String::from_utf8_lossy(&refused.body).contains("grimp append"),
        "the rejection points at the offline flow"
    );
    assert!(
        !dir.join("grimp.idem").exists(),
        "a refused append must not journal its key"
    );

    // The same key is free to retry with a recoverable delta: the 409
    // happened before the idempotency intake, so this is a first use.
    let ok = client::request_with_headers(
        &running.addr,
        "POST",
        "/append",
        &[("Idempotency-Key", "grow-1")],
        b"a,b\na1,b0\n",
    )
    .unwrap();
    assert_eq!(ok.status, 200, "{:?}", String::from_utf8_lossy(&ok.body));
    let grown = read_csv_str(std::str::from_utf8(&ok.body).unwrap()).unwrap();
    assert_eq!(grown.n_rows(), dirty.n_rows() + 1);

    let (report, _) = running.stop();
    assert!(report.clean);
    assert_eq!(report.appends, 1, "only the recoverable delta applied");
    let _ = std::fs::remove_dir_all(&dir);
}

//! Fault-injectable filesystem layer.
//!
//! Every durable write the pipeline performs — checkpoint save/rotate, the
//! JSONL trace stream, the imputed-output CSV — goes through the [`GrimpFs`]
//! trait instead of calling `std::fs` directly. Production code uses
//! [`RealFs`] (a thin passthrough); tests and the chaos harness substitute
//! [`FaultFs`], which injects one of four deterministic fault kinds
//! ([`IoFaultKind`]) according to an [`IoFaultPlan`]:
//!
//! - **ENOSPC** — every mutating operation fails with `ENOSPC` (raw OS
//!   error 28), the canonical full-disk behaviour;
//! - **permission denied** — every mutating operation fails with
//!   [`std::io::ErrorKind::PermissionDenied`];
//! - **torn write** — a write persists only the first half of its bytes and
//!   then fails, simulating a crash mid-write (renames and removes pass
//!   through untouched, so rotation ordering is exercised against partial
//!   files);
//! - **transient** — the first `times` mutating operations fail with
//!   [`std::io::ErrorKind::Interrupted`] and later ones succeed, the shape
//!   retried by [`with_retry`].
//!
//! Reads are never faulted: the fault surface under test is the durable
//! write path (corrupt *reads* are covered by the checkpoint CRC tests).
//! Fault decisions depend only on the plan and the running operation count,
//! so a failing run replays bit-identically.

use std::cell::RefCell;
use std::fs::{File, OpenOptions};
use std::io::{self, BufWriter, Write};
use std::path::Path;
use std::rc::Rc;
use std::time::Duration;

/// Filesystem operations the pipeline needs for durable output. Mutating
/// operations are fallible and fault-injectable; `read` is passthrough.
pub trait GrimpFs {
    /// Read a whole file.
    fn read(&mut self, path: &Path) -> io::Result<Vec<u8>>;

    /// Write a whole file (create or truncate).
    fn write(&mut self, path: &Path, bytes: &[u8]) -> io::Result<()>;

    /// Create a file that must not already exist (`O_EXCL` semantics — the
    /// primitive behind the checkpoint-directory lock) and write `bytes`.
    fn create_new(&mut self, path: &Path, bytes: &[u8]) -> io::Result<()>;

    /// Open a streaming writer (create or truncate), e.g. for a JSONL
    /// trace. Faults on the returned writer surface per `write` call.
    fn open_writer(&mut self, path: &Path) -> io::Result<Box<dyn Write>>;

    /// Rename a file (the atomic-publish half of tmp + rename).
    fn rename(&mut self, from: &Path, to: &Path) -> io::Result<()>;

    /// Remove a file.
    fn remove(&mut self, path: &Path) -> io::Result<()>;

    /// Sync a file's contents to stable storage.
    fn sync(&mut self, path: &Path) -> io::Result<()>;

    /// Create a directory and its parents.
    fn create_dir_all(&mut self, path: &Path) -> io::Result<()>;

    /// Whether `path` exists (passthrough; never faulted).
    fn exists(&mut self, path: &Path) -> bool {
        path.exists()
    }
}

/// The production filesystem: a thin passthrough to `std::fs`.
#[derive(Clone, Copy, Debug, Default)]
pub struct RealFs;

impl GrimpFs for RealFs {
    fn read(&mut self, path: &Path) -> io::Result<Vec<u8>> {
        std::fs::read(path)
    }

    fn write(&mut self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        std::fs::write(path, bytes)
    }

    fn create_new(&mut self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        let mut f = OpenOptions::new().write(true).create_new(true).open(path)?;
        f.write_all(bytes)
    }

    fn open_writer(&mut self, path: &Path) -> io::Result<Box<dyn Write>> {
        Ok(Box::new(BufWriter::new(File::create(path)?)))
    }

    fn rename(&mut self, from: &Path, to: &Path) -> io::Result<()> {
        std::fs::rename(from, to)
    }

    fn remove(&mut self, path: &Path) -> io::Result<()> {
        std::fs::remove_file(path)
    }

    fn sync(&mut self, path: &Path) -> io::Result<()> {
        File::open(path)?.sync_all()
    }

    fn create_dir_all(&mut self, path: &Path) -> io::Result<()> {
        std::fs::create_dir_all(path)
    }
}

/// The four deterministic fault kinds [`FaultFs`] can inject.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum IoFaultKind {
    /// `ENOSPC` (raw OS error 28) on every mutating operation: disk full.
    Enospc,
    /// [`io::ErrorKind::PermissionDenied`] on every mutating operation.
    PermissionDenied,
    /// Writes persist only the first half of their bytes, then fail —
    /// a crash mid-write. Non-write operations pass through.
    TornWrite,
    /// The first `times` mutating operations fail with
    /// [`io::ErrorKind::Interrupted`]; later ones succeed.
    Transient,
}

impl IoFaultKind {
    /// Every kind, in a stable order (the chaos matrix iterates this).
    pub fn all() -> [IoFaultKind; 4] {
        [
            IoFaultKind::Enospc,
            IoFaultKind::PermissionDenied,
            IoFaultKind::TornWrite,
            IoFaultKind::Transient,
        ]
    }

    /// Stable lowercase label (used by `GRIMP_FAULT_FS` and reports).
    pub fn label(self) -> &'static str {
        match self {
            IoFaultKind::Enospc => "enospc",
            IoFaultKind::PermissionDenied => "perm",
            IoFaultKind::TornWrite => "torn",
            IoFaultKind::Transient => "transient",
        }
    }

    /// Inverse of [`IoFaultKind::label`].
    pub fn from_label(label: &str) -> Option<IoFaultKind> {
        Some(match label {
            "enospc" => IoFaultKind::Enospc,
            "perm" => IoFaultKind::PermissionDenied,
            "torn" => IoFaultKind::TornWrite,
            "transient" => IoFaultKind::Transient,
            _ => return None,
        })
    }

    /// Whether only write-shaped operations consume this fault.
    fn writes_only(self) -> bool {
        matches!(self, IoFaultKind::TornWrite)
    }
}

/// When and how often a [`FaultFs`] injects its fault. Decisions depend
/// only on this plan and the mutating-operation count, never on a clock.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct IoFaultPlan {
    /// The fault to inject.
    pub kind: IoFaultKind,
    /// First mutating-operation index (0-based) at which faults fire.
    pub from_op: usize,
    /// How many faults to inject in total (`usize::MAX` = persistent).
    pub times: usize,
}

impl IoFaultPlan {
    /// A fault that fires on every mutating operation, forever.
    pub fn persistent(kind: IoFaultKind) -> IoFaultPlan {
        IoFaultPlan {
            kind,
            from_op: 0,
            times: usize::MAX,
        }
    }

    /// A transient fault: the first `times` operations fail, then succeed.
    pub fn transient(times: usize) -> IoFaultPlan {
        IoFaultPlan {
            kind: IoFaultKind::Transient,
            from_op: 0,
            times,
        }
    }

    /// Parse a `kind[:times[:from_op]]` spec, the `GRIMP_FAULT_FS` format.
    /// `times` defaults to 2 for `transient` and persistent otherwise.
    pub fn parse(spec: &str) -> Option<IoFaultPlan> {
        let mut parts = spec.split(':');
        let kind = IoFaultKind::from_label(parts.next()?.trim())?;
        let default_times = match kind {
            IoFaultKind::Transient => 2,
            _ => usize::MAX,
        };
        let times = match parts.next() {
            Some(t) => t.trim().parse().ok()?,
            None => default_times,
        };
        let from_op = match parts.next() {
            Some(f) => f.trim().parse().ok()?,
            None => 0,
        };
        if parts.next().is_some() {
            return None;
        }
        Some(IoFaultPlan {
            kind,
            from_op,
            times,
        })
    }
}

#[derive(Debug)]
struct FaultState {
    plan: IoFaultPlan,
    ops: usize,
    injected: usize,
}

impl FaultState {
    /// Count one mutating operation and decide whether it faults.
    fn decide(&mut self, is_write: bool) -> Option<IoFaultKind> {
        let op = self.ops;
        self.ops += 1;
        if self.plan.kind.writes_only() && !is_write {
            return None;
        }
        if op >= self.plan.from_op && self.injected < self.plan.times {
            self.injected += 1;
            Some(self.plan.kind)
        } else {
            None
        }
    }
}

fn fault_error(kind: IoFaultKind) -> io::Error {
    match kind {
        IoFaultKind::Enospc => io::Error::from_raw_os_error(28),
        IoFaultKind::PermissionDenied => io::Error::new(
            io::ErrorKind::PermissionDenied,
            "injected permission denied",
        ),
        IoFaultKind::TornWrite => io::Error::new(
            io::ErrorKind::WriteZero,
            "injected torn write: process crashed mid-write",
        ),
        IoFaultKind::Transient => {
            io::Error::new(io::ErrorKind::Interrupted, "injected transient IO error")
        }
    }
}

/// A [`GrimpFs`] that wraps [`RealFs`] and deterministically injects the
/// faults of one [`IoFaultPlan`]. Writers returned by
/// [`GrimpFs::open_writer`] share the operation counter, so a single plan
/// governs an entire run.
#[derive(Debug)]
pub struct FaultFs {
    real: RealFs,
    state: Rc<RefCell<FaultState>>,
}

impl FaultFs {
    /// A faulting filesystem following `plan`.
    pub fn new(plan: IoFaultPlan) -> FaultFs {
        FaultFs {
            real: RealFs,
            state: Rc::new(RefCell::new(FaultState {
                plan,
                ops: 0,
                injected: 0,
            })),
        }
    }

    /// Faults injected so far.
    pub fn injected(&self) -> usize {
        self.state.borrow().injected
    }

    /// Mutating operations seen so far.
    pub fn ops(&self) -> usize {
        self.state.borrow().ops
    }

    fn decide(&mut self, is_write: bool) -> Option<IoFaultKind> {
        self.state.borrow_mut().decide(is_write)
    }

    /// Perform a whole-file write under the fault plan: torn writes
    /// persist the first half of `bytes` before failing.
    fn faulted_write(
        &mut self,
        path: &Path,
        bytes: &[u8],
        do_write: impl FnOnce(&mut RealFs, &Path, &[u8]) -> io::Result<()>,
    ) -> io::Result<()> {
        match self.decide(true) {
            Some(IoFaultKind::TornWrite) => {
                let half = bytes.len() / 2;
                do_write(&mut self.real, path, &bytes[..half])?;
                Err(fault_error(IoFaultKind::TornWrite))
            }
            Some(kind) => Err(fault_error(kind)),
            None => do_write(&mut self.real, path, bytes),
        }
    }
}

impl GrimpFs for FaultFs {
    fn read(&mut self, path: &Path) -> io::Result<Vec<u8>> {
        self.real.read(path)
    }

    fn write(&mut self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        self.faulted_write(path, bytes, |fs, p, b| fs.write(p, b))
    }

    fn create_new(&mut self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        self.faulted_write(path, bytes, |fs, p, b| fs.create_new(p, b))
    }

    fn open_writer(&mut self, path: &Path) -> io::Result<Box<dyn Write>> {
        // Opening counts as one mutating op (it truncates); subsequent
        // writes through the returned handle each count as one more.
        if let Some(kind) = self.decide(true) {
            if kind != IoFaultKind::TornWrite {
                return Err(fault_error(kind));
            }
        }
        let inner = self.real.open_writer(path)?;
        Ok(Box::new(FaultWriter {
            inner,
            state: Rc::clone(&self.state),
        }))
    }

    fn rename(&mut self, from: &Path, to: &Path) -> io::Result<()> {
        match self.decide(false) {
            Some(kind) => Err(fault_error(kind)),
            None => self.real.rename(from, to),
        }
    }

    fn remove(&mut self, path: &Path) -> io::Result<()> {
        match self.decide(false) {
            Some(kind) => Err(fault_error(kind)),
            None => self.real.remove(path),
        }
    }

    fn sync(&mut self, path: &Path) -> io::Result<()> {
        match self.decide(false) {
            Some(kind) => Err(fault_error(kind)),
            None => self.real.sync(path),
        }
    }

    fn create_dir_all(&mut self, path: &Path) -> io::Result<()> {
        match self.decide(false) {
            Some(kind) => Err(fault_error(kind)),
            None => self.real.create_dir_all(path),
        }
    }
}

/// Streaming writer handed out by [`FaultFs::open_writer`]; shares the
/// fault plan's operation counter with the filesystem that created it.
struct FaultWriter {
    inner: Box<dyn Write>,
    state: Rc<RefCell<FaultState>>,
}

impl Write for FaultWriter {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self.state.borrow_mut().decide(true) {
            Some(IoFaultKind::TornWrite) => {
                let half = buf.len() / 2;
                self.inner.write_all(&buf[..half])?;
                Err(fault_error(IoFaultKind::TornWrite))
            }
            Some(kind) => Err(fault_error(kind)),
            None => self.inner.write(buf),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }
}

/// Whether an IO error is worth retrying (the shape [`FaultFs`] injects
/// for [`IoFaultKind::Transient`]).
pub fn is_transient(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::Interrupted | io::ErrorKind::TimedOut | io::ErrorKind::WouldBlock
    )
}

/// Default attempt count for [`with_retry`].
pub const IO_RETRY_ATTEMPTS: usize = 3;

/// SplitMix64: the retry jitter's deterministic bit mixer (the same
/// construction the serve watcher uses for its reload-poll jitter).
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// The deterministic extra wait added to retry number `attempt` when the
/// base backoff is `delay_ms`: a pure function of `(seed, attempt)` in
/// `[0, delay_ms / 4]` milliseconds. A fleet of replicas hammering the
/// same flaky filesystem decorrelates by seed instead of doubling in
/// lockstep, yet any single run replays its exact sleep schedule.
pub fn retry_jitter(seed: u64, attempt: u64, delay_ms: u64) -> Duration {
    let quarter = delay_ms / 4;
    if quarter == 0 {
        return Duration::ZERO;
    }
    Duration::from_millis(splitmix64(seed ^ attempt.wrapping_mul(0x9E37_79B9)) % (quarter + 1))
}

/// Run `f`, retrying transient IO errors up to `attempts` times with a
/// deterministic doubling backoff (1 ms, 2 ms, 4 ms, … capped at 64 ms)
/// plus the seed-0 [`retry_jitter`]. Non-transient errors return
/// immediately.
pub fn with_retry<T, F: FnMut() -> io::Result<T>>(attempts: usize, f: F) -> io::Result<T> {
    with_retry_capped(attempts, None, f)
}

/// [`with_retry`] with a total-elapsed cap: once `cap` wall-clock time has
/// passed (checked *between* attempts, before each backoff sleep), the
/// last transient error is returned instead of sleeping again. This is how
/// a governor deadline reaches the retry loop — a run whose budget is
/// nearly spent must not burn the remainder sleeping on a flaky disk.
/// `cap: None` never gives up early. The first attempt always runs, so an
/// already-expired cap degrades to a single try, not to a synthetic error.
pub fn with_retry_capped<T, F: FnMut() -> io::Result<T>>(
    attempts: usize,
    cap: Option<Duration>,
    f: F,
) -> io::Result<T> {
    with_retry_seeded(attempts, cap, 0, f)
}

/// [`with_retry_capped`] with an explicit jitter seed: each backoff sleep
/// is the doubling base delay plus [`retry_jitter`]`(seed, attempt, base)`.
/// The same seed replays the same sleep schedule bit for bit, so
/// fault-injection tests stay deterministic while differently-seeded
/// replicas spread their retries apart.
pub fn with_retry_seeded<T, F: FnMut() -> io::Result<T>>(
    attempts: usize,
    cap: Option<Duration>,
    seed: u64,
    mut f: F,
) -> io::Result<T> {
    let attempts = attempts.max(1);
    let start = std::time::Instant::now();
    let mut delay_ms = 1u64;
    let mut attempt = 0;
    loop {
        attempt += 1;
        match f() {
            Ok(v) => return Ok(v),
            Err(e) if is_transient(&e) && attempt < attempts => {
                if cap.is_some_and(|cap| start.elapsed() >= cap) {
                    return Err(e);
                }
                let jitter = retry_jitter(seed, attempt as u64, delay_ms);
                std::thread::sleep(Duration::from_millis(delay_ms) + jitter);
                delay_ms = (delay_ms * 2).min(64);
            }
            Err(e) => return Err(e),
        }
    }
}

/// Write `bytes` to `path` atomically: write a `.tmp` sibling, then rename
/// over the destination. A crash mid-write leaves either the old file or
/// nothing — never a truncated `path`. Transient faults are retried.
pub fn atomic_write(fs: &mut dyn GrimpFs, path: &Path, bytes: &[u8]) -> io::Result<()> {
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(".tmp");
    let tmp = std::path::PathBuf::from(tmp);
    with_retry(IO_RETRY_ATTEMPTS, || fs.write(&tmp, bytes))?;
    with_retry(IO_RETRY_ATTEMPTS, || fs.rename(&tmp, path))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("grimp-fs-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("create tmpdir");
        dir
    }

    #[test]
    fn real_fs_roundtrips() {
        let dir = tmpdir("real");
        let mut fs = RealFs;
        let a = dir.join("a.bin");
        let b = dir.join("b.bin");
        fs.write(&a, b"hello").expect("write");
        assert_eq!(fs.read(&a).expect("read"), b"hello");
        fs.rename(&a, &b).expect("rename");
        assert!(!fs.exists(&a) && fs.exists(&b));
        fs.remove(&b).expect("remove");
        assert!(!fs.exists(&b));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn create_new_refuses_existing_files() {
        let dir = tmpdir("createnew");
        let mut fs = RealFs;
        let p = dir.join("lock");
        fs.create_new(&p, b"1").expect("first create");
        let err = fs.create_new(&p, b"2").expect_err("second create");
        assert_eq!(err.kind(), io::ErrorKind::AlreadyExists);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn enospc_faults_every_mutating_op_and_spares_reads() {
        let dir = tmpdir("enospc");
        let pre = dir.join("pre.bin");
        std::fs::write(&pre, b"data").expect("seed file");
        let mut fs = FaultFs::new(IoFaultPlan::persistent(IoFaultKind::Enospc));
        let err = fs.write(&dir.join("x"), b"x").expect_err("write faults");
        assert_eq!(err.raw_os_error(), Some(28));
        assert!(fs.rename(&pre, &dir.join("y")).is_err());
        assert!(fs.remove(&pre).is_err());
        assert_eq!(fs.read(&pre).expect("reads pass"), b"data");
        assert_eq!(fs.injected(), 3);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_write_persists_half_the_bytes_then_fails() {
        let dir = tmpdir("torn");
        let p = dir.join("torn.bin");
        let mut fs = FaultFs::new(IoFaultPlan::persistent(IoFaultKind::TornWrite));
        let err = fs.write(&p, b"0123456789").expect_err("torn write fails");
        assert_eq!(err.kind(), io::ErrorKind::WriteZero);
        assert_eq!(std::fs::read(&p).expect("half on disk"), b"01234");
        // Renames pass through untouched under a torn-write plan.
        fs.rename(&p, &dir.join("moved.bin"))
            .expect("rename passes");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn transient_fails_n_times_then_succeeds() {
        let dir = tmpdir("transient");
        let p = dir.join("t.bin");
        let mut fs = FaultFs::new(IoFaultPlan::transient(2));
        assert!(fs.write(&p, b"a").is_err());
        assert!(fs.write(&p, b"a").is_err());
        fs.write(&p, b"a").expect("third attempt succeeds");
        assert_eq!(fs.injected(), 2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn retry_jitter_is_deterministic_bounded_and_seed_sensitive() {
        for attempt in 0..64u64 {
            let a = retry_jitter(9, attempt, 64);
            let b = retry_jitter(9, attempt, 64);
            assert_eq!(a, b, "same seed and attempt must jitter identically");
            assert!(a <= Duration::from_millis(16), "jitter stays in delay/4");
        }
        // Different seeds decorrelate the fleet: at least one attempt differs.
        assert!((0..64u64).any(|a| retry_jitter(9, a, 64) != retry_jitter(10, a, 64)));
        // Tiny delays degrade to zero jitter, keeping 1–2 ms backoffs tight.
        for delay in 0..4u64 {
            assert_eq!(retry_jitter(1, 7, delay), Duration::ZERO);
        }
    }

    #[test]
    fn with_retry_recovers_from_transient_faults_only() {
        let dir = tmpdir("retry");
        let p = dir.join("r.bin");
        let mut fs = FaultFs::new(IoFaultPlan::transient(2));
        with_retry(IO_RETRY_ATTEMPTS, || fs.write(&p, b"ok")).expect("retry wins");
        assert_eq!(std::fs::read(&p).expect("file"), b"ok");

        let mut fs = FaultFs::new(IoFaultPlan::persistent(IoFaultKind::PermissionDenied));
        let err = with_retry(IO_RETRY_ATTEMPTS, || fs.write(&p, b"no")).expect_err("no retry");
        assert_eq!(err.kind(), io::ErrorKind::PermissionDenied);
        // Persistent errors are not retried: exactly one attempt consumed.
        assert_eq!(fs.ops(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn capped_retry_gives_up_once_the_budget_is_spent() {
        // An expired cap (a governor deadline already blown) still runs the
        // first attempt, but never sleeps into a second one.
        let mut calls = 0;
        let err = with_retry_capped(IO_RETRY_ATTEMPTS, Some(Duration::ZERO), || {
            calls += 1;
            Err::<(), _>(io::Error::new(io::ErrorKind::Interrupted, "flaky"))
        })
        .expect_err("budget spent");
        assert!(is_transient(&err));
        assert_eq!(calls, 1, "no retry after the cap expired");

        // A generous cap behaves exactly like the uncapped retry loop.
        let mut calls = 0;
        with_retry_capped(IO_RETRY_ATTEMPTS, Some(Duration::from_secs(60)), || {
            calls += 1;
            if calls < 3 {
                Err(io::Error::new(io::ErrorKind::Interrupted, "flaky"))
            } else {
                Ok(())
            }
        })
        .expect("retry wins under a roomy cap");
        assert_eq!(calls, 3);
    }

    #[test]
    fn capped_retry_still_fails_fast_on_persistent_errors() {
        let mut calls = 0;
        let err = with_retry_capped(IO_RETRY_ATTEMPTS, Some(Duration::from_secs(60)), || {
            calls += 1;
            Err::<(), _>(io::Error::new(io::ErrorKind::PermissionDenied, "no"))
        })
        .expect_err("persistent error");
        assert_eq!(err.kind(), io::ErrorKind::PermissionDenied);
        assert_eq!(calls, 1);
    }

    #[test]
    fn fault_writer_shares_the_plan_counter() {
        let dir = tmpdir("writer");
        let p = dir.join("w.jsonl");
        // One transient fault: the open consumes it, writes then succeed.
        let mut fs = FaultFs::new(IoFaultPlan::transient(1));
        let err = match fs.open_writer(&p) {
            Err(e) => e,
            Ok(_) => panic!("open must fault"),
        };
        assert!(is_transient(&err));
        let mut w = fs.open_writer(&p).expect("second open passes");
        w.write_all(b"line\n").expect("write passes");
        w.flush().expect("flush");
        drop(w);
        assert_eq!(std::fs::read(&p).expect("file"), b"line\n");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn atomic_write_never_leaves_a_truncated_destination() {
        let dir = tmpdir("atomic");
        let p = dir.join("out.csv");
        let mut fs = RealFs;
        atomic_write(&mut fs, &p, b"v1").expect("first write");
        assert_eq!(std::fs::read(&p).expect("file"), b"v1");

        // A torn write faults the tmp file; the destination keeps v1.
        let mut faulty = FaultFs::new(IoFaultPlan::persistent(IoFaultKind::TornWrite));
        assert!(atomic_write(&mut faulty, &p, b"v2-much-longer").is_err());
        assert_eq!(std::fs::read(&p).expect("file intact"), b"v1");

        // Transient faults are absorbed by the built-in retry.
        let mut flaky = FaultFs::new(IoFaultPlan::transient(2));
        atomic_write(&mut flaky, &p, b"v3").expect("retried write");
        assert_eq!(std::fs::read(&p).expect("file"), b"v3");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn plan_specs_parse_and_reject() {
        assert_eq!(
            IoFaultPlan::parse("enospc"),
            Some(IoFaultPlan::persistent(IoFaultKind::Enospc))
        );
        assert_eq!(
            IoFaultPlan::parse("transient"),
            Some(IoFaultPlan::transient(2))
        );
        assert_eq!(
            IoFaultPlan::parse("torn:1:5"),
            Some(IoFaultPlan {
                kind: IoFaultKind::TornWrite,
                from_op: 5,
                times: 1,
            })
        );
        for bad in ["", "eio", "enospc:x", "enospc:1:2:3"] {
            assert_eq!(IoFaultPlan::parse(bad), None, "{bad:?}");
        }
        for kind in IoFaultKind::all() {
            assert_eq!(IoFaultKind::from_label(kind.label()), Some(kind));
        }
    }
}

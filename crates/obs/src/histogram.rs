//! A fixed-size log₂-bucketed histogram for latency-style measurements.
//!
//! Values (typically nanoseconds) land in bucket `floor(log2(v)) + 1`;
//! zero gets bucket 0. With 64 buckets the histogram covers the full
//! `u64` range with at most 2× relative error on quantiles, uses no
//! heap allocation beyond the struct itself, and merges in O(buckets).

/// Number of buckets: one for zero plus one per possible bit-width.
pub const BUCKETS: usize = 65;

/// Log₂-bucketed histogram with exact count/sum/min/max.
#[derive(Clone, Debug)]
pub struct Histogram {
    buckets: [u64; BUCKETS],
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram {
            buckets: [0; BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    fn bucket_of(value: u64) -> usize {
        if value == 0 {
            0
        } else {
            (64 - value.leading_zeros()) as usize
        }
    }

    /// Lower bound (inclusive) of the values a bucket covers.
    fn bucket_floor(bucket: usize) -> u64 {
        match bucket {
            0 => 0,
            b => 1u64 << (b - 1),
        }
    }

    /// Record one observation.
    pub fn record(&mut self, value: u64) {
        self.buckets[Self::bucket_of(value)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Exact sum of all observations (saturating on overflow).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest observation, or 0 when empty.
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest observation, or 0 when empty.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Exact arithmetic mean, or 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Approximate quantile `q` in `[0, 1]`: the floor of the bucket
    /// holding the q-th observation, clamped to the exact min/max so
    /// `quantile(0.0)` and `quantile(1.0)` are exact.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        if q >= 1.0 {
            return self.max;
        }
        let rank = ((q * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (b, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return Self::bucket_floor(b).clamp(self.min(), self.max);
            }
        }
        self.max
    }

    /// Fold another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Non-empty buckets as `(bucket_floor, count)` pairs.
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &n)| n > 0)
            .map(|(b, &n)| (Self::bucket_floor(b), n))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_reports_zeros() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.sum(), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.quantile(0.5), 0);
    }

    #[test]
    fn exact_stats_and_bucketing() {
        let mut h = Histogram::new();
        for v in [0u64, 1, 2, 3, 1000, u64::MAX] {
            h.record(v);
        }
        assert_eq!(h.count(), 6);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), u64::MAX);
        // 0 → bucket 0; 1 → bucket 1; 2,3 → bucket 2; 1000 → bucket 10.
        let nz = h.nonzero_buckets();
        assert_eq!(nz[0], (0, 1));
        assert_eq!(nz[1], (1, 1));
        assert_eq!(nz[2], (2, 2));
        assert_eq!(nz[3], (512, 1));
    }

    #[test]
    fn quantiles_bracket_the_distribution() {
        let mut h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        assert_eq!(h.quantile(0.0), 1);
        assert_eq!(h.quantile(1.0), 1000);
        let p50 = h.quantile(0.5);
        // Bucket floor of 500 is 256; log2 buckets give ≤2x error.
        assert!((256..=512).contains(&p50), "p50 = {p50}");
    }

    #[test]
    fn merge_combines_everything() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        a.record(5);
        b.record(100);
        b.record(7);
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.sum(), 112);
        assert_eq!(a.min(), 5);
        assert_eq!(a.max(), 100);
    }
}

//! Named crashpoints: deterministic kill -9 at state-mutating boundaries.
//!
//! The crash-only serving contract ("every failure is absorbed, restarted,
//! or provably idempotent") is only testable if a harness can kill the
//! process at *exactly* the boundary it wants to probe. This module names
//! every state-mutating boundary in the serve/append path and lets the
//! chaos harness arm one of them through the environment, the same way
//! `GRIMP_FAULT_FS` and `GRIMP_FAULT_SOCKET` drive the other two fault
//! layers — compiled into release builds, zero-cost when unarmed.
//!
//! A fired crashpoint calls [`std::process::abort`]: no unwinding, no
//! `Drop`, no atexit — the closest in-process stand-in for `kill -9`.
//!
//! Spec grammar for [`CRASHPOINT_ENV`]:
//!
//! - `NAME` — abort every time `NAME` is reached (single-shot processes,
//!   unit tests);
//! - `NAME@ARMFILE` — abort the first time `NAME` is reached *while
//!   `ARMFILE` exists*, consuming the file atomically first. A supervisor
//!   that respawns the crashed child inherits the same environment, but
//!   the arm file is gone, so the respawned process runs clean — this is
//!   how the crashpoint sweep kills a supervised server exactly once per
//!   point.

use std::path::Path;

/// Environment variable carrying a crashpoint spec (`name[@armfile]`).
pub const CRASHPOINT_ENV: &str = "GRIMP_CRASHPOINT";

/// The append WAL segment became durable (`grimp.wal` published); the
/// rows exist on disk but nothing has trained or acknowledged yet.
pub const WAL_PUBLISH: &str = "wal-publish";

/// An `Idempotency-Key` was journaled durably, before any model work.
pub const IDEM_JOURNAL: &str = "idem-journal";

/// A training checkpoint rotation (`grimp.ckpt` atomic replace) landed.
pub const CHECKPOINT_ROTATE: &str = "checkpoint-rotate";

/// An append finished on disk and is about to swap the served
/// blob + table + generation — the response has not been written.
pub const GENERATION_SWAP: &str = "generation-swap";

/// The applied WAL rotation (`grimp.wal` → `grimp.wal.applied`) landed;
/// a replay of the same rows now starts from a blank log.
pub const APPLIED_ROTATE: &str = "applied-rotate";

/// Every registered crashpoint, in serve/append execution order. The
/// chaos sweep iterates this list; adding a boundary here adds it to the
/// sweep automatically.
pub const ALL: &[&str] = &[
    IDEM_JOURNAL,
    WAL_PUBLISH,
    CHECKPOINT_ROTATE,
    APPLIED_ROTATE,
    GENERATION_SWAP,
];

/// Split a spec into its crashpoint name and optional arm-file path.
pub fn parse_spec(spec: &str) -> (&str, Option<&Path>) {
    match spec.split_once('@') {
        Some((name, armfile)) if !armfile.is_empty() => (name, Some(Path::new(armfile))),
        _ => (spec, None),
    }
}

/// Declare that execution reached the crashpoint `name`; aborts the
/// process when [`CRASHPOINT_ENV`] arms that name (see the module docs
/// for the spec grammar). The environment is consulted on every call —
/// these sit on cold, state-mutating paths, never in a hot loop.
pub fn hit(name: &str) {
    let Ok(spec) = std::env::var(CRASHPOINT_ENV) else {
        return;
    };
    let (armed, armfile) = parse_spec(&spec);
    if armed != name {
        return;
    }
    if let Some(armfile) = armfile {
        // Atomic consume: of all processes racing to this point, exactly
        // the one whose remove succeeds aborts; respawns run clean.
        if std::fs::remove_file(armfile).is_err() {
            return;
        }
    }
    std::process::abort();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn specs_parse_into_name_and_arm_file() {
        assert_eq!(parse_spec("wal-publish"), ("wal-publish", None));
        let (name, armfile) = parse_spec("generation-swap@/tmp/arm");
        assert_eq!(name, "generation-swap");
        assert_eq!(armfile, Some(Path::new("/tmp/arm")));
        // A trailing '@' is not an arm file.
        assert_eq!(parse_spec("x@"), ("x@", None));
    }

    #[test]
    fn the_registry_is_deduplicated_and_nonempty() {
        assert!(!ALL.is_empty());
        for (i, a) in ALL.iter().enumerate() {
            for b in &ALL[i + 1..] {
                assert_ne!(a, b, "duplicate crashpoint name");
            }
        }
    }

    #[test]
    fn an_unarmed_hit_is_a_no_op() {
        // CRASHPOINT_ENV is not set under `cargo test`; reaching any
        // registered point must be free.
        for name in ALL {
            hit(name);
        }
    }
}

//! Replay a JSONL trace back into [`Event`]s.
//!
//! The inverse of [`crate::JsonlSink`]: each line parses back into one
//! event, with names interned against [`crate::names`] (an [`Event`]'s
//! name is `&'static str`). The parser is crash-tolerant by design — a
//! process killed mid-write leaves a torn final line behind, and a trace
//! that recorded a real run must still replay. A torn *trailing* line is
//! skipped and counted in [`Replay::torn_lines`]; a malformed line
//! anywhere else is genuine corruption and stays a hard error.

use crate::{json, names, Event, EventKind};

/// A replayed trace: the events plus what the parser had to tolerate.
#[derive(Clone, Debug, Default)]
pub struct Replay {
    /// The replayed events, in file order.
    pub events: Vec<Event>,
    /// Torn (partial) trailing lines skipped — 0 on a clean trace, 1 after
    /// a crash mid-write. A warning counter, never an error.
    pub torn_lines: usize,
    /// Events whose recorded name is not in the [`names`] vocabulary;
    /// they replay under [`names::UNKNOWN`].
    pub unknown_names: usize,
}

/// Why a trace failed to replay.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ReplayError {
    /// 1-based line number of the offending line.
    pub line: usize,
    /// What was wrong with it.
    pub message: String,
}

impl std::fmt::Display for ReplayError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "trace line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ReplayError {}

/// Parse one well-formed JSONL line into an event.
fn event_from_line(line: &str) -> Result<Event, String> {
    let v = json::parse(line).map_err(|e| e.to_string())?;
    let kind = v
        .get("kind")
        .and_then(json::Json::as_str)
        .and_then(EventKind::from_label)
        .ok_or("missing or unknown \"kind\"")?;
    let name = v
        .get("name")
        .and_then(json::Json::as_str)
        .ok_or("missing \"name\"")?;
    let t_ns = v
        .get("t")
        .and_then(json::Json::as_u64)
        .ok_or("missing \"t\"")?;
    let index = v
        .get("i")
        .and_then(json::Json::as_u64)
        .ok_or("missing \"i\"")?;
    // Non-finite metric values serialize as `null` (JSON has no NaN);
    // they replay as NaN, which is what the writer saw.
    let value = match v.get("v") {
        Some(json::Json::Null) => f64::NAN,
        Some(n) => n.as_f64().ok_or("\"v\" is not a number")?,
        None => return Err("missing \"v\"".to_string()),
    };
    Ok(Event {
        t_ns,
        kind,
        name: names::lookup(name).unwrap_or(names::UNKNOWN),
        index,
        value,
    })
}

/// Replay a JSONL trace.
///
/// A line that fails to parse is tolerated — skipped, with
/// [`Replay::torn_lines`] incremented — only when it is the *last*
/// non-empty line of the text (the signature of a crash mid-write).
///
/// # Errors
/// [`ReplayError`] on a malformed line that is not the trailing one:
/// that is corruption, not a torn write.
pub fn read_jsonl(text: &str) -> Result<Replay, ReplayError> {
    let lines: Vec<(usize, &str)> = text
        .lines()
        .enumerate()
        .filter(|(_, l)| !l.trim().is_empty())
        .collect();
    let mut replay = Replay::default();
    let last = lines.len().saturating_sub(1);
    for (pos, (line_no, line)) in lines.iter().enumerate() {
        match event_from_line(line) {
            Ok(e) => {
                if e.name == names::UNKNOWN {
                    replay.unknown_names += 1;
                }
                replay.events.push(e);
            }
            Err(_) if pos == last => replay.torn_lines += 1,
            Err(message) => {
                return Err(ReplayError {
                    line: line_no + 1,
                    message,
                })
            }
        }
    }
    Ok(replay)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{JsonlSink, Trace};

    fn trace_text() -> String {
        let mut sink = JsonlSink::new(Vec::new());
        {
            let mut trace = Trace::new(&mut sink);
            let fit = trace.enter(names::FIT, 0);
            trace.metric(names::TRAIN_LOSS, 0, 1.25);
            trace.counter(names::EPOCH_ALLOCS, 2, 7);
            trace.exit_with(names::FIT, 0, fit, 0.5);
        }
        String::from_utf8(sink.into_inner().expect("no io errors")).expect("utf8")
    }

    #[test]
    fn clean_traces_replay_exactly() {
        let text = trace_text();
        let replay = read_jsonl(&text).expect("clean trace");
        assert_eq!(replay.torn_lines, 0);
        assert_eq!(replay.unknown_names, 0);
        assert_eq!(replay.events.len(), 4);
        assert_eq!(replay.events[0].kind, EventKind::SpanEnter);
        assert_eq!(replay.events[0].name, names::FIT);
        assert_eq!(replay.events[1].value, 1.25);
        assert_eq!(replay.events[2].index, 2);
        assert_eq!(replay.events[3].value, 0.5);
    }

    #[test]
    fn torn_trailing_line_is_skipped_with_a_counter() {
        let mut text = trace_text();
        // Simulate a crash mid-write: the last line is cut short.
        text.truncate(text.len() - 20);
        let replay = read_jsonl(&text).expect("torn tail tolerated");
        assert_eq!(replay.torn_lines, 1);
        assert_eq!(replay.events.len(), 3);
    }

    #[test]
    fn torn_middle_line_is_a_hard_error() {
        let text = trace_text();
        let mut lines: Vec<&str> = text.lines().collect();
        lines[1] = "{\"t\":12,\"kind\":\"met";
        let corrupt = lines.join("\n");
        let err = read_jsonl(&corrupt).expect_err("mid-file corruption");
        assert_eq!(err.line, 2);
    }

    #[test]
    fn null_values_replay_as_nan() {
        let text = "{\"t\":1,\"kind\":\"metric\",\"name\":\"train_loss\",\"i\":0,\"v\":null}\n";
        let replay = read_jsonl(text).expect("parses");
        assert!(replay.events[0].value.is_nan());
    }

    #[test]
    fn unknown_names_replay_under_the_placeholder() {
        let text = "{\"t\":1,\"kind\":\"counter\",\"name\":\"from_the_future\",\"i\":0,\"v\":1}\n";
        let replay = read_jsonl(text).expect("parses");
        assert_eq!(replay.unknown_names, 1);
        assert_eq!(replay.events[0].name, names::UNKNOWN);
    }

    #[test]
    fn empty_text_replays_to_nothing() {
        let replay = read_jsonl("").expect("empty ok");
        assert!(replay.events.is_empty());
        assert_eq!(replay.torn_lines, 0);
    }
}

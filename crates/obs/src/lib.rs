//! # grimp-obs
//!
//! Dependency-free structured observability for the GRIMP stack.
//!
//! The model of this crate is a flat, allocation-free **event stream**:
//! every instrumented phase of a run (graph build, feature init, each
//! training epoch and its forward/backward/optim sub-phases, per-task
//! losses, checkpoint I/O, recovery, imputation) emits [`Event`]s into an
//! [`EventSink`]. Three primitives cover everything:
//!
//! - **spans** — paired [`EventKind::SpanEnter`]/[`EventKind::SpanExit`]
//!   events carrying monotonic nanosecond timestamps; the exit event's
//!   `value` is the span duration in seconds;
//! - **counters** — monotone integral facts (`epoch_allocs`,
//!   `checkpoint_bytes`, `graph_nodes`);
//! - **metrics** — floating-point observations (`train_loss`, `grad_norm`,
//!   per-task losses), with [`Histogram`] available for aggregation.
//!
//! Sinks:
//!
//! - [`NullSink`] — reports itself disabled, so a [`Trace`] built on it
//!   performs **no clock reads, no virtual calls, and no allocations** in
//!   the hot path (verified by a counting-global-allocator test);
//! - [`MemorySink`] — buffers events in memory for tests and aggregation;
//! - [`JsonlSink`] — streams events as JSON Lines to any writer, using the
//!   hand-rolled serializer in [`json`] (parseable back with
//!   [`json::parse`]);
//! - [`FanoutSink`] — tees one stream into several sinks.
//!
//! Events carry `&'static str` names and plain numbers only — no `String`
//! payloads — so recording an event never allocates. The canonical names
//! used by the GRIMP pipeline live in [`names`].

#![warn(missing_docs)]
#![cfg_attr(not(test), warn(clippy::unwrap_used))]

pub mod crashpoint;
pub mod fs;
pub mod histogram;
pub mod json;
pub mod replay;
mod sink;

pub use fs::{FaultFs, GrimpFs, IoFaultKind, IoFaultPlan, RealFs};
pub use histogram::Histogram;
pub use replay::{read_jsonl, Replay, ReplayError};
pub use sink::{FanoutSink, JsonlSink, MemorySink};

use std::time::Instant;

/// The four event primitives.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum EventKind {
    /// A phase began. `t_ns` is the enter time.
    SpanEnter,
    /// A phase ended. `value` is the phase duration in **seconds**.
    SpanExit,
    /// An integral fact; `value` holds it (exactly, below 2^53).
    Counter,
    /// A floating-point observation.
    Metric,
}

impl EventKind {
    /// Stable lowercase label used in the JSONL encoding.
    pub fn label(self) -> &'static str {
        match self {
            EventKind::SpanEnter => "span_enter",
            EventKind::SpanExit => "span_exit",
            EventKind::Counter => "counter",
            EventKind::Metric => "metric",
        }
    }

    /// Inverse of [`EventKind::label`].
    pub fn from_label(label: &str) -> Option<EventKind> {
        Some(match label {
            "span_enter" => EventKind::SpanEnter,
            "span_exit" => EventKind::SpanExit,
            "counter" => EventKind::Counter,
            "metric" => EventKind::Metric,
            _ => return None,
        })
    }
}

/// One observation. `Copy`, no heap payload: recording never allocates.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Event {
    /// Monotonic nanoseconds since the owning [`Trace`]'s origin.
    pub t_ns: u64,
    /// Which primitive this is.
    pub kind: EventKind,
    /// Static event name (see [`names`] for the pipeline's vocabulary).
    pub name: &'static str,
    /// Discriminator within a name: epoch number, task id, … (0 if unused).
    pub index: u64,
    /// Kind-dependent payload: span duration in seconds for
    /// [`EventKind::SpanExit`], the count for [`EventKind::Counter`], the
    /// observation for [`EventKind::Metric`], 0.0 for enters.
    pub value: f64,
}

/// Receiver of an event stream.
pub trait EventSink {
    /// Whether recording does anything. A [`Trace`] built on a disabled
    /// sink short-circuits before reading clocks or dispatching events.
    fn enabled(&self) -> bool {
        true
    }

    /// Record one event.
    fn record(&mut self, event: Event);

    /// Flush any buffered output, surfacing deferred I/O errors.
    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

/// The zero-overhead sink: discards everything and reports itself
/// disabled, letting instrumented code compile out the clock reads.
#[derive(Clone, Copy, Debug, Default)]
pub struct NullSink;

impl EventSink for NullSink {
    fn enabled(&self) -> bool {
        false
    }

    fn record(&mut self, _event: Event) {}
}

/// Token returned by [`Trace::enter`], consumed by [`Trace::exit`].
#[derive(Debug)]
#[must_use = "a span must be closed with Trace::exit or Trace::exit_with"]
pub struct Span {
    start_ns: u64,
}

/// Borrowed emission handle: a sink plus a monotonic clock origin.
///
/// Construction checks [`EventSink::enabled`] once; on a disabled sink
/// every method is a branch on a `None` and nothing else — no time reads,
/// no virtual dispatch, no allocation.
pub struct Trace<'a> {
    sink: Option<&'a mut dyn EventSink>,
    origin: Instant,
}

impl<'a> Trace<'a> {
    /// A trace emitting into `sink` (no-op if the sink is disabled).
    pub fn new(sink: &'a mut dyn EventSink) -> Trace<'a> {
        let enabled = sink.enabled();
        Trace {
            sink: if enabled { Some(sink) } else { None },
            origin: Instant::now(),
        }
    }

    /// A trace that records nothing (cheaper than `Trace::new(&mut NullSink)`
    /// only in that it needs no sink to borrow).
    pub fn disabled() -> Trace<'static> {
        Trace {
            sink: None,
            origin: Instant::now(),
        }
    }

    /// Whether events are being recorded. Use to skip *computing* expensive
    /// observations, not just emitting them.
    pub fn is_enabled(&self) -> bool {
        self.sink.is_some()
    }

    fn now_ns(origin: Instant) -> u64 {
        u64::try_from(origin.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }

    /// Open a span. Emits [`EventKind::SpanEnter`] now.
    pub fn enter(&mut self, name: &'static str, index: u64) -> Span {
        match &mut self.sink {
            Some(sink) => {
                let t_ns = Self::now_ns(self.origin);
                sink.record(Event {
                    t_ns,
                    kind: EventKind::SpanEnter,
                    name,
                    index,
                    value: 0.0,
                });
                Span { start_ns: t_ns }
            }
            None => Span { start_ns: 0 },
        }
    }

    /// Close a span, deriving the duration from the trace clock.
    pub fn exit(&mut self, name: &'static str, index: u64, span: Span) {
        if self.sink.is_some() {
            let seconds = (Self::now_ns(self.origin) - span.start_ns) as f64 * 1e-9;
            self.exit_with(name, index, span, seconds);
        }
    }

    /// Close a span with an externally measured duration, so callers that
    /// already time a phase (e.g. for a report) emit the *same* number
    /// into the trace instead of a slightly different second measurement.
    pub fn exit_with(&mut self, name: &'static str, index: u64, span: Span, seconds: f64) {
        let _ = span;
        if let Some(sink) = &mut self.sink {
            sink.record(Event {
                t_ns: Self::now_ns(self.origin),
                kind: EventKind::SpanExit,
                name,
                index,
                value: seconds,
            });
        }
    }

    /// Record an integral fact.
    pub fn counter(&mut self, name: &'static str, index: u64, value: u64) {
        if let Some(sink) = &mut self.sink {
            sink.record(Event {
                t_ns: Self::now_ns(self.origin),
                kind: EventKind::Counter,
                name,
                index,
                value: value as f64,
            });
        }
    }

    /// Record a floating-point observation.
    pub fn metric(&mut self, name: &'static str, index: u64, value: f64) {
        if let Some(sink) = &mut self.sink {
            sink.record(Event {
                t_ns: Self::now_ns(self.origin),
                kind: EventKind::Metric,
                name,
                index,
                value,
            });
        }
    }

    /// Flush the underlying sink.
    pub fn flush(&mut self) -> std::io::Result<()> {
        match &mut self.sink {
            Some(sink) => sink.flush(),
            None => Ok(()),
        }
    }
}

/// Canonical event names emitted by the GRIMP pipeline. Indices: `epoch`
/// events use the epoch number, `task_*` events the task (column) id.
pub mod names {
    /// Whole training phase (graph + features + epochs), excludes imputation.
    pub const FIT: &str = "fit";
    /// Table-to-graph construction ([`SpanExit` value][crate::EventKind] in seconds).
    pub const GRAPH_BUILD: &str = "graph_build";
    /// Number of graph nodes (counter, emitted after the build span).
    pub const GRAPH_NODES: &str = "graph_nodes";
    /// Number of graph edges across all typed edge sets (counter).
    pub const GRAPH_EDGES: &str = "graph_edges";
    /// Feature-initialization phase (random / hashed-n-gram / EMBDI).
    pub const FEATURE_INIT: &str = "feature_init";
    /// Feature dimensionality (counter).
    pub const FEATURE_DIM: &str = "feature_dim";
    /// Model construction: tape, GNN, merge MLP, task heads.
    pub const MODEL_BUILD: &str = "model_build";
    /// Trainable scalar parameters on the tape (counter).
    pub const N_WEIGHTS: &str = "n_weights";
    /// Per-task batch construction.
    pub const BATCH_BUILD: &str = "batch_build";
    /// One completed training epoch (index = epoch number). Epochs undone
    /// by divergence rollback close with [`EPOCH_ROLLBACK`] instead.
    pub const EPOCH: &str = "epoch";
    /// An epoch attempt that was rolled back by the divergence guard.
    pub const EPOCH_ROLLBACK: &str = "epoch_rollback";
    /// Forward passes of one epoch (training + validation).
    pub const FORWARD: &str = "forward";
    /// Backward pass of one epoch.
    pub const BACKWARD: &str = "backward";
    /// Optimizer step (clipping + Adam) of one epoch.
    pub const OPTIM: &str = "optim";
    /// End-of-epoch tape reset.
    pub const TAPE_RESET: &str = "tape_reset";
    /// Summed training loss of one epoch (metric, index = epoch).
    pub const TRAIN_LOSS: &str = "train_loss";
    /// Summed validation loss of one epoch (metric, index = epoch).
    pub const VAL_LOSS: &str = "val_loss";
    /// One task's training loss (metric, index = task id, once per epoch).
    pub const TASK_LOSS: &str = "task_loss";
    /// Global L2 gradient norm of one epoch (metric, index = epoch).
    pub const GRAD_NORM: &str = "grad_norm";
    /// Tape nodes visited by the backward sweep (counter, index = epoch).
    pub const TAPE_BACKWARD_NODES: &str = "tape_backward_nodes";
    /// Workspace allocation misses of one completed epoch (counter).
    pub const EPOCH_ALLOCS: &str = "epoch_allocs";
    /// Gradient clipping fired (counter, index = epoch, value = 1).
    pub const GRAD_CLIP: &str = "grad_clip";
    /// Divergence anomaly detected (counter, index = epoch, value =
    /// anomaly kind code: 0 loss, 1 gradient, 2 parameter, 3 + column for
    /// a per-column task-loss divergence).
    pub const ANOMALY: &str = "anomaly";
    /// Rollback recovery consumed (counter, value = recoveries so far).
    pub const RECOVERY: &str = "recovery";
    /// Learning rate in effect after a recovery (metric).
    pub const LR: &str = "lr";
    /// Disk checkpoint write (span, index = epoch).
    pub const CHECKPOINT_SAVE: &str = "checkpoint_save";
    /// Serialized checkpoint size (counter, value = bytes).
    pub const CHECKPOINT_BYTES: &str = "checkpoint_bytes";
    /// Training resumed from a disk checkpoint (counter, index = epoch).
    pub const RESUME: &str = "resume";
    /// Non-fatal checkpoint I/O problem (counter; message in the report).
    pub const IO_ERROR: &str = "io_error";
    /// Early stopping fired (counter, index = epoch).
    pub const EARLY_STOP: &str = "early_stop";
    /// Recovery budget exhausted; run degraded to the baseline imputer.
    pub const DEGRADED: &str = "degraded";
    /// Whole imputation/inference phase (span).
    pub const IMPUTE: &str = "impute";
    /// Missing cells filled for one task (counter, index = task id).
    pub const IMPUTED_CELLS: &str = "imputed_cells";
    /// One column demoted down the degradation ladder mid-training
    /// (counter, index = column id, value = epoch of the demotion).
    pub const COLUMN_DEMOTED: &str = "column_demoted";
    /// Final degradation-ladder tier of one column, emitted at the end of
    /// fit (counter, index = column id, value = tier code: 0 gnn,
    /// 1 baseline, 2 constant).
    pub const COLUMN_TIER: &str = "column_tier";
    /// The wall-clock deadline fired and training stopped cleanly
    /// (counter, index = the epoch reached).
    pub const DEADLINE_HIT: &str = "deadline_hit";
    /// A cooperative shutdown request (SIGINT) stopped training at an
    /// epoch boundary (counter, index = the epoch reached).
    pub const INTERRUPTED: &str = "interrupted";
    /// Estimated pre-allocation memory footprint in bytes (counter).
    pub const MEM_ESTIMATE: &str = "mem_estimate";
    /// One admission-time downscale decision taken to fit the memory
    /// budget (counter, index = rung code: 0 value-node cap, 1 hidden
    /// dims, 2 neighbor-sampled mini-batches; value = the resulting cap /
    /// width / batch_rows).
    pub const DOWNSCALE: &str = "downscale";
    /// Mini-batch size of the neighbor-sampled training path, emitted once
    /// at fit setup when sampling is active (counter, value = batch_rows).
    pub const BATCH_ROWS: &str = "batch_rows";
    /// Per-node neighbor fanout cap of the sampled training path, emitted
    /// once at fit setup when sampling is active (counter, value = fanout).
    pub const FANOUT: &str = "fanout";
    /// Directed edges kept by one epoch's neighbor sample (counter,
    /// index = epoch, value = edge count).
    pub const SAMPLED_EDGES: &str = "sampled_edges";
    /// Checkpointing disabled for the rest of the run after persistent
    /// IO faults (counter, index = epoch).
    pub const CHECKPOINT_DISABLED: &str = "checkpoint_disabled";
    /// Kernel backend selected for the fit (counter, index = backend code:
    /// 0 serial, 1 parallel; value = thread count).
    pub const BACKEND: &str = "backend";
    /// A stale checkpoint-directory lock left by a dead process was
    /// reclaimed (counter, index = the dead holder's PID, 0 when the lock
    /// file was unreadable or unparseable).
    pub const LOCK_RECLAIMED: &str = "lock_reclaimed";
    /// One HTTP request handled by `grimp serve`, accept to response
    /// (span, index = request id).
    pub const REQUEST: &str = "request";
    /// Seconds one request spent queued before a worker picked it up
    /// (metric, index = request id).
    pub const QUEUE_WAIT: &str = "queue_wait";
    /// Final status of one request (counter, index = request id,
    /// value = HTTP status code; 0 when the client vanished before a
    /// response could be written).
    pub const REQUEST_OUTCOME: &str = "request_outcome";
    /// A request was shed because the work queue was full (counter,
    /// index = request id).
    pub const REQUEST_SHED: &str = "request_shed";
    /// A request was refused by the memory-admission governor (counter,
    /// index = request id, value = estimated bytes).
    pub const REQUEST_OVER_BUDGET: &str = "request_over_budget";
    /// A deterministic socket fault fired on a connection (counter,
    /// index = request id, value = fault code — see the serve crate).
    pub const SOCKET_FAULT: &str = "socket_fault";
    /// The serving model was hot-reloaded from a rotated checkpoint
    /// (counter, index = generation, value = checkpoint CRC-32).
    pub const MODEL_RELOADED: &str = "model_reloaded";
    /// Graceful drain started: the listener stopped accepting and
    /// in-flight requests are finishing (counter, value = signal number).
    pub const DRAIN_BEGIN: &str = "drain_begin";
    /// Graceful drain finished (counter, value = 1 clean, 0 when the
    /// drain deadline expired with requests still in flight).
    pub const DRAIN_END: &str = "drain_end";
    /// An append WAL segment was published atomically (counter,
    /// index = rows in the segment, value = serialized bytes).
    pub const WAL_WRITE: &str = "wal_write";
    /// A pending WAL segment was replayed on startup/append (counter,
    /// index = rows recovered, value = 1 intact, 0 torn tail dropped).
    pub const WAL_REPLAY: &str = "wal_replay";
    /// The applied WAL segment was rotated to `grimp.wal.applied`
    /// (counter, value = 1).
    pub const WAL_ROTATE: &str = "wal_rotate";
    /// One append-rows operation end to end: WAL write, fine-tune or
    /// refit, impute, rotation (span, index = rows appended).
    pub const APPEND: &str = "append";
    /// A warm-start fine-tune began on the appended delta (counter,
    /// index = base epoch resumed from, value = target epoch).
    pub const FINETUNE: &str = "finetune";
    /// Post-fine-tune drift check: relative validation-loss regression
    /// against the run's best (metric, value = relative regression).
    pub const DRIFT: &str = "drift";
    /// Drift exceeded the configured band; a full refit was scheduled
    /// (counter, index = epoch, value = 1).
    pub const REFIT_SCHEDULED: &str = "refit_scheduled";
    /// One hot-reload watcher poll tick (counter, index = poll count,
    /// value = jittered sleep in milliseconds).
    pub const RELOAD_POLL: &str = "reload_poll";
    /// A worker caught a handler panic: the request was answered `500`
    /// and the worker's replica was quarantined and rebuilt (counter,
    /// index = request id, value = 1).
    pub const WORKER_PANIC: &str = "worker_panic";
    /// A replayed `Idempotency-Key` was answered from the journal instead
    /// of re-appending (counter, index = request id, value = 1).
    pub const IDEM_REPLAY: &str = "idem_replay";

    /// Placeholder name a replayed trace event gets when its recorded name
    /// is not in this vocabulary (a trace from a newer build): the event is
    /// kept, counted in [`crate::replay::Replay::unknown_names`], and never
    /// matches any aggregation.
    pub const UNKNOWN: &str = "(unknown)";

    /// Every name in the vocabulary, for interning replayed traces back
    /// into [`crate::Event`]s (whose names are `&'static str`).
    pub const ALL: &[&str] = &[
        FIT,
        GRAPH_BUILD,
        GRAPH_NODES,
        GRAPH_EDGES,
        FEATURE_INIT,
        FEATURE_DIM,
        MODEL_BUILD,
        N_WEIGHTS,
        BATCH_BUILD,
        EPOCH,
        EPOCH_ROLLBACK,
        FORWARD,
        BACKWARD,
        OPTIM,
        TAPE_RESET,
        TRAIN_LOSS,
        VAL_LOSS,
        TASK_LOSS,
        GRAD_NORM,
        TAPE_BACKWARD_NODES,
        EPOCH_ALLOCS,
        GRAD_CLIP,
        ANOMALY,
        RECOVERY,
        LR,
        CHECKPOINT_SAVE,
        CHECKPOINT_BYTES,
        RESUME,
        IO_ERROR,
        EARLY_STOP,
        DEGRADED,
        IMPUTE,
        IMPUTED_CELLS,
        COLUMN_DEMOTED,
        COLUMN_TIER,
        DEADLINE_HIT,
        INTERRUPTED,
        MEM_ESTIMATE,
        DOWNSCALE,
        BATCH_ROWS,
        FANOUT,
        SAMPLED_EDGES,
        CHECKPOINT_DISABLED,
        BACKEND,
        LOCK_RECLAIMED,
        REQUEST,
        QUEUE_WAIT,
        REQUEST_OUTCOME,
        REQUEST_SHED,
        REQUEST_OVER_BUDGET,
        SOCKET_FAULT,
        MODEL_RELOADED,
        DRAIN_BEGIN,
        DRAIN_END,
        WAL_WRITE,
        WAL_REPLAY,
        WAL_ROTATE,
        APPEND,
        FINETUNE,
        DRIFT,
        REFIT_SCHEDULED,
        RELOAD_POLL,
        WORKER_PANIC,
        IDEM_REPLAY,
    ];

    /// Intern a replayed name against the vocabulary; `None` when unknown.
    pub fn lookup(name: &str) -> Option<&'static str> {
        ALL.iter().find(|n| **n == name).copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_labels_roundtrip() {
        for kind in [
            EventKind::SpanEnter,
            EventKind::SpanExit,
            EventKind::Counter,
            EventKind::Metric,
        ] {
            assert_eq!(EventKind::from_label(kind.label()), Some(kind));
        }
        assert_eq!(EventKind::from_label("nope"), None);
    }

    #[test]
    fn null_sink_is_disabled_and_trace_skips_it() {
        let mut sink = NullSink;
        assert!(!sink.enabled());
        let mut trace = Trace::new(&mut sink);
        assert!(!trace.is_enabled());
        let span = trace.enter(names::EPOCH, 0);
        trace.metric(names::TRAIN_LOSS, 0, 1.0);
        trace.counter(names::EPOCH_ALLOCS, 0, 3);
        trace.exit(names::EPOCH, 0, span);
        trace.flush().expect("null flush");
    }

    #[test]
    fn memory_sink_records_spans_counters_and_metrics() {
        let mut sink = MemorySink::new();
        {
            let mut trace = Trace::new(&mut sink);
            assert!(trace.is_enabled());
            let span = trace.enter(names::EPOCH, 7);
            trace.metric(names::TRAIN_LOSS, 7, 0.25);
            trace.counter(names::EPOCH_ALLOCS, 7, 42);
            trace.exit(names::EPOCH, 7, span);
        }
        let events = sink.events();
        assert_eq!(events.len(), 4);
        assert_eq!(events[0].kind, EventKind::SpanEnter);
        assert_eq!(events[3].kind, EventKind::SpanExit);
        assert_eq!(events[3].name, names::EPOCH);
        assert_eq!(events[3].index, 7);
        assert!(events[3].value >= 0.0);
        assert!(events.windows(2).all(|w| w[0].t_ns <= w[1].t_ns));
        assert_eq!(events[1].value, 0.25);
        assert_eq!(events[2].value, 42.0);
    }

    #[test]
    fn exit_with_preserves_the_caller_measurement() {
        let mut sink = MemorySink::new();
        let mut trace = Trace::new(&mut sink);
        let span = trace.enter(names::FORWARD, 0);
        trace.exit_with(names::FORWARD, 0, span, 0.125);
        assert_eq!(sink.events()[1].value, 0.125);
    }

    #[test]
    fn disabled_trace_records_nothing() {
        let mut trace = Trace::disabled();
        let span = trace.enter(names::FIT, 0);
        trace.exit(names::FIT, 0, span);
        assert!(!trace.is_enabled());
    }
}

//! The concrete sinks: in-memory buffering, JSONL streaming, fan-out.

use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::Path;

use crate::histogram::Histogram;
use crate::{json, Event, EventKind, EventSink};

/// Buffers every event in memory. The sink for tests and for computing
/// aggregations (event signatures, per-span histograms) after a run.
#[derive(Clone, Debug, Default)]
pub struct MemorySink {
    events: Vec<Event>,
}

impl MemorySink {
    /// An empty sink.
    pub fn new() -> Self {
        MemorySink::default()
    }

    /// An empty sink with pre-reserved capacity.
    pub fn with_capacity(capacity: usize) -> Self {
        MemorySink {
            events: Vec::with_capacity(capacity),
        }
    }

    /// Every recorded event, in emission order.
    pub fn events(&self) -> &[Event] {
        &self.events
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Drop all recorded events.
    pub fn clear(&mut self) {
        self.events.clear();
    }

    /// How many events match `kind` and `name`.
    pub fn count_of(&self, kind: EventKind, name: &str) -> usize {
        self.events
            .iter()
            .filter(|e| e.kind == kind && e.name == name)
            .count()
    }

    /// Values of every [`EventKind::Metric`] event named `name`, in order.
    pub fn metric_values(&self, name: &str) -> Vec<f64> {
        self.events
            .iter()
            .filter(|e| e.kind == EventKind::Metric && e.name == name)
            .map(|e| e.value)
            .collect()
    }

    /// Sum of the durations (seconds) of every closed span named `name`.
    pub fn span_seconds(&self, name: &str) -> f64 {
        self.events
            .iter()
            .filter(|e| e.kind == EventKind::SpanExit && e.name == name)
            .map(|e| e.value)
            .sum()
    }

    /// Histogram of the durations (nanoseconds) of spans named `name`.
    pub fn span_histogram(&self, name: &str) -> Histogram {
        let mut h = Histogram::new();
        for e in &self.events {
            if e.kind == EventKind::SpanExit && e.name == name {
                h.record((e.value * 1e9).max(0.0) as u64);
            }
        }
        h
    }

    /// The timestamp-free shape of the stream: `(kind, name, index)` per
    /// event. Two identically-seeded runs must produce equal signatures
    /// even though their wall-clock timings differ.
    pub fn signature(&self) -> Vec<(EventKind, &'static str, u64)> {
        self.events
            .iter()
            .map(|e| (e.kind, e.name, e.index))
            .collect()
    }
}

impl EventSink for MemorySink {
    fn record(&mut self, event: Event) {
        self.events.push(event);
    }
}

/// Streams events as JSON Lines — one object per event — through any
/// writer, typically a buffered file. Uses the hand-rolled serializer in
/// [`json`]; the output parses back with [`json::parse`].
///
/// I/O errors are deferred: `record` is infallible (required by the sink
/// contract), the first error is stored and surfaced by
/// [`EventSink::flush`].
pub struct JsonlSink<W: Write> {
    writer: W,
    written: u64,
    deferred_error: Option<io::Error>,
}

impl JsonlSink<BufWriter<File>> {
    /// Create (truncate) a trace file at `path`.
    pub fn create(path: impl AsRef<Path>) -> io::Result<Self> {
        Ok(JsonlSink::new(BufWriter::new(File::create(path)?)))
    }
}

impl JsonlSink<Box<dyn Write>> {
    /// Create (truncate) a trace file at `path` through a [`crate::fs::GrimpFs`],
    /// so IO faults injected by [`crate::fs::FaultFs`] reach the trace
    /// stream. Faults after creation are deferred like any other write
    /// error: the sink disables itself and `flush` reports the first one.
    pub fn create_with(
        fs: &mut dyn crate::fs::GrimpFs,
        path: impl AsRef<Path>,
    ) -> io::Result<Self> {
        Ok(JsonlSink::new(fs.open_writer(path.as_ref())?))
    }
}

impl<W: Write> JsonlSink<W> {
    /// Stream into an arbitrary writer.
    pub fn new(writer: W) -> Self {
        JsonlSink {
            writer,
            written: 0,
            deferred_error: None,
        }
    }

    /// Events successfully serialized so far.
    pub fn events_written(&self) -> u64 {
        self.written
    }

    /// Flush and return the underlying writer.
    pub fn into_inner(mut self) -> io::Result<W> {
        self.flush()?;
        Ok(self.writer)
    }
}

impl<W: Write> EventSink for JsonlSink<W> {
    fn record(&mut self, event: Event) {
        if self.deferred_error.is_some() {
            return;
        }
        let mut line = String::with_capacity(96);
        json::write_event(&mut line, &event);
        line.push('\n');
        match self.writer.write_all(line.as_bytes()) {
            Ok(()) => self.written += 1,
            Err(e) => self.deferred_error = Some(e),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        if let Some(e) = self.deferred_error.take() {
            return Err(e);
        }
        self.writer.flush()
    }
}

/// Duplicates one event stream into several sinks (e.g. a `JsonlSink`
/// trace file plus a `MemorySink` for a `--metrics` summary).
#[derive(Default)]
pub struct FanoutSink<'a> {
    sinks: Vec<&'a mut dyn EventSink>,
}

impl<'a> FanoutSink<'a> {
    /// An empty fan-out (disabled until a sink is added).
    pub fn new() -> Self {
        FanoutSink { sinks: Vec::new() }
    }

    /// Add a downstream sink.
    pub fn add(&mut self, sink: &'a mut dyn EventSink) -> &mut Self {
        self.sinks.push(sink);
        self
    }
}

impl EventSink for FanoutSink<'_> {
    fn enabled(&self) -> bool {
        self.sinks.iter().any(|s| s.enabled())
    }

    fn record(&mut self, event: Event) {
        for sink in &mut self.sinks {
            if sink.enabled() {
                sink.record(event);
            }
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        let mut first_err = None;
        for sink in &mut self.sinks {
            if let Err(e) = sink.flush() {
                first_err.get_or_insert(e);
            }
        }
        match first_err {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{names, NullSink, Trace};

    fn sample_events(trace: &mut Trace<'_>) {
        let fit = trace.enter(names::FIT, 0);
        let ep = trace.enter(names::EPOCH, 0);
        trace.metric(names::TRAIN_LOSS, 0, 1.5);
        trace.counter(names::EPOCH_ALLOCS, 0, 10);
        trace.exit_with(names::EPOCH, 0, ep, 0.002);
        trace.exit_with(names::FIT, 0, fit, 0.004);
    }

    #[test]
    fn jsonl_lines_parse_with_the_hand_rolled_reader() {
        let mut sink = JsonlSink::new(Vec::new());
        {
            let mut trace = Trace::new(&mut sink);
            sample_events(&mut trace);
        }
        assert_eq!(sink.events_written(), 6);
        let buf = sink.into_inner().expect("no io errors");
        let text = String::from_utf8(buf).expect("utf8");
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 6);
        for line in &lines {
            let v = json::parse(line).expect("line parses");
            assert!(v.get("t").and_then(json::Json::as_u64).is_some(), "{line}");
            let kind = v.get("kind").and_then(json::Json::as_str).expect("kind");
            assert!(EventKind::from_label(kind).is_some(), "{line}");
            assert!(v.get("name").and_then(json::Json::as_str).is_some());
            assert!(v.get("i").and_then(json::Json::as_u64).is_some());
            assert!(v.get("v").and_then(json::Json::as_f64).is_some());
        }
        let last = json::parse(lines[5]).expect("parses");
        assert_eq!(last.get("name").and_then(json::Json::as_str), Some("fit"));
        assert_eq!(last.get("v").and_then(json::Json::as_f64), Some(0.004));
    }

    #[test]
    fn non_finite_metrics_round_trip_as_null() {
        // A diverged loss (NaN) or an overflowed gradient norm (inf) must
        // still produce lines any strict JSON reader accepts: the value
        // serializes as `null`, never as bare `NaN`/`inf`.
        let mut sink = JsonlSink::new(Vec::new());
        {
            let mut trace = Trace::new(&mut sink);
            trace.metric(names::TRAIN_LOSS, 0, f64::NAN);
            trace.metric(names::GRAD_NORM, 1, f64::INFINITY);
            trace.metric(names::VAL_LOSS, 2, f64::NEG_INFINITY);
        }
        let buf = sink.into_inner().expect("no io errors");
        let text = String::from_utf8(buf).expect("utf8");
        for line in text.lines() {
            assert!(!line.contains("NaN") && !line.contains("inf"), "{line}");
            let v = json::parse(line).expect("line parses");
            assert!(
                matches!(v.get("v"), Some(json::Json::Null)),
                "non-finite value must read back as null: {line}"
            );
        }
    }

    #[test]
    fn memory_sink_aggregations() {
        let mut sink = MemorySink::new();
        {
            let mut trace = Trace::new(&mut sink);
            sample_events(&mut trace);
        }
        assert_eq!(sink.len(), 6);
        assert_eq!(sink.count_of(EventKind::SpanExit, names::EPOCH), 1);
        assert_eq!(sink.metric_values(names::TRAIN_LOSS), vec![1.5]);
        assert_eq!(sink.span_seconds(names::EPOCH), 0.002);
        let h = sink.span_histogram(names::EPOCH);
        assert_eq!(h.count(), 1);
        let sig = sink.signature();
        assert_eq!(sig[0], (EventKind::SpanEnter, names::FIT, 0));
        assert_eq!(sig[5], (EventKind::SpanExit, names::FIT, 0));
    }

    #[test]
    fn fanout_tees_into_every_enabled_sink() {
        let mut mem_a = MemorySink::new();
        let mut mem_b = MemorySink::new();
        let mut null = NullSink;
        let mut fan = FanoutSink::new();
        fan.add(&mut mem_a).add(&mut null).add(&mut mem_b);
        assert!(fan.enabled());
        {
            let mut trace = Trace::new(&mut fan);
            sample_events(&mut trace);
        }
        assert_eq!(mem_a.len(), 6);
        assert_eq!(mem_b.len(), 6);
        assert_eq!(mem_a.signature(), mem_b.signature());
    }

    #[test]
    fn fanout_of_only_null_sinks_is_disabled() {
        let mut a = NullSink;
        let mut b = NullSink;
        let mut fan = FanoutSink::new();
        fan.add(&mut a).add(&mut b);
        assert!(!fan.enabled());
        let trace = Trace::new(&mut fan);
        assert!(!trace.is_enabled());
    }

    #[test]
    fn jsonl_defers_io_errors_to_flush() {
        struct Broken;
        impl Write for Broken {
            fn write(&mut self, _buf: &[u8]) -> io::Result<usize> {
                Err(io::Error::other("disk on fire"))
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }
        let mut sink = JsonlSink::new(Broken);
        sink.record(Event {
            t_ns: 0,
            kind: EventKind::Counter,
            name: "x",
            index: 0,
            value: 1.0,
        });
        assert_eq!(sink.events_written(), 0);
        assert!(sink.flush().is_err());
    }
}

//! Hand-rolled JSON writer and reader — just enough for the JSONL trace
//! format, with no dependencies. The writer emits one flat object per
//! [`Event`]; the reader is a full recursive-descent parser so traces
//! (and other small JSON documents such as bench reports) can be read
//! back and asserted on in tests.

use crate::Event;

/// Append a JSON string literal (with escaping) to `out`.
pub fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Append a JSON number for `v`; non-finite values become `null`
/// (JSON has no NaN/Infinity).
pub fn write_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        out.push_str(&format!("{v}"));
    } else {
        out.push_str("null");
    }
}

/// Serialize one event as a flat JSON object:
/// `{"t":123,"kind":"metric","name":"train_loss","i":0,"v":1.25}`.
pub fn write_event(out: &mut String, event: &Event) {
    out.push_str("{\"t\":");
    out.push_str(&format!("{}", event.t_ns));
    out.push_str(",\"kind\":");
    write_escaped(out, event.kind.label());
    out.push_str(",\"name\":");
    write_escaped(out, event.name);
    out.push_str(",\"i\":");
    out.push_str(&format!("{}", event.index));
    out.push_str(",\"v\":");
    write_f64(out, event.value);
    out.push('}');
}

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null` (also produced by the writer for non-finite numbers).
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number, held as `f64`.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Json>),
    /// An object, as insertion-ordered key/value pairs.
    Object(Vec<(String, Json)>),
}

impl Json {
    /// Object field lookup (first match); `None` for non-objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as `f64` if it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as `u64` if it is a non-negative integral number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(v) if *v >= 0.0 && v.fract() == 0.0 && *v <= u64::MAX as f64 => {
                Some(*v as u64)
            }
            _ => None,
        }
    }

    /// The value as `&str` if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a slice if it is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(items) => Some(items),
            _ => None,
        }
    }
}

/// Where and why parsing failed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the failure.
    pub at: usize,
    /// Human-readable description.
    pub message: String,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "json error at byte {}: {}", self.at, self.message)
    }
}

impl std::error::Error for JsonError {}

/// Parse a complete JSON document; trailing whitespace is allowed,
/// trailing garbage is an error.
pub fn parse(text: &str) -> Result<Json, JsonError> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after document"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: &str) -> JsonError {
        JsonError {
            at: self.pos,
            message: message.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Object(fields));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast-forward over the plain (unescaped, ASCII-safe) run.
            while matches!(self.peek(), Some(b) if b != b'"' && b != b'\\' && b >= 0x20) {
                self.pos += 1;
            }
            if self.pos > start {
                let chunk = std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid utf-8 in string"))?;
                out.push_str(chunk);
            }
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let code = self.hex4()?;
                            // Surrogate pair handling for completeness.
                            let c = if (0xd800..0xdc00).contains(&code) {
                                if self.bytes[self.pos..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let low = self.hex4()?;
                                    let combined = 0x10000
                                        + ((code - 0xd800) << 10)
                                        + (low.wrapping_sub(0xdc00) & 0x3ff);
                                    char::from_u32(combined)
                                } else {
                                    None
                                }
                            } else {
                                char::from_u32(code)
                            };
                            out.push(c.ok_or_else(|| self.err("invalid \\u escape"))?);
                            continue; // hex4 already advanced pos
                        }
                        _ => return Err(self.err("invalid escape sequence")),
                    }
                    self.pos += 1;
                }
                _ => return Err(self.err("unterminated string")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| self.err("invalid \\u escape"))?;
        let code = u32::from_str_radix(hex, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos = end;
        Ok(code)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::EventKind;

    #[test]
    fn event_roundtrips_through_writer_and_parser() {
        let event = Event {
            t_ns: 1234567,
            kind: EventKind::SpanExit,
            name: "epoch",
            index: 3,
            value: 0.015625,
        };
        let mut line = String::new();
        write_event(&mut line, &event);
        assert_eq!(
            line,
            "{\"t\":1234567,\"kind\":\"span_exit\",\"name\":\"epoch\",\"i\":3,\"v\":0.015625}"
        );
        let v = parse(&line).expect("parses");
        assert_eq!(v.get("t").and_then(Json::as_u64), Some(1234567));
        assert_eq!(v.get("kind").and_then(Json::as_str), Some("span_exit"));
        assert_eq!(v.get("name").and_then(Json::as_str), Some("epoch"));
        assert_eq!(v.get("i").and_then(Json::as_u64), Some(3));
        assert_eq!(v.get("v").and_then(Json::as_f64), Some(0.015625));
    }

    #[test]
    fn non_finite_values_serialize_as_null() {
        let mut out = String::new();
        write_f64(&mut out, f64::NAN);
        out.push(' ');
        write_f64(&mut out, f64::INFINITY);
        assert_eq!(out, "null null");
    }

    #[test]
    fn escaping_roundtrips() {
        let nasty = "a\"b\\c\nd\te\u{0001}f";
        let mut out = String::new();
        write_escaped(&mut out, nasty);
        let parsed = parse(&out).expect("parses");
        assert_eq!(parsed.as_str(), Some(nasty));
    }

    #[test]
    fn parses_nested_documents() {
        let doc = r#"{"a": [1, 2.5, -3e2, true, false, null], "b": {"c": "d"}, "e": []}"#;
        let v = parse(doc).expect("parses");
        let a = v.get("a").and_then(Json::as_array).expect("array");
        assert_eq!(a.len(), 6);
        assert_eq!(a[0].as_f64(), Some(1.0));
        assert_eq!(a[2].as_f64(), Some(-300.0));
        assert_eq!(a[3], Json::Bool(true));
        assert_eq!(a[5], Json::Null);
        assert_eq!(
            v.get("b").and_then(|b| b.get("c")).and_then(Json::as_str),
            Some("d")
        );
        assert_eq!(
            v.get("e").and_then(Json::as_array).map(<[Json]>::len),
            Some(0)
        );
    }

    #[test]
    fn unicode_escapes_decode() {
        let v = parse(r#""é 😀""#).expect("parses");
        assert_eq!(v.as_str(), Some("é 😀"));
        // \u escapes, including a surrogate pair.
        let v = parse("\"\\u00e9 \\ud83d\\ude00\"").expect("parses");
        assert_eq!(v.as_str(), Some("é 😀"));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("").is_err());
        assert!(parse("{").is_err());
        assert!(parse("{}extra").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("\"unterminated").is_err());
        assert!(parse("nul").is_err());
    }
}

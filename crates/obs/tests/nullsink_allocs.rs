//! Proof that tracing through a `NullSink` is allocation-free: a hot
//! loop exercising every trace primitive (spans, counters, metrics)
//! against a disabled sink must perform zero heap allocations.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use grimp_obs::{names, MemorySink, NullSink, Trace};

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn trace_heavy_loop(trace: &mut Trace<'_>, epochs: u64) -> f64 {
    // The same mix of primitives the training loop emits per epoch.
    let mut acc = 0.0f64;
    for epoch in 0..epochs {
        let ep = trace.enter(names::EPOCH, epoch);
        let fwd = trace.enter(names::FORWARD, epoch);
        trace.exit(names::FORWARD, epoch, fwd);
        let bwd = trace.enter(names::BACKWARD, epoch);
        trace.exit(names::BACKWARD, epoch, bwd);
        trace.metric(names::TRAIN_LOSS, epoch, 1.0 / (epoch + 1) as f64);
        trace.metric(names::GRAD_NORM, epoch, 0.5);
        trace.counter(names::EPOCH_ALLOCS, epoch, 0);
        for task in 0..4u64 {
            trace.metric(names::TASK_LOSS, task, 0.25);
        }
        trace.exit(names::EPOCH, epoch, ep);
        acc += (epoch as f64).sqrt();
    }
    acc
}

#[test]
fn null_sink_tracing_performs_zero_heap_allocations() {
    let mut sink = NullSink;
    let mut trace = Trace::new(&mut sink);
    assert!(!trace.is_enabled());

    // Warm up once so any lazy runtime setup is excluded.
    std::hint::black_box(trace_heavy_loop(&mut trace, 10));

    let before = ALLOCS.load(Ordering::SeqCst);
    let out = trace_heavy_loop(&mut trace, 1000);
    let after = ALLOCS.load(Ordering::SeqCst);
    std::hint::black_box(out);

    assert_eq!(
        after - before,
        0,
        "NullSink tracing must not allocate on the hot path"
    );
}

#[test]
fn disabled_trace_constructor_performs_zero_heap_allocations() {
    let before = ALLOCS.load(Ordering::SeqCst);
    for _ in 0..100 {
        let mut sink = NullSink;
        let mut trace = Trace::new(&mut sink);
        std::hint::black_box(trace_heavy_loop(&mut trace, 1));
    }
    let after = ALLOCS.load(Ordering::SeqCst);
    assert_eq!(
        after - before,
        0,
        "constructing a disabled Trace must not allocate"
    );
}

#[test]
fn memory_sink_does_allocate_which_validates_the_counter() {
    // Sanity check that the counting allocator actually observes the
    // allocations an enabled sink performs.
    let mut sink = MemorySink::new();
    let before = ALLOCS.load(Ordering::SeqCst);
    {
        let mut trace = Trace::new(&mut sink);
        std::hint::black_box(trace_heavy_loop(&mut trace, 100));
    }
    let after = ALLOCS.load(Ordering::SeqCst);
    assert!(after > before, "MemorySink growth should be counted");
    assert!(!sink.is_empty());
}

//! DWIG: a DataWig-style imputer (Biessmann et al., JMLR 2019).
//!
//! Faithful to the three properties the GRIMP paper's analysis attributes to
//! DataWig (§4.2): (1) attribute embeddings are learned *independently* per
//! output attribute, (2) strings are featurized with a simple n-gram hashing
//! encoder, (3) there is no multi-task sharing — one isolated model per
//! attribute, each with its own single loss.

use std::rc::Rc;

use rand::rngs::StdRng;
use rand::SeedableRng;

use grimp_graph::FastTextLike;
use grimp_table::{ColumnKind, Imputer, Normalizer, Table, Value};
use grimp_tensor::{Adam, Mlp, Tape, Tensor};

/// DataWig-like options.
#[derive(Clone, Copy, Debug)]
pub struct DataWigConfig {
    /// Hashed n-gram width per context column.
    pub ngram_dim: usize,
    /// Hidden width of each per-attribute model.
    pub hidden: usize,
    /// Epochs per attribute model.
    pub epochs: usize,
    /// Learning rate.
    pub lr: f32,
    /// Seed.
    pub seed: u64,
}

impl Default for DataWigConfig {
    fn default() -> Self {
        DataWigConfig {
            ngram_dim: 16,
            hidden: 32,
            epochs: 80,
            lr: 0.02,
            seed: 0,
        }
    }
}

/// The DataWig-like imputer.
pub struct DataWigLike {
    config: DataWigConfig,
}

impl DataWigLike {
    /// Build with options.
    pub fn new(config: DataWigConfig) -> Self {
        DataWigLike { config }
    }

    /// Featurize one row for target column `j`: hashed n-gram embeddings of
    /// every other column's display string, concatenated; missing cells are
    /// zero blocks.
    fn featurize(
        ft: &FastTextLike,
        table: &Table,
        row: usize,
        target: usize,
        dim: usize,
        out: &mut [f32],
    ) {
        out.iter_mut().for_each(|v| *v = 0.0);
        let mut off = 0usize;
        for c in 0..table.n_columns() {
            if c == target {
                continue;
            }
            if !table.is_missing(row, c) {
                let v = ft.embed(&table.display(row, c));
                out[off..off + dim].copy_from_slice(&v);
            }
            off += dim;
        }
    }
}

impl Imputer for DataWigLike {
    fn name(&self) -> &str {
        "DataWig"
    }

    fn impute(&mut self, dirty: &Table) -> Table {
        let cfg = self.config;
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let ft = FastTextLike::new(cfg.ngram_dim, cfg.seed ^ 0xda7a);

        let normalizer = Normalizer::fit(dirty);
        let n_cols = dirty.n_columns();
        let feat_width = (n_cols - 1) * cfg.ngram_dim;
        let mut result = dirty.clone();
        let mut buf = vec![0.0f32; feat_width];

        // One fully independent model per attribute with missing values.
        for j in 0..n_cols {
            let missing: Vec<usize> = (0..dirty.n_rows())
                .filter(|&i| dirty.is_missing(i, j))
                .collect();
            if missing.is_empty() {
                continue;
            }
            let observed: Vec<usize> = (0..dirty.n_rows())
                .filter(|&i| !dirty.is_missing(i, j))
                .collect();
            if observed.is_empty() {
                continue;
            }
            let mut xs = Vec::with_capacity(observed.len() * feat_width);
            for &i in &observed {
                Self::featurize(&ft, dirty, i, j, cfg.ngram_dim, &mut buf);
                xs.extend_from_slice(&buf);
            }
            let x_train = Tensor::from_vec(observed.len(), feat_width, xs);
            let mut xm = Vec::with_capacity(missing.len() * feat_width);
            for &i in &missing {
                Self::featurize(&ft, dirty, i, j, cfg.ngram_dim, &mut buf);
                xm.extend_from_slice(&buf);
            }
            let x_miss = Tensor::from_vec(missing.len(), feat_width, xm);

            match dirty.schema().column(j).kind {
                ColumnKind::Categorical => {
                    let n_classes = dirty.dictionary(j).len().max(1);
                    let labels: Rc<Vec<u32>> = Rc::new(
                        observed
                            .iter()
                            .map(|&i| dirty.get(i, j).as_cat().expect("cat"))
                            .collect(),
                    );
                    let mut tape = Tape::new();
                    let model = Mlp::new(&mut tape, &[feat_width, cfg.hidden, n_classes], &mut rng);
                    tape.freeze();
                    let mut adam = Adam::new(cfg.lr);
                    for _ in 0..cfg.epochs {
                        let x = tape.input(x_train.clone());
                        let logits = model.forward(&mut tape, x);
                        let loss = tape.softmax_cross_entropy(logits, Rc::clone(&labels));
                        tape.backward(loss);
                        adam.step(&mut tape);
                        tape.reset();
                    }
                    let x = tape.input(x_miss);
                    let logits = model.forward(&mut tape, x);
                    let out = tape.value(logits).clone();
                    for (s, &i) in missing.iter().enumerate() {
                        let best = out
                            .row_slice(s)
                            .iter()
                            .enumerate()
                            .max_by(|a, b| a.1.total_cmp(b.1))
                            .map(|(k, _)| k as u32)
                            .expect("non-empty");
                        result.set(i, j, Value::Cat(best));
                    }
                }
                ColumnKind::Numerical => {
                    let targets: Rc<Vec<f32>> = Rc::new(
                        observed
                            .iter()
                            .map(|&i| {
                                normalizer.forward(j, dirty.get(i, j).as_num().expect("num")) as f32
                            })
                            .collect(),
                    );
                    let mut tape = Tape::new();
                    let model = Mlp::new(&mut tape, &[feat_width, cfg.hidden, 1], &mut rng);
                    tape.freeze();
                    let mut adam = Adam::new(cfg.lr);
                    for _ in 0..cfg.epochs {
                        let x = tape.input(x_train.clone());
                        let pred = model.forward(&mut tape, x);
                        let loss = tape.mse_loss(pred, Rc::clone(&targets));
                        tape.backward(loss);
                        adam.step(&mut tape);
                        tape.reset();
                    }
                    let x = tape.input(x_miss);
                    let pred = model.forward(&mut tape, x);
                    let out = tape.value(pred).clone();
                    for (s, &i) in missing.iter().enumerate() {
                        let v = normalizer.inverse(j, f64::from(out.get(s, 0)));
                        result.set(i, j, Value::Num(v));
                    }
                }
            }
        }
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use grimp_table::{check_imputation_contract, inject_mcar, Schema};

    fn functional_table(n: usize) -> Table {
        let schema = Schema::from_pairs(&[
            ("a", ColumnKind::Categorical),
            ("b", ColumnKind::Categorical),
            ("x", ColumnKind::Numerical),
        ]);
        let mut t = Table::empty(schema);
        for i in 0..n {
            let a = format!("alpha{}", i % 4);
            let b = format!("beta{}", i % 4);
            let x = format!("{}", (i % 4) as f64 * 10.0);
            t.push_str_row(&[Some(&a), Some(&b), Some(&x)]);
        }
        t
    }

    #[test]
    fn datawig_imputes_with_contract_and_learns() {
        let clean = functional_table(80);
        let mut dirty = clean.clone();
        let log = inject_mcar(&mut dirty, 0.1, &mut StdRng::seed_from_u64(1));
        let mut m = DataWigLike::new(DataWigConfig::default());
        let imputed = m.impute(&dirty);
        check_imputation_contract(&dirty, &imputed).unwrap();
        let cat: Vec<_> = log.cells.iter().filter(|c| c.col < 2).collect();
        let correct = cat
            .iter()
            .filter(|c| imputed.get(c.row, c.col) == c.truth)
            .count();
        let acc = correct as f64 / cat.len().max(1) as f64;
        assert!(acc > 0.6, "datawig accuracy {acc}");
    }

    #[test]
    fn all_missing_column_is_left_missing_only_if_no_evidence() {
        // fully missing column has no observed rows → left as-is, which the
        // experiment harness treats as a (rare) contract exception for DWIG;
        // here we just pin the behavior.
        let schema = Schema::from_pairs(&[
            ("a", ColumnKind::Categorical),
            ("b", ColumnKind::Categorical),
        ]);
        let t = Table::from_rows(schema, &[vec![Some("x"), None], vec![Some("y"), None]]);
        let mut m = DataWigLike::new(DataWigConfig::default());
        let imputed = m.impute(&t);
        assert_eq!(imputed.n_missing(), 2);
    }
}

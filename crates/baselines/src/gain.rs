//! GAIN-style adversarial imputation (Yoon, Jordon & van der Schaar, ICML
//! 2018 — the paper's GAN representative [54]), in the least-squares-GAN
//! formulation so the adversarial losses are expressible as masked MSE.
//!
//! Rows are encoded like MIDA's (z-scored numericals + capped one-hot
//! categoricals). A **generator** sees `(x ⊙ m, m)` — the data with missing
//! entries zeroed plus the observedness mask — and produces a completed
//! matrix; a **discriminator** sees the imputed matrix plus GAIN's *hint*
//! (the mask with a random subset of entries blanked to 0.5) and predicts,
//! per entry, whether it was observed or imputed. Training alternates
//! least-squares discriminator steps with generator steps that combine the
//! adversarial objective on missing entries and a reconstruction loss on
//! observed ones. The paper's taxonomy notes generative models "produce
//! numerical outputs, so categorical values must be coerced to values in
//! the active domain" — exactly what the argmax-decoding here does.

use std::rc::Rc;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use grimp_table::{ColumnKind, Imputer, Normalizer, Table, Value};
use grimp_tensor::{Adam, Mlp, Tape, Tensor};

/// Cap on one-hot width per categorical column.
const MAX_ONE_HOT: usize = 30;

/// GAIN options.
#[derive(Clone, Copy, Debug)]
pub struct GainConfig {
    /// Adversarial training iterations (each = 1 D step + 1 G step).
    pub iterations: usize,
    /// Reconstruction-loss weight α on observed entries.
    pub alpha: f32,
    /// Probability that a hint entry reveals the true mask bit.
    pub hint_rate: f64,
    /// Hidden width of both networks (defaults to twice the feature
    /// width).
    pub hidden: Option<usize>,
    /// Learning rate.
    pub lr: f32,
    /// Seed.
    pub seed: u64,
}

impl Default for GainConfig {
    fn default() -> Self {
        GainConfig {
            iterations: 300,
            alpha: 10.0,
            hint_rate: 0.9,
            hidden: None,
            lr: 0.01,
            seed: 0,
        }
    }
}

/// Encoding plan of one column (shared shape with the MIDA baseline).
enum Slot {
    Num { offset: usize },
    Cat { offset: usize, codes: Vec<u32> },
}

/// The GAIN-style imputer.
pub struct Gain {
    config: GainConfig,
}

impl Gain {
    /// Build with options.
    pub fn new(config: GainConfig) -> Self {
        Gain { config }
    }

    fn plan(table: &Table) -> (Vec<Slot>, usize) {
        let mut slots = Vec::with_capacity(table.n_columns());
        let mut width = 0usize;
        for j in 0..table.n_columns() {
            match table.schema().column(j).kind {
                ColumnKind::Numerical => {
                    slots.push(Slot::Num { offset: width });
                    width += 1;
                }
                ColumnKind::Categorical => {
                    let counts = table.category_counts(j);
                    let mut codes: Vec<u32> = (0..counts.len() as u32).collect();
                    codes.sort_by_key(|&c| std::cmp::Reverse(counts[c as usize]));
                    codes.truncate(MAX_ONE_HOT);
                    slots.push(Slot::Cat {
                        offset: width,
                        codes: codes.clone(),
                    });
                    width += codes.len().max(1);
                }
            }
        }
        (slots, width)
    }

    fn encode(table: &Table, slots: &[Slot], width: usize) -> (Tensor, Tensor) {
        let n = table.n_rows();
        let mut x = Tensor::zeros(n, width);
        let mut mask = Tensor::zeros(n, width);
        for i in 0..n {
            for (j, slot) in slots.iter().enumerate() {
                match (slot, table.get(i, j)) {
                    (Slot::Num { offset }, Value::Num(v)) => {
                        x.set(i, *offset, v as f32);
                        mask.set(i, *offset, 1.0);
                    }
                    (Slot::Cat { offset, codes }, Value::Cat(c)) => {
                        for k in 0..codes.len() {
                            mask.set(i, offset + k, 1.0);
                        }
                        if let Some(pos) = codes.iter().position(|&x| x == c) {
                            x.set(i, offset + pos, 1.0);
                        }
                    }
                    (_, Value::Null) => {}
                    _ => unreachable!("slot kinds mirror column kinds"),
                }
            }
        }
        (x, mask)
    }
}

impl Imputer for Gain {
    fn name(&self) -> &str {
        "GAIN"
    }

    fn impute(&mut self, dirty: &Table) -> Table {
        let cfg = self.config;
        let mut rng = StdRng::seed_from_u64(cfg.seed);

        let normalizer = Normalizer::fit(dirty);
        let mut norm = dirty.clone();
        normalizer.apply(&mut norm);

        let (slots, width) = Self::plan(&norm);
        if width == 0 || norm.n_rows() == 0 {
            return dirty.clone();
        }
        let (x, mask) = Self::encode(&norm, &slots, width);
        let hidden = cfg.hidden.unwrap_or((2 * width).max(16));
        let n_cells = (x.rows() * x.cols()) as f32;

        // Generator parameters first, then discriminator: step_range keys
        // off this layout.
        let mut tape = Tape::new();
        let generator = Mlp::new(&mut tape, &[2 * width, hidden, width], &mut rng);
        let g_params = tape.param_count();
        let discriminator = Mlp::new(&mut tape, &[2 * width, hidden, width], &mut rng);
        tape.freeze();
        let d_params = tape.param_count();
        let mut adam_g = Adam::new(cfg.lr);
        let mut adam_d = Adam::new(cfg.lr);

        // Constants reused across iterations.
        let x_masked = x.clone(); // missing entries are already 0
        let inv_mask = mask.map(|v| 1.0 - v);
        let mask_targets: Rc<Vec<f32>> = Rc::new(mask.as_slice().to_vec());

        // `input_mask` controls what the generator *sees*; the true `mask`
        // controls the pass-through. Hiding a random subset of observed
        // entries from the input (but keeping them in the reconstruction
        // target) turns every observed cell into a training signal for
        // imputation — the self-supervision that stabilizes GAIN on small
        // tables.
        let gen_forward = |tape: &mut Tape, gen: &Mlp, input_mask: &Tensor| {
            let mut x_in = x_masked.clone();
            for (v, &m) in x_in.as_mut_slice().iter_mut().zip(input_mask.as_slice()) {
                *v *= m;
            }
            let xin = tape.input(x_in);
            let min = tape.input(input_mask.clone());
            let gin = tape.concat_cols(&[xin, min]);
            let raw = gen.forward(tape, gin);
            // completed matrix: (truly) observed entries pass through,
            // missing entries come from the generator
            let mt = tape.input(mask.clone());
            let imt = tape.input(inv_mask.clone());
            let x_const = tape.input(x_masked.clone());
            let observed_part = tape.mul_elem(x_const, mt);
            let generated_part = tape.mul_elem(raw, imt);
            (tape.add(observed_part, generated_part), raw)
        };

        for _ in 0..cfg.iterations {
            // GAIN hint: reveal the true mask bit with probability
            // hint_rate, otherwise 0.5
            let mut hint = mask.clone();
            for v in hint.as_mut_slice().iter_mut() {
                if rng.gen::<f64>() >= cfg.hint_rate {
                    *v = 0.5;
                }
            }

            // per-iteration pseudo-missingness for the generator input
            let mut input_mask = mask.clone();
            for v in input_mask.as_mut_slice().iter_mut() {
                if *v == 1.0 && rng.gen::<f64>() < 0.2 {
                    *v = 0.0;
                }
            }

            // --- discriminator step (generator output detached) ---
            let completed_value = {
                let (completed, _) = gen_forward(&mut tape, &generator, &input_mask);
                let v = tape.value(completed).clone();
                tape.reset();
                v
            };
            {
                let comp = tape.input(completed_value.clone());
                let h = tape.input(hint.clone());
                let din = tape.concat_cols(&[comp, h]);
                let logits = discriminator.forward(&mut tape, din);
                let probs = tape.sigmoid(logits);
                let flat = tape.reshape(probs, x.rows() * x.cols(), 1);
                let loss = tape.mse_loss(flat, Rc::clone(&mask_targets));
                tape.backward(loss);
                adam_d.step_range(&mut tape, g_params..d_params);
                tape.reset();
            }

            // --- generator step (gradient flows through D, only G updates) ---
            {
                let (completed, raw) = gen_forward(&mut tape, &generator, &input_mask);
                let h = tape.input(hint.clone());
                let din = tape.concat_cols(&[completed, h]);
                let logits = discriminator.forward(&mut tape, din);
                let probs = tape.sigmoid(logits);
                // adversarial: push D's score on *missing* entries toward 1
                let imt = tape.input(inv_mask.clone());
                let fooled = tape.mul_elem(probs, imt);
                let diff = tape.sub(fooled, imt);
                let sq = tape.mul_elem(diff, diff);
                let adv_sum = tape.sum_all(sq);
                let adv = tape.scale(adv_sum, 1.0 / n_cells);
                // reconstruction on ALL observed entries — including those
                // hidden from the generator's input, which is where the
                // imputation skill comes from
                let target = tape.input(x.clone());
                let rec_diff = tape.sub(raw, target);
                let mt = tape.input(mask.clone());
                let rec_masked = tape.mul_elem(rec_diff, mt);
                let rec_sq = tape.mul_elem(rec_masked, rec_masked);
                let rec_sum = tape.sum_all(rec_sq);
                let rec = tape.scale(rec_sum, cfg.alpha / n_cells);
                let loss = tape.add(adv, rec);
                tape.backward(loss);
                adam_g.step_range(&mut tape, 0..g_params);
                tape.reset();
            }
        }

        // Decode the final completed matrix (full input visibility).
        let completed = {
            let (c, _) = gen_forward(&mut tape, &generator, &mask);
            let v = tape.value(c).clone();
            tape.reset();
            v
        };
        let mut result = dirty.clone();
        for (i, j) in norm.missing_cells() {
            match &slots[j] {
                Slot::Num { offset } => {
                    let z = f64::from(completed.get(i, *offset));
                    result.set(i, j, Value::Num(normalizer.inverse(j, z)));
                }
                Slot::Cat { offset, codes } => {
                    if codes.is_empty() {
                        continue;
                    }
                    let best = (0..codes.len())
                        .max_by(|&a, &b| {
                            completed
                                .get(i, offset + a)
                                .total_cmp(&completed.get(i, offset + b))
                        })
                        .expect("non-empty block");
                    result.set(i, j, Value::Cat(codes[best]));
                }
            }
        }
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use grimp_table::{check_imputation_contract, inject_mcar, Schema};

    fn functional_table(n: usize) -> Table {
        let schema = Schema::from_pairs(&[
            ("a", ColumnKind::Categorical),
            ("b", ColumnKind::Categorical),
            ("x", ColumnKind::Numerical),
        ]);
        let mut t = Table::empty(schema);
        for i in 0..n {
            let a = format!("a{}", i % 3);
            let b = format!("b{}", i % 3);
            let x = format!("{}", (i % 3) as f64 * 10.0);
            t.push_str_row(&[Some(&a), Some(&b), Some(&x)]);
        }
        t
    }

    #[test]
    fn gain_imputes_with_contract_and_learns() {
        let clean = functional_table(90);
        let mut dirty = clean.clone();
        let log = inject_mcar(&mut dirty, 0.1, &mut StdRng::seed_from_u64(1));
        let mut g = Gain::new(GainConfig::default());
        let imputed = g.impute(&dirty);
        check_imputation_contract(&dirty, &imputed).unwrap();
        let cat: Vec<_> = log.cells.iter().filter(|c| c.col < 2).collect();
        let correct = cat
            .iter()
            .filter(|c| imputed.get(c.row, c.col) == c.truth)
            .count();
        let acc = correct as f64 / cat.len().max(1) as f64;
        // must clearly beat the 1/3 chance floor. GANs are the weakest
        // family here by design — the paper's §1 observes exactly this
        // ("poor training results in non-convergence or mode collapse" on
        // mixed relational data), so near-discriminative accuracy is not
        // expected of GAIN.
        assert!(acc > 0.42, "gain accuracy {acc}");
    }

    #[test]
    fn categorical_outputs_are_coerced_to_the_active_domain() {
        // the paper's point about generative models: numerical outputs must
        // be coerced back to domain values — the decoder can only emit
        // dictionary codes
        let clean = functional_table(60);
        let mut dirty = clean.clone();
        inject_mcar(&mut dirty, 0.2, &mut StdRng::seed_from_u64(2));
        let mut g = Gain::new(GainConfig {
            iterations: 40,
            ..Default::default()
        });
        let imputed = g.impute(&dirty);
        for (i, j) in dirty.missing_cells() {
            if j < 2 {
                let v = imputed.display(i, j);
                let prefix = if j == 0 { "a" } else { "b" };
                assert!(v.starts_with(prefix), "out-of-domain value {v}");
            }
        }
    }

    #[test]
    fn adversarial_training_is_deterministic_per_seed() {
        let clean = functional_table(40);
        let mut dirty = clean.clone();
        inject_mcar(&mut dirty, 0.15, &mut StdRng::seed_from_u64(3));
        let cfg = GainConfig {
            iterations: 20,
            seed: 5,
            ..Default::default()
        };
        let a = Gain::new(cfg).impute(&dirty);
        let b = Gain::new(cfg).impute(&dirty);
        assert_eq!(a, b);
    }
}

//! Feature encodings shared by the classical baselines.

use grimp_table::{ColumnKind, Table, Value};

/// A fully observed (pre-filled) feature column.
#[derive(Clone, Debug)]
pub enum FeatCol {
    /// Numerical features.
    Num(Vec<f64>),
    /// Categorical codes with the dictionary size.
    Cat {
        /// Per-row codes.
        codes: Vec<u32>,
        /// Number of categories.
        n_categories: usize,
    },
}

impl FeatCol {
    /// Number of rows.
    pub fn len(&self) -> usize {
        match self {
            FeatCol::Num(v) => v.len(),
            FeatCol::Cat { codes, .. } => codes.len(),
        }
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// A complete (no missing entries) feature matrix used by trees, KNN and
/// MICE. Built from a table whose missing cells have been pre-filled.
#[derive(Clone, Debug)]
pub struct FeatureMatrix {
    /// One entry per table column.
    pub cols: Vec<FeatCol>,
    n_rows: usize,
}

impl FeatureMatrix {
    /// Encode a table that contains no missing values.
    ///
    /// # Panics
    /// Panics if the table still has `∅` cells.
    pub fn from_complete_table(table: &Table) -> Self {
        assert_eq!(
            table.n_missing(),
            0,
            "feature matrix requires a complete table"
        );
        let cols = (0..table.n_columns())
            .map(|j| match table.schema().column(j).kind {
                ColumnKind::Numerical => FeatCol::Num(
                    (0..table.n_rows())
                        .map(|i| table.get(i, j).as_num().expect("complete"))
                        .collect(),
                ),
                ColumnKind::Categorical => FeatCol::Cat {
                    codes: (0..table.n_rows())
                        .map(|i| table.get(i, j).as_cat().expect("complete"))
                        .collect(),
                    n_categories: table.dictionary(j).len(),
                },
            })
            .collect();
        FeatureMatrix {
            cols,
            n_rows: table.n_rows(),
        }
    }

    /// Number of rows.
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// Number of columns.
    pub fn n_cols(&self) -> usize {
        self.cols.len()
    }

    /// Write a value back (used by iterative imputers between rounds).
    pub fn set(&mut self, row: usize, col: usize, v: Value) {
        match (&mut self.cols[col], v) {
            (FeatCol::Num(vals), Value::Num(x)) => vals[row] = x,
            (FeatCol::Cat { codes, .. }, Value::Cat(c)) => codes[row] = c,
            (col, v) => panic!("value {v:?} does not match feature column {col:?}"),
        }
    }

    /// Read a value.
    pub fn get(&self, row: usize, col: usize) -> Value {
        match &self.cols[col] {
            FeatCol::Num(vals) => Value::Num(vals[row]),
            FeatCol::Cat { codes, .. } => Value::Cat(codes[row]),
        }
    }
}

/// Fill every `∅` cell with the column mean (numerical) or mode
/// (categorical); empty columns fall back to 0 / code 0 after interning a
/// placeholder. Returns the filled table.
pub fn mean_mode_fill(dirty: &Table) -> Table {
    let mut filled = dirty.clone();
    for j in 0..dirty.n_columns() {
        match dirty.schema().column(j).kind {
            ColumnKind::Numerical => {
                let fill = dirty.mean(j).unwrap_or(0.0);
                for i in 0..dirty.n_rows() {
                    if dirty.is_missing(i, j) {
                        filled.set(i, j, Value::Num(fill));
                    }
                }
            }
            ColumnKind::Categorical => {
                let fill = match dirty.mode(j) {
                    Some(m) => m,
                    None => filled.intern(j, "<empty>"),
                };
                for i in 0..dirty.n_rows() {
                    if dirty.is_missing(i, j) {
                        filled.set(i, j, Value::Cat(fill));
                    }
                }
            }
        }
    }
    filled
}

#[cfg(test)]
mod tests {
    use super::*;
    use grimp_table::Schema;

    fn dirty() -> Table {
        let schema =
            Schema::from_pairs(&[("c", ColumnKind::Categorical), ("x", ColumnKind::Numerical)]);
        Table::from_rows(
            schema,
            &[
                vec![Some("a"), Some("1.0")],
                vec![Some("a"), None],
                vec![None, Some("3.0")],
                vec![Some("b"), Some("2.0")],
            ],
        )
    }

    #[test]
    fn mean_mode_fill_completes_the_table() {
        let filled = mean_mode_fill(&dirty());
        assert_eq!(filled.n_missing(), 0);
        assert_eq!(filled.display(2, 0), "a"); // mode
        assert_eq!(filled.get(1, 1), Value::Num(2.0)); // mean of 1, 3, 2
    }

    #[test]
    fn matrix_roundtrips_values() {
        let filled = mean_mode_fill(&dirty());
        let mut m = FeatureMatrix::from_complete_table(&filled);
        assert_eq!(m.n_rows(), 4);
        assert_eq!(m.get(0, 0), Value::Cat(0));
        m.set(0, 0, Value::Cat(1));
        assert_eq!(m.get(0, 0), Value::Cat(1));
    }

    #[test]
    #[should_panic(expected = "complete table")]
    fn matrix_rejects_incomplete_tables() {
        FeatureMatrix::from_complete_table(&dirty());
    }

    #[test]
    fn all_null_categorical_column_gets_placeholder() {
        let schema = Schema::from_pairs(&[("c", ColumnKind::Categorical)]);
        let t = Table::from_rows(schema, &[vec![None], vec![None]]);
        let filled = mean_mode_fill(&t);
        assert_eq!(filled.n_missing(), 0);
        assert_eq!(filled.display(0, 0), "<empty>");
    }
}

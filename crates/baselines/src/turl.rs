//! TURL-sub: a table-representation-learning baseline standing in for TURL
//! (Deng et al., VLDB 2020).
//!
//! TURL is a transformer pretrained on Wikipedia tables and fine-tuned for
//! cell filling; the pretrained corpus is unavailable here, so this
//! substitute keeps the evaluation-relevant mechanism (see DESIGN.md §3):
//! every cell is a *token* with a trainable embedding, a masked-cell
//! objective trains a content-based attention encoder over the row, and the
//! prediction is a token classification over the union of all attribute
//! vocabularies. Numbers are tokens too — exactly why TURL "does worse for
//! numerical attributes, as those are not considered in the original
//! design" (§4.2): the substitute inherits that weakness by construction.

use std::rc::Rc;

use rand::rngs::StdRng;
use rand::SeedableRng;

use grimp::vectors::VectorBatch;
use grimp_graph::{GraphConfig, TableGraph};
use grimp_table::{ColumnKind, Corpus, Imputer, Normalizer, Table, Value};
use grimp_tensor::{init, Adam, Dense, Mlp, Tape, Var};

use crate::domain::ValueDomain;

/// TURL-sub options.
#[derive(Clone, Copy, Debug)]
pub struct TurlConfig {
    /// Token-embedding dimensionality.
    pub dim: usize,
    /// Training epochs.
    pub epochs: usize,
    /// Learning rate.
    pub lr: f32,
    /// Graph canonicalization (token vocabulary).
    pub graph: GraphConfig,
    /// Seed.
    pub seed: u64,
}

impl Default for TurlConfig {
    fn default() -> Self {
        TurlConfig {
            dim: 32,
            epochs: 100,
            lr: 0.02,
            graph: GraphConfig::default(),
            seed: 0,
        }
    }
}

/// The TURL substitute.
pub struct TurlSub {
    config: TurlConfig,
}

impl TurlSub {
    /// Build with options.
    pub fn new(config: TurlConfig) -> Self {
        TurlSub { config }
    }

    /// Content-based attention pooling over the row's live tokens followed
    /// by the vocabulary classifier.
    fn forward(
        tape: &mut Tape,
        emb: Var,
        query: &Dense,
        classifier: &Mlp,
        batch: &VectorBatch,
    ) -> Var {
        let v = tape.gather_rows(emb, Rc::clone(&batch.idx));
        let mask = tape.input(batch.mask.clone());
        let v = tape.mul_elem(v, mask);
        // content scores: each token projected to a scalar relevance
        let scores = query.forward(tape, v); // (N·C) × 1
        let scores = tape.reshape(scores, batch.n, batch.n_cols);
        let bias = tape.input(batch.score_bias.clone());
        let scores = tape.add(scores, bias);
        let alpha = tape.row_softmax(scores);
        let ctx = tape.block_weighted_sum(v, alpha);
        classifier.forward(tape, ctx)
    }
}

impl Imputer for TurlSub {
    fn name(&self) -> &str {
        "TURL"
    }

    fn impute(&mut self, dirty: &Table) -> Table {
        let cfg = self.config;
        let mut rng = StdRng::seed_from_u64(cfg.seed);

        let normalizer = Normalizer::fit(dirty);
        let mut norm = dirty.clone();
        normalizer.apply(&mut norm);

        let graph = TableGraph::build(&norm, cfg.graph, &[]);
        let domain = ValueDomain::build(&graph);
        if domain.n_classes() == 0 {
            return dirty.clone();
        }
        let corpus = Corpus::build(&norm, 0.0, &mut rng);

        let mut tape = Tape::new();
        let emb = tape.param(init::normal(graph.n_nodes(), cfg.dim, 0.1, &mut rng));
        let query = Dense::new(&mut tape, cfg.dim, 1, &mut rng);
        let classifier = Mlp::new(
            &mut tape,
            &[cfg.dim, cfg.dim * 2, domain.n_classes()],
            &mut rng,
        );
        tape.freeze();
        let mut adam = Adam::new(cfg.lr);

        // Flat masked-cell training set.
        let mut positions = Vec::new();
        let mut labels = Vec::new();
        for bucket in &corpus.train {
            for s in bucket {
                let key =
                    grimp_graph::value_key(&norm, s.row, s.target_col, cfg.graph.numeric_decimals)
                        .expect("labels non-null");
                if let Some(class) = domain.class_of(s.target_col, &key) {
                    positions.push((s.row, s.target_col));
                    labels.push(class);
                }
            }
        }
        if labels.is_empty() {
            return crate::encoding::mean_mode_fill(dirty);
        }
        let batch = VectorBatch::build(&graph, &norm, &positions, cfg.dim);
        let labels = Rc::new(labels);
        for _ in 0..cfg.epochs {
            let logits = Self::forward(&mut tape, emb, &query, &classifier, &batch);
            let loss = tape.softmax_cross_entropy(logits, Rc::clone(&labels));
            tape.backward(loss);
            adam.step(&mut tape);
            tape.reset();
        }

        // Imputation: token argmax within the target column's vocabulary.
        let mut result = dirty.clone();
        let missing = norm.missing_cells();
        if !missing.is_empty() {
            let batch = VectorBatch::build(&graph, &norm, &missing, cfg.dim);
            let logits = Self::forward(&mut tape, emb, &query, &classifier, &batch);
            let out = tape.value(logits).clone();
            for (s, &(i, j)) in missing.iter().enumerate() {
                let (lo, hi) = domain.column_range(j);
                if lo == hi {
                    continue;
                }
                let row = out.row_slice(s);
                let best = (lo..hi)
                    .max_by(|&a, &b| row[a].total_cmp(&row[b]))
                    .expect("non-empty");
                let key = domain.key_of(j, best);
                match norm.schema().column(j).kind {
                    ColumnKind::Categorical => {
                        let code = result.intern(j, key);
                        result.set(i, j, Value::Cat(code));
                    }
                    ColumnKind::Numerical => {
                        let z: f64 = key.parse().expect("numeric keys parse");
                        result.set(i, j, Value::Num(normalizer.inverse(j, z)));
                    }
                }
            }
            tape.reset();
        }
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use grimp_table::{check_imputation_contract, inject_mcar, Schema};

    fn functional_table(n: usize) -> Table {
        let schema = Schema::from_pairs(&[
            ("a", ColumnKind::Categorical),
            ("b", ColumnKind::Categorical),
        ]);
        let mut t = Table::empty(schema);
        for i in 0..n {
            let a = format!("a{}", i % 3);
            let b = format!("b{}", i % 3);
            t.push_str_row(&[Some(&a), Some(&b)]);
        }
        t
    }

    #[test]
    fn turl_sub_learns_entity_cooccurrence() {
        let clean = functional_table(60);
        let mut dirty = clean.clone();
        let log = inject_mcar(&mut dirty, 0.1, &mut StdRng::seed_from_u64(1));
        let mut m = TurlSub::new(TurlConfig::default());
        let imputed = m.impute(&dirty);
        check_imputation_contract(&dirty, &imputed).unwrap();
        let correct = log
            .cells
            .iter()
            .filter(|c| {
                let Value::Cat(code) = c.truth else {
                    unreachable!()
                };
                imputed.display(c.row, c.col) == clean.dictionary(c.col)[code as usize]
            })
            .count();
        let acc = correct as f64 / log.len().max(1) as f64;
        assert!(acc > 0.5, "turl-sub accuracy {acc}");
    }

    #[test]
    fn numeric_predictions_are_tokens_from_the_observed_domain() {
        // the key TURL weakness: numerical outputs can only be values seen
        // in the column
        let schema =
            Schema::from_pairs(&[("c", ColumnKind::Categorical), ("x", ColumnKind::Numerical)]);
        let mut t = Table::empty(schema);
        for i in 0..40 {
            t.push_str_row(&[
                Some(if i % 2 == 0 { "even" } else { "odd" }),
                Some(&format!("{}", (i % 2) as f64)),
            ]);
        }
        let mut dirty = t.clone();
        inject_mcar(&mut dirty, 0.15, &mut StdRng::seed_from_u64(2));
        let mut m = TurlSub::new(TurlConfig::default());
        let imputed = m.impute(&dirty);
        for (i, j) in dirty.missing_cells() {
            if j == 1 {
                let v = imputed.get(i, 1).as_num().unwrap();
                // tolerance covers the 4-decimal canonicalization of the
                // normalized token keys
                assert!(
                    (v - 0.0).abs() < 1e-3 || (v - 1.0).abs() < 1e-3,
                    "token-predicted numeric {v} outside the observed domain"
                );
            }
        }
    }
}

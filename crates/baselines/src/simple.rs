//! Simple reference imputers: mode/mean and K-nearest-neighbors.
//!
//! Mode/mean is the floor every learned method must beat; KNN
//! (Troyanskaya et al., 2001) is the classical neighborhood method cited in
//! the paper's related work.

use grimp_table::{ColumnKind, Imputer, Table, Value};

/// Impute every `∅` with the column mode (categorical) or mean (numerical).
#[derive(Default)]
pub struct MeanMode;

impl Imputer for MeanMode {
    fn name(&self) -> &str {
        "Mean/Mode"
    }

    fn impute(&mut self, dirty: &Table) -> Table {
        crate::encoding::mean_mode_fill(dirty)
    }
}

/// K-nearest-neighbor imputation over a mixed-type Gower-style distance:
/// numerical dimensions contribute `|a - b| / range`, categorical dimensions
/// contribute `0/1` mismatch, and dimensions missing in either tuple are
/// skipped (distance is averaged over comparable dimensions only).
pub struct KnnImputer {
    /// Number of neighbors.
    pub k: usize,
}

impl KnnImputer {
    /// KNN with the given neighbor count.
    pub fn new(k: usize) -> Self {
        assert!(k > 0, "k must be positive");
        KnnImputer { k }
    }

    fn distance(t: &Table, ranges: &[Option<(f64, f64)>], a: usize, b: usize) -> Option<f64> {
        let mut total = 0.0;
        let mut dims = 0usize;
        for (j, range) in ranges.iter().enumerate() {
            match (t.get(a, j), t.get(b, j)) {
                (Value::Null, _) | (_, Value::Null) => continue,
                (Value::Cat(x), Value::Cat(y)) => {
                    total += if x == y { 0.0 } else { 1.0 };
                    dims += 1;
                }
                (Value::Num(x), Value::Num(y)) => {
                    let (lo, hi) = range.expect("numeric range");
                    let span = (hi - lo).max(1e-12);
                    total += ((x - y).abs() / span).min(1.0);
                    dims += 1;
                }
                _ => unreachable!("column kinds are homogeneous"),
            }
        }
        (dims > 0).then(|| total / dims as f64)
    }
}

impl Imputer for KnnImputer {
    fn name(&self) -> &str {
        "KNN"
    }

    fn impute(&mut self, dirty: &Table) -> Table {
        let n = dirty.n_rows();
        let ranges: Vec<Option<(f64, f64)>> = (0..dirty.n_columns())
            .map(|j| match dirty.schema().column(j).kind {
                ColumnKind::Numerical => {
                    let vals: Vec<f64> = (0..n).filter_map(|i| dirty.get(i, j).as_num()).collect();
                    if vals.is_empty() {
                        Some((0.0, 1.0))
                    } else {
                        let lo = vals.iter().copied().fold(f64::INFINITY, f64::min);
                        let hi = vals.iter().copied().fold(f64::NEG_INFINITY, f64::max);
                        Some((lo, hi))
                    }
                }
                ColumnKind::Categorical => None,
            })
            .collect();

        let mut result = dirty.clone();
        for (i, j) in dirty.missing_cells() {
            // candidate donors: rows with the target observed
            let mut dists: Vec<(f64, usize)> = (0..n)
                .filter(|&r| r != i && !dirty.is_missing(r, j))
                .filter_map(|r| Self::distance(dirty, &ranges, i, r).map(|d| (d, r)))
                .collect();
            dists.sort_by(|a, b| a.0.total_cmp(&b.0));
            dists.truncate(self.k);
            if dists.is_empty() {
                // no comparable donor: fall back to mode/mean
                match dirty.schema().column(j).kind {
                    ColumnKind::Categorical => {
                        if let Some(m) = dirty.mode(j) {
                            result.set(i, j, Value::Cat(m));
                        }
                    }
                    ColumnKind::Numerical => {
                        if let Some(m) = dirty.mean(j) {
                            result.set(i, j, Value::Num(m));
                        }
                    }
                }
                continue;
            }
            match dirty.schema().column(j).kind {
                ColumnKind::Categorical => {
                    let mut votes: std::collections::HashMap<u32, usize> = Default::default();
                    for &(_, r) in &dists {
                        *votes
                            .entry(dirty.get(r, j).as_cat().expect("observed"))
                            .or_default() += 1;
                    }
                    let best = votes
                        .iter()
                        .max_by(|a, b| a.1.cmp(b.1).then(b.0.cmp(a.0)))
                        .map(|(&c, _)| c)
                        .expect("non-empty votes");
                    result.set(i, j, Value::Cat(best));
                }
                ColumnKind::Numerical => {
                    let mean = dists
                        .iter()
                        .map(|&(_, r)| dirty.get(r, j).as_num().expect("observed"))
                        .sum::<f64>()
                        / dists.len() as f64;
                    result.set(i, j, Value::Num(mean));
                }
            }
        }
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use grimp_table::{check_imputation_contract, inject_mcar, Schema};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn clustered() -> Table {
        let schema = Schema::from_pairs(&[
            ("g", ColumnKind::Categorical),
            ("v", ColumnKind::Categorical),
            ("x", ColumnKind::Numerical),
        ]);
        let mut t = Table::empty(schema);
        for i in 0..60 {
            let c = i % 2;
            t.push_str_row(&[
                Some(if c == 0 { "g0" } else { "g1" }),
                Some(if c == 0 { "v0" } else { "v1" }),
                Some(if c == 0 { "10.0" } else { "90.0" }),
            ]);
        }
        t
    }

    #[test]
    fn mean_mode_satisfies_contract() {
        let mut dirty = clustered();
        inject_mcar(&mut dirty, 0.2, &mut StdRng::seed_from_u64(0));
        let imputed = MeanMode.impute(&dirty);
        check_imputation_contract(&dirty, &imputed).unwrap();
    }

    #[test]
    fn knn_uses_cluster_structure() {
        let clean = clustered();
        let mut dirty = clean.clone();
        let log = inject_mcar(&mut dirty, 0.15, &mut StdRng::seed_from_u64(1));
        let mut knn = KnnImputer::new(5);
        let imputed = knn.impute(&dirty);
        check_imputation_contract(&dirty, &imputed).unwrap();
        let correct = log
            .cells
            .iter()
            .filter(|c| match (c.truth, imputed.get(c.row, c.col)) {
                (Value::Num(t), Value::Num(p)) => (t - p).abs() < 20.0,
                (t, p) => t == p,
            })
            .count();
        let acc = correct as f64 / log.len() as f64;
        assert!(acc > 0.9, "knn cluster accuracy {acc}");
    }

    #[test]
    fn knn_beats_mode_on_clustered_categoricals() {
        let clean = clustered();
        let mut dirty = clean.clone();
        let log = inject_mcar(&mut dirty, 0.2, &mut StdRng::seed_from_u64(2));
        let knn_imp = KnnImputer::new(3).impute(&dirty);
        let mode_imp = MeanMode.impute(&dirty);
        let acc = |imp: &Table| {
            log.cells
                .iter()
                .filter(|c| c.col < 2)
                .filter(|c| imp.get(c.row, c.col) == c.truth)
                .count()
        };
        assert!(
            acc(&knn_imp) >= acc(&mode_imp),
            "knn should not lose to mode here"
        );
    }

    #[test]
    fn knn_falls_back_when_no_donor_exists() {
        let schema = Schema::from_pairs(&[("a", ColumnKind::Categorical)]);
        let t = Table::from_rows(schema, &[vec![Some("x")], vec![None]]);
        // row 1 has no observed dims at all → no comparable donors
        let imputed = KnnImputer::new(3).impute(&t);
        assert_eq!(imputed.display(1, 0), "x");
    }
}

//! CART decision trees over mixed feature matrices.
//!
//! Classification trees minimize Gini impurity; regression trees minimize
//! variance. Numerical features split on thresholds (quantile-capped),
//! categorical features on equality against the most frequent categories.
//! Built from scratch for the MissForest/FUNFOREST baselines.

use rand::seq::SliceRandom;
use rand::Rng;

use crate::encoding::{FeatCol, FeatureMatrix};

/// Maximum candidate thresholds / categories examined per feature.
const MAX_CANDIDATES: usize = 32;

/// What a tree predicts.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TreeTarget {
    /// Multi-class classification with the given class count.
    Classification(usize),
    /// Scalar regression.
    Regression,
}

/// Labels for training.
#[derive(Clone, Debug)]
pub enum TreeLabels {
    /// Class codes (must be `< n_classes`).
    Classes(Vec<u32>),
    /// Regression targets.
    Values(Vec<f64>),
}

/// A split rule at an internal node.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum SplitRule {
    /// `x[col] <= thr` goes left.
    NumThreshold {
        /// Feature column.
        col: usize,
        /// Threshold.
        thr: f64,
    },
    /// `x[col] == code` goes left.
    CatEquals {
        /// Feature column.
        col: usize,
        /// Category code.
        code: u32,
    },
}

impl SplitRule {
    fn goes_left(&self, features: &FeatureMatrix, row: usize) -> bool {
        match *self {
            SplitRule::NumThreshold { col, thr } => match &features.cols[col] {
                FeatCol::Num(v) => v[row] <= thr,
                _ => unreachable!("numeric rule on categorical column"),
            },
            SplitRule::CatEquals { col, code } => match &features.cols[col] {
                FeatCol::Cat { codes, .. } => codes[row] == code,
                _ => unreachable!("categorical rule on numeric column"),
            },
        }
    }
}

#[derive(Clone, Debug)]
enum Node {
    Leaf {
        prediction: Prediction,
    },
    Internal {
        rule: SplitRule,
        left: usize,
        right: usize,
    },
}

#[derive(Clone, Debug)]
enum Prediction {
    Class(u32),
    Value(f64),
}

/// Tree construction options.
#[derive(Clone, Copy, Debug)]
pub struct TreeConfig {
    /// Maximum depth.
    pub max_depth: usize,
    /// Minimum samples needed to attempt a split.
    pub min_samples_split: usize,
    /// Features examined per split (`mtry`); `None` = all, with a given
    /// restriction list still applying.
    pub mtry: Option<usize>,
}

impl Default for TreeConfig {
    fn default() -> Self {
        TreeConfig {
            max_depth: 12,
            min_samples_split: 4,
            mtry: None,
        }
    }
}

/// A fitted CART tree.
#[derive(Clone, Debug)]
pub struct DecisionTree {
    nodes: Vec<Node>,
    target: TreeTarget,
}

impl DecisionTree {
    /// Fit a tree on the rows `sample` of `features` with `labels`
    /// (indexed by position in `sample`). `allowed_features` restricts the
    /// columns the tree may split on (FUNFOREST points trees at FD
    /// attributes this way).
    pub fn fit(
        features: &FeatureMatrix,
        sample: &[usize],
        labels: &TreeLabels,
        target: TreeTarget,
        allowed_features: &[usize],
        config: TreeConfig,
        rng: &mut impl Rng,
    ) -> Self {
        assert!(!sample.is_empty(), "cannot fit a tree on zero rows");
        match (labels, target) {
            (TreeLabels::Classes(c), TreeTarget::Classification(_)) => {
                assert_eq!(c.len(), sample.len())
            }
            (TreeLabels::Values(v), TreeTarget::Regression) => assert_eq!(v.len(), sample.len()),
            _ => panic!("label kind does not match tree target"),
        }
        let mut tree = DecisionTree {
            nodes: Vec::new(),
            target,
        };
        let indices: Vec<usize> = (0..sample.len()).collect();
        tree.grow(
            features,
            sample,
            labels,
            &indices,
            allowed_features,
            config,
            0,
            rng,
        );
        tree
    }

    #[allow(clippy::too_many_arguments)]
    fn grow(
        &mut self,
        features: &FeatureMatrix,
        sample: &[usize],
        labels: &TreeLabels,
        subset: &[usize],
        allowed: &[usize],
        config: TreeConfig,
        depth: usize,
        rng: &mut impl Rng,
    ) -> usize {
        let node_id = self.nodes.len();
        self.nodes.push(Node::Leaf {
            prediction: leaf_prediction(labels, subset, self.target),
        });
        if depth >= config.max_depth
            || subset.len() < config.min_samples_split
            || is_pure(labels, subset)
        {
            return node_id;
        }
        // candidate feature subset
        let mut feats: Vec<usize> = allowed.to_vec();
        if let Some(mtry) = config.mtry {
            if feats.len() > mtry {
                feats.shuffle(rng);
                feats.truncate(mtry);
            }
        }
        // Zero-gain splits are allowed (as in standard CART): XOR-style
        // interactions have zero marginal gain at the root yet perfect
        // splits one level down. Recursion stays bounded by max_depth and
        // strictly shrinking children.
        let Some((rule, _gain)) = best_split(features, sample, labels, subset, &feats, self.target)
        else {
            return node_id;
        };
        let (left_subset, right_subset): (Vec<usize>, Vec<usize>) = subset
            .iter()
            .partition(|&&k| rule.goes_left(features, sample[k]));
        if left_subset.is_empty() || right_subset.is_empty() {
            return node_id;
        }
        let left = self.grow(
            features,
            sample,
            labels,
            &left_subset,
            allowed,
            config,
            depth + 1,
            rng,
        );
        let right = self.grow(
            features,
            sample,
            labels,
            &right_subset,
            allowed,
            config,
            depth + 1,
            rng,
        );
        self.nodes[node_id] = Node::Internal { rule, left, right };
        node_id
    }

    /// Predict the class of one row (classification trees).
    pub fn predict_class(&self, features: &FeatureMatrix, row: usize) -> u32 {
        match self.walk(features, row) {
            Prediction::Class(c) => *c,
            Prediction::Value(_) => panic!("regression tree asked for a class"),
        }
    }

    /// Predict the value of one row (regression trees).
    pub fn predict_value(&self, features: &FeatureMatrix, row: usize) -> f64 {
        match self.walk(features, row) {
            Prediction::Value(v) => *v,
            Prediction::Class(_) => panic!("classification tree asked for a value"),
        }
    }

    fn walk(&self, features: &FeatureMatrix, row: usize) -> &Prediction {
        let mut node = 0usize;
        loop {
            match &self.nodes[node] {
                Node::Leaf { prediction } => return prediction,
                Node::Internal { rule, left, right } => {
                    node = if rule.goes_left(features, row) {
                        *left
                    } else {
                        *right
                    };
                }
            }
        }
    }

    /// Number of nodes (for inspection/tests).
    pub fn n_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Tree depth (longest root-to-leaf path).
    pub fn depth(&self) -> usize {
        fn rec(nodes: &[Node], id: usize) -> usize {
            match &nodes[id] {
                Node::Leaf { .. } => 0,
                Node::Internal { left, right, .. } => 1 + rec(nodes, *left).max(rec(nodes, *right)),
            }
        }
        rec(&self.nodes, 0)
    }
}

fn is_pure(labels: &TreeLabels, subset: &[usize]) -> bool {
    match labels {
        TreeLabels::Classes(c) => subset.windows(2).all(|w| c[w[0]] == c[w[1]]),
        TreeLabels::Values(v) => subset.windows(2).all(|w| (v[w[0]] - v[w[1]]).abs() < 1e-12),
    }
}

fn leaf_prediction(labels: &TreeLabels, subset: &[usize], target: TreeTarget) -> Prediction {
    match (labels, target) {
        (TreeLabels::Classes(c), TreeTarget::Classification(n_classes)) => {
            let mut counts = vec![0usize; n_classes];
            for &k in subset {
                counts[c[k] as usize] += 1;
            }
            let best = counts
                .iter()
                .enumerate()
                .max_by_key(|(_, &n)| n)
                .map(|(i, _)| i as u32)
                .unwrap_or(0);
            Prediction::Class(best)
        }
        (TreeLabels::Values(v), TreeTarget::Regression) => {
            let mean = subset.iter().map(|&k| v[k]).sum::<f64>() / subset.len().max(1) as f64;
            Prediction::Value(mean)
        }
        _ => unreachable!("checked at fit time"),
    }
}

/// Impurity of a subset: Gini for classification, variance for regression.
fn impurity(labels: &TreeLabels, subset: &[usize], target: TreeTarget) -> f64 {
    match (labels, target) {
        (TreeLabels::Classes(c), TreeTarget::Classification(n_classes)) => {
            let mut counts = vec![0usize; n_classes];
            for &k in subset {
                counts[c[k] as usize] += 1;
            }
            let n = subset.len() as f64;
            1.0 - counts.iter().map(|&k| (k as f64 / n).powi(2)).sum::<f64>()
        }
        (TreeLabels::Values(v), TreeTarget::Regression) => {
            let n = subset.len() as f64;
            let mean = subset.iter().map(|&k| v[k]).sum::<f64>() / n;
            subset.iter().map(|&k| (v[k] - mean).powi(2)).sum::<f64>() / n
        }
        _ => unreachable!(),
    }
}

fn best_split(
    features: &FeatureMatrix,
    sample: &[usize],
    labels: &TreeLabels,
    subset: &[usize],
    feats: &[usize],
    target: TreeTarget,
) -> Option<(SplitRule, f64)> {
    let parent_impurity = impurity(labels, subset, target);
    let n = subset.len() as f64;
    let mut best: Option<(SplitRule, f64)> = None;
    for &col in feats {
        let rules: Vec<SplitRule> = match &features.cols[col] {
            FeatCol::Num(vals) => {
                let mut uniq: Vec<f64> = subset.iter().map(|&k| vals[sample[k]]).collect();
                uniq.sort_by(f64::total_cmp);
                uniq.dedup();
                if uniq.len() < 2 {
                    continue;
                }
                let step = (uniq.len() / MAX_CANDIDATES).max(1);
                uniq.windows(2)
                    .step_by(step)
                    .map(|w| SplitRule::NumThreshold {
                        col,
                        thr: (w[0] + w[1]) / 2.0,
                    })
                    .collect()
            }
            FeatCol::Cat {
                codes,
                n_categories,
            } => {
                let mut counts = vec![0usize; *n_categories];
                for &k in subset {
                    counts[codes[sample[k]] as usize] += 1;
                }
                let mut present: Vec<u32> = (0..*n_categories as u32)
                    .filter(|&c| counts[c as usize] > 0)
                    .collect();
                if present.len() < 2 {
                    continue;
                }
                present.sort_by_key(|&c| std::cmp::Reverse(counts[c as usize]));
                present.truncate(MAX_CANDIDATES);
                present
                    .into_iter()
                    .map(|code| SplitRule::CatEquals { col, code })
                    .collect()
            }
        };
        for rule in rules {
            let (left, right): (Vec<usize>, Vec<usize>) = subset
                .iter()
                .partition(|&&k| rule.goes_left(features, sample[k]));
            if left.is_empty() || right.is_empty() {
                continue;
            }
            let gain = parent_impurity
                - (left.len() as f64 / n) * impurity(labels, &left, target)
                - (right.len() as f64 / n) * impurity(labels, &right, target);
            if best.as_ref().map(|(_, g)| gain > *g).unwrap_or(true) {
                best = Some((rule, gain));
            }
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use grimp_table::{ColumnKind, Schema, Table};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn xor_features() -> (FeatureMatrix, Vec<u32>) {
        // class = a XOR b over two binary categorical features
        let schema = Schema::from_pairs(&[
            ("a", ColumnKind::Categorical),
            ("b", ColumnKind::Categorical),
        ]);
        let mut t = Table::empty(schema);
        let mut labels = Vec::new();
        for i in 0..40 {
            let a = i % 2;
            let b = (i / 2) % 2;
            t.push_str_row(&[
                Some(if a == 0 { "0" } else { "1" }),
                Some(if b == 0 { "0" } else { "1" }),
            ]);
            labels.push((a ^ b) as u32);
        }
        (FeatureMatrix::from_complete_table(&t), labels)
    }

    #[test]
    fn classification_tree_fits_xor() {
        let (features, labels) = xor_features();
        let sample: Vec<usize> = (0..features.n_rows()).collect();
        let tree = DecisionTree::fit(
            &features,
            &sample,
            &TreeLabels::Classes(labels.clone()),
            TreeTarget::Classification(2),
            &[0, 1],
            TreeConfig::default(),
            &mut StdRng::seed_from_u64(0),
        );
        for (i, &label) in labels.iter().enumerate() {
            assert_eq!(tree.predict_class(&features, i), label, "row {i}");
        }
        assert!(tree.depth() >= 2, "xor requires depth 2");
    }

    #[test]
    fn regression_tree_fits_step_function() {
        let schema = Schema::from_pairs(&[("x", ColumnKind::Numerical)]);
        let mut t = Table::empty(schema);
        let mut labels = Vec::new();
        for i in 0..50 {
            let x = i as f64 / 10.0;
            t.push_str_row(&[Some(&format!("{x}"))]);
            labels.push(if x < 2.5 { 1.0 } else { 5.0 });
        }
        let features = FeatureMatrix::from_complete_table(&t);
        let sample: Vec<usize> = (0..50).collect();
        let tree = DecisionTree::fit(
            &features,
            &sample,
            &TreeLabels::Values(labels.clone()),
            TreeTarget::Regression,
            &[0],
            TreeConfig::default(),
            &mut StdRng::seed_from_u64(0),
        );
        for (i, &label) in labels.iter().enumerate() {
            assert!(
                (tree.predict_value(&features, i) - label).abs() < 1e-9,
                "row {i}"
            );
        }
    }

    #[test]
    fn restricted_features_are_respected() {
        let (features, labels) = xor_features();
        let sample: Vec<usize> = (0..features.n_rows()).collect();
        // only feature 0 allowed: xor cannot be fit, tree must be shallow
        // and imperfect
        let tree = DecisionTree::fit(
            &features,
            &sample,
            &TreeLabels::Classes(labels.clone()),
            TreeTarget::Classification(2),
            &[0],
            TreeConfig::default(),
            &mut StdRng::seed_from_u64(0),
        );
        let wrong = labels
            .iter()
            .enumerate()
            .filter(|(i, &l)| tree.predict_class(&features, *i) != l)
            .count();
        assert!(
            wrong > 0,
            "xor should not be perfectly classifiable from one feature"
        );
    }

    #[test]
    fn pure_subsets_become_leaves() {
        let (features, _) = xor_features();
        let sample: Vec<usize> = (0..features.n_rows()).collect();
        let tree = DecisionTree::fit(
            &features,
            &sample,
            &TreeLabels::Classes(vec![1; features.n_rows()]),
            TreeTarget::Classification(2),
            &[0, 1],
            TreeConfig::default(),
            &mut StdRng::seed_from_u64(0),
        );
        assert_eq!(
            tree.n_nodes(),
            1,
            "constant labels must yield a single leaf"
        );
        assert_eq!(tree.predict_class(&features, 0), 1);
    }

    #[test]
    fn max_depth_bounds_the_tree() {
        let (features, labels) = xor_features();
        let sample: Vec<usize> = (0..features.n_rows()).collect();
        let tree = DecisionTree::fit(
            &features,
            &sample,
            &TreeLabels::Classes(labels),
            TreeTarget::Classification(2),
            &[0, 1],
            TreeConfig {
                max_depth: 1,
                ..Default::default()
            },
            &mut StdRng::seed_from_u64(0),
        );
        assert!(tree.depth() <= 1);
    }
}

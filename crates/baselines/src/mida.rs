//! MIDA-style denoising-autoencoder imputation (Gondara & Wang, PAKDD
//! 2018 — cited as the paper's autoencoder representative [23]).
//!
//! Rows are encoded as dense vectors (z-scored numericals + frequency-
//! capped one-hot categoricals). An overcomplete autoencoder is trained to
//! reconstruct the *observed* entries from inputs corrupted by dropout
//! noise (the "denoising" part, which doubles as the model of
//! missingness); imputation reads the reconstruction at the missing slots
//! — argmax over a column's one-hot block for categoricals, de-normalized
//! value for numericals.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use grimp_table::{ColumnKind, Imputer, Normalizer, Table, Value};
use grimp_tensor::{Adam, Mlp, Tape, Tensor};

/// Cap on one-hot width per categorical column (most frequent first).
const MAX_ONE_HOT: usize = 30;

/// MIDA options.
#[derive(Clone, Copy, Debug)]
pub struct MidaConfig {
    /// Extra hidden units over the input width (MIDA's Θ; the original
    /// paper grows the encoder by 7 units per layer).
    pub overcomplete: usize,
    /// Training epochs.
    pub epochs: usize,
    /// Input dropout probability of the denoising corruption.
    pub dropout: f64,
    /// Learning rate.
    pub lr: f32,
    /// Seed.
    pub seed: u64,
}

impl Default for MidaConfig {
    fn default() -> Self {
        MidaConfig {
            overcomplete: 8,
            epochs: 120,
            dropout: 0.5,
            lr: 0.01,
            seed: 0,
        }
    }
}

/// Encoding plan of one column within the dense row vector.
enum Slot {
    /// One numeric slot at this offset.
    Num { offset: usize },
    /// A one-hot block at `offset` with `codes[k]` occupying position `k`.
    Cat { offset: usize, codes: Vec<u32> },
}

/// The MIDA-like imputer.
pub struct Mida {
    config: MidaConfig,
}

impl Mida {
    /// Build with options.
    pub fn new(config: MidaConfig) -> Self {
        Mida { config }
    }

    fn plan(table: &Table) -> (Vec<Slot>, usize) {
        let mut slots = Vec::with_capacity(table.n_columns());
        let mut width = 0usize;
        for j in 0..table.n_columns() {
            match table.schema().column(j).kind {
                ColumnKind::Numerical => {
                    slots.push(Slot::Num { offset: width });
                    width += 1;
                }
                ColumnKind::Categorical => {
                    let counts = table.category_counts(j);
                    let mut codes: Vec<u32> = (0..counts.len() as u32).collect();
                    codes.sort_by_key(|&c| std::cmp::Reverse(counts[c as usize]));
                    codes.truncate(MAX_ONE_HOT);
                    slots.push(Slot::Cat {
                        offset: width,
                        codes: codes.clone(),
                    });
                    width += codes.len().max(1);
                }
            }
        }
        (slots, width)
    }

    /// Encode the table into `(matrix, observed-mask)`; missing entries are
    /// zero with a zero mask.
    fn encode(table: &Table, slots: &[Slot], width: usize) -> (Tensor, Tensor) {
        let n = table.n_rows();
        let mut x = Tensor::zeros(n, width);
        let mut mask = Tensor::zeros(n, width);
        for i in 0..n {
            for (j, slot) in slots.iter().enumerate() {
                match (slot, table.get(i, j)) {
                    (Slot::Num { offset }, Value::Num(v)) => {
                        x.set(i, *offset, v as f32);
                        mask.set(i, *offset, 1.0);
                    }
                    (Slot::Cat { offset, codes }, Value::Cat(c)) => {
                        // mark the whole block observed; set the hot slot
                        for k in 0..codes.len() {
                            mask.set(i, offset + k, 1.0);
                        }
                        if let Some(pos) = codes.iter().position(|&x| x == c) {
                            x.set(i, offset + pos, 1.0);
                        }
                    }
                    (_, Value::Null) => {}
                    (slot, v) => {
                        let _ = (slot, v);
                        unreachable!("slot kinds mirror column kinds")
                    }
                }
            }
        }
        (x, mask)
    }
}

impl Imputer for Mida {
    fn name(&self) -> &str {
        "MIDA"
    }

    fn impute(&mut self, dirty: &Table) -> Table {
        let cfg = self.config;
        let mut rng = StdRng::seed_from_u64(cfg.seed);

        let normalizer = Normalizer::fit(dirty);
        let mut norm = dirty.clone();
        normalizer.apply(&mut norm);

        let (slots, width) = Self::plan(&norm);
        if width == 0 || norm.n_rows() == 0 {
            return dirty.clone();
        }
        let (x, observed) = Self::encode(&norm, &slots, width);

        // Overcomplete denoising autoencoder.
        let hidden = width + cfg.overcomplete;
        let mut tape = Tape::new();
        let model = Mlp::new(&mut tape, &[width, hidden, hidden, width], &mut rng);
        tape.freeze();
        let mut adam = Adam::new(cfg.lr);
        let n_cells = (x.rows() * x.cols()) as f32;
        for _ in 0..cfg.epochs {
            // fresh dropout corruption each epoch
            let mut corrupted = x.clone();
            for v in corrupted.as_mut_slice().iter_mut() {
                if rng.gen::<f64>() < cfg.dropout {
                    *v = 0.0;
                }
            }
            let xin = tape.input(corrupted);
            let out = model.forward(&mut tape, xin);
            // masked reconstruction MSE over observed entries
            let target = tape.input(x.clone());
            let diff = tape.sub(out, target);
            let m = tape.input(observed.clone());
            let masked = tape.mul_elem(diff, m);
            let sq = tape.mul_elem(masked, masked);
            let sum = tape.sum_all(sq);
            let loss = tape.scale(sum, 1.0 / n_cells);
            tape.backward(loss);
            adam.step(&mut tape);
            tape.reset();
        }

        // Reconstruct from the uncorrupted (but incomplete) input.
        let xin = tape.input(x.clone());
        let out = model.forward(&mut tape, xin);
        let recon = tape.value(out).clone();
        tape.reset();
        drop(tape);

        let mut result = dirty.clone();
        for (i, j) in norm.missing_cells() {
            match &slots[j] {
                Slot::Num { offset } => {
                    let z = f64::from(recon.get(i, *offset));
                    result.set(i, j, Value::Num(normalizer.inverse(j, z)));
                }
                Slot::Cat { offset, codes } => {
                    if codes.is_empty() {
                        continue;
                    }
                    let best = (0..codes.len())
                        .max_by(|&a, &b| {
                            recon
                                .get(i, offset + a)
                                .total_cmp(&recon.get(i, offset + b))
                        })
                        .expect("non-empty block");
                    result.set(i, j, Value::Cat(codes[best]));
                }
            }
        }
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use grimp_table::{check_imputation_contract, inject_mcar, Schema};

    fn functional_table(n: usize) -> Table {
        let schema = Schema::from_pairs(&[
            ("a", ColumnKind::Categorical),
            ("b", ColumnKind::Categorical),
            ("x", ColumnKind::Numerical),
        ]);
        let mut t = Table::empty(schema);
        for i in 0..n {
            let a = format!("a{}", i % 3);
            let b = format!("b{}", i % 3);
            let x = format!("{}", (i % 3) as f64 * 10.0);
            t.push_str_row(&[Some(&a), Some(&b), Some(&x)]);
        }
        t
    }

    #[test]
    fn mida_imputes_with_contract_and_learns() {
        let clean = functional_table(90);
        let mut dirty = clean.clone();
        let log = inject_mcar(&mut dirty, 0.1, &mut StdRng::seed_from_u64(1));
        let mut m = Mida::new(MidaConfig::default());
        let imputed = m.impute(&dirty);
        check_imputation_contract(&dirty, &imputed).unwrap();
        let cat: Vec<_> = log.cells.iter().filter(|c| c.col < 2).collect();
        let correct = cat
            .iter()
            .filter(|c| imputed.get(c.row, c.col) == c.truth)
            .count();
        let acc = correct as f64 / cat.len().max(1) as f64;
        assert!(acc > 0.5, "mida accuracy {acc}");
    }

    #[test]
    fn numeric_reconstruction_tracks_cluster_means() {
        let clean = functional_table(90);
        let mut dirty = clean.clone();
        let log = inject_mcar(&mut dirty, 0.1, &mut StdRng::seed_from_u64(2));
        let mut m = Mida::new(MidaConfig::default());
        let imputed = m.impute(&dirty);
        let num: Vec<_> = log.cells.iter().filter(|c| c.col == 2).collect();
        let rmse = (num
            .iter()
            .map(|c| {
                let t = c.truth.as_num().unwrap();
                let p = imputed.get(c.row, c.col).as_num().unwrap();
                (t - p) * (t - p)
            })
            .sum::<f64>()
            / num.len().max(1) as f64)
            .sqrt();
        assert!(rmse < 10.0, "mida rmse {rmse} (column std ~8)");
    }

    #[test]
    fn rare_values_beyond_the_one_hot_cap_fall_back_gracefully() {
        // a column with > MAX_ONE_HOT categories still round-trips
        let schema = Schema::from_pairs(&[
            ("wide", ColumnKind::Categorical),
            ("g", ColumnKind::Categorical),
        ]);
        let mut t = Table::empty(schema);
        for i in 0..80 {
            t.push_str_row(&[
                Some(&format!("v{}", i % 40)),
                Some(if i % 2 == 0 { "x" } else { "y" }),
            ]);
        }
        t.set(3, 0, Value::Null);
        let mut m = Mida::new(MidaConfig {
            epochs: 30,
            ..Default::default()
        });
        let imputed = m.impute(&t);
        // the imputation must come from the frequency-capped block
        assert!(imputed.display(3, 0).starts_with('v'));
        assert_eq!(imputed.n_missing(), 0);
    }
}

//! Random forests over mixed features (bootstrap + feature subsampling),
//! with FUNFOREST's FD-pointed tree budget (paper §4.3).

use rand::Rng;

use crate::encoding::FeatureMatrix;
use crate::tree::{DecisionTree, TreeConfig, TreeLabels, TreeTarget};

/// Forest options.
#[derive(Clone, Copy, Debug)]
pub struct ForestConfig {
    /// Number of trees.
    pub n_trees: usize,
    /// Per-tree options (its `mtry` is filled in from the feature count when
    /// `None`).
    pub tree: TreeConfig,
    /// Fraction of trees restricted to an FD-related feature subset
    /// (0 for plain MissForest; the paper found 50 % best for FUNFOREST).
    pub fd_budget: f64,
}

impl Default for ForestConfig {
    fn default() -> Self {
        ForestConfig {
            n_trees: 12,
            tree: TreeConfig::default(),
            fd_budget: 0.0,
        }
    }
}

/// A fitted random forest.
pub struct RandomForest {
    trees: Vec<DecisionTree>,
    target: TreeTarget,
}

impl RandomForest {
    /// Fit a forest predicting `labels` (aligned with `rows`) from
    /// `features`, splitting only on `allowed_features`. When
    /// `config.fd_budget > 0` and `fd_features` is non-empty, that fraction
    /// of the trees may split only on `fd_features`.
    #[allow(clippy::too_many_arguments)]
    pub fn fit(
        features: &FeatureMatrix,
        rows: &[usize],
        labels: &TreeLabels,
        target: TreeTarget,
        allowed_features: &[usize],
        fd_features: &[usize],
        config: ForestConfig,
        rng: &mut impl Rng,
    ) -> Self {
        assert!(!rows.is_empty(), "cannot fit a forest on zero rows");
        let mtry = config
            .tree
            .mtry
            .unwrap_or_else(|| (allowed_features.len() as f64).sqrt().ceil() as usize)
            .max(1);
        let n_fd_trees = if fd_features.is_empty() {
            0
        } else {
            (config.n_trees as f64 * config.fd_budget).round() as usize
        };
        let mut trees = Vec::with_capacity(config.n_trees);
        for t in 0..config.n_trees {
            // Position-based bootstrap (with replacement) so label lookup
            // stays O(1).
            let positions: Vec<usize> = (0..rows.len())
                .map(|_| rng.gen_range(0..rows.len()))
                .collect();
            let sample: Vec<usize> = positions.iter().map(|&p| rows[p]).collect();
            let boot_labels = match labels {
                TreeLabels::Classes(c) => {
                    TreeLabels::Classes(positions.iter().map(|&p| c[p]).collect())
                }
                TreeLabels::Values(v) => {
                    TreeLabels::Values(positions.iter().map(|&p| v[p]).collect())
                }
            };
            let feats = if t < n_fd_trees {
                fd_features
            } else {
                allowed_features
            };
            let tree_cfg = TreeConfig {
                mtry: Some(mtry.min(feats.len().max(1))),
                ..config.tree
            };
            trees.push(DecisionTree::fit(
                features,
                &sample,
                &boot_labels,
                target,
                feats,
                tree_cfg,
                rng,
            ));
        }
        RandomForest { trees, target }
    }

    /// Majority vote over trees (classification forests).
    pub fn predict_class(&self, features: &FeatureMatrix, row: usize, n_classes: usize) -> u32 {
        assert!(matches!(self.target, TreeTarget::Classification(_)));
        let mut votes = vec![0usize; n_classes];
        for tree in &self.trees {
            votes[tree.predict_class(features, row) as usize] += 1;
        }
        votes
            .iter()
            .enumerate()
            .max_by_key(|(_, &v)| v)
            .map(|(i, _)| i as u32)
            .unwrap_or(0)
    }

    /// Mean over trees (regression forests).
    pub fn predict_value(&self, features: &FeatureMatrix, row: usize) -> f64 {
        assert!(matches!(self.target, TreeTarget::Regression));
        self.trees
            .iter()
            .map(|t| t.predict_value(features, row))
            .sum::<f64>()
            / self.trees.len().max(1) as f64
    }

    /// Number of trees.
    pub fn n_trees(&self) -> usize {
        self.trees.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use grimp_table::{ColumnKind, Schema, Table};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn dataset() -> (FeatureMatrix, Vec<u32>) {
        // class depends on feature 1 only; feature 0 is noise
        let schema = Schema::from_pairs(&[
            ("noise", ColumnKind::Numerical),
            ("signal", ColumnKind::Categorical),
        ]);
        let mut t = Table::empty(schema);
        let mut labels = Vec::new();
        for i in 0..100 {
            let noise = format!("{}", (i * 37 % 19) as f64);
            let sig = i % 3;
            t.push_str_row(&[Some(&noise), Some(&format!("s{sig}"))]);
            labels.push(sig as u32);
        }
        (FeatureMatrix::from_complete_table(&t), labels)
    }

    #[test]
    fn forest_learns_signal_feature() {
        let (features, labels) = dataset();
        let rows: Vec<usize> = (0..100).collect();
        let forest = RandomForest::fit(
            &features,
            &rows,
            &TreeLabels::Classes(labels.clone()),
            TreeTarget::Classification(3),
            &[0, 1],
            &[],
            ForestConfig::default(),
            &mut StdRng::seed_from_u64(0),
        );
        let correct = (0..100)
            .filter(|&i| forest.predict_class(&features, i, 3) == labels[i])
            .count();
        assert!(correct >= 95, "forest accuracy {correct}/100");
    }

    #[test]
    fn fd_budget_allocates_fd_trees() {
        let (features, labels) = dataset();
        let rows: Vec<usize> = (0..100).collect();
        // all trees restricted to the noise feature → near-chance accuracy;
        // the fd-pointed half to signal → decent accuracy overall
        let forest = RandomForest::fit(
            &features,
            &rows,
            &TreeLabels::Classes(labels.clone()),
            TreeTarget::Classification(3),
            &[0], // non-FD trees see only noise
            &[1], // FD trees see the signal
            ForestConfig {
                fd_budget: 0.5,
                ..Default::default()
            },
            &mut StdRng::seed_from_u64(0),
        );
        let correct = (0..100)
            .filter(|&i| forest.predict_class(&features, i, 3) == labels[i])
            .count();
        assert!(
            correct > 50,
            "fd trees should lift accuracy, got {correct}/100"
        );
    }

    #[test]
    fn regression_forest_predicts_means() {
        let schema = Schema::from_pairs(&[("x", ColumnKind::Numerical)]);
        let mut t = Table::empty(schema);
        let mut labels = Vec::new();
        for i in 0..60 {
            let x = i as f64;
            t.push_str_row(&[Some(&format!("{x}"))]);
            labels.push(2.0 * x);
        }
        let features = FeatureMatrix::from_complete_table(&t);
        let rows: Vec<usize> = (0..60).collect();
        let forest = RandomForest::fit(
            &features,
            &rows,
            &TreeLabels::Values(labels.clone()),
            TreeTarget::Regression,
            &[0],
            &[],
            ForestConfig::default(),
            &mut StdRng::seed_from_u64(1),
        );
        // in-sample prediction should track the line closely
        let mse: f64 = (0..60)
            .map(|i| (forest.predict_value(&features, i) - labels[i]).powi(2))
            .sum::<f64>()
            / 60.0;
        let rmse = mse.sqrt();
        assert!(rmse < 10.0, "rmse {rmse}");
    }
}

//! EMBDI-MC: EMBDI embeddings feeding a single multiclass classifier —
//! no GNN refinement, no multi-task learning (the weakest arm of the
//! paper's Fig. 10 ablation and a Fig. 8 baseline).
//!
//! A tuple's context vector is the average of its non-masked cell
//! embeddings; one classifier predicts over the union of all attribute
//! domains, and imputation restricts the argmax to the target attribute.

use std::rc::Rc;

use rand::rngs::StdRng;
use rand::SeedableRng;

use grimp_graph::{train_embdi, EmbdiConfig, GraphConfig, TableGraph};
use grimp_table::{ColumnKind, Corpus, Imputer, Normalizer, Table, Value};
use grimp_tensor::{Adam, Mlp, Tape, Tensor};

use crate::domain::ValueDomain;

/// EMBDI-MC options.
#[derive(Clone, Copy, Debug)]
pub struct EmbdiMcConfig {
    /// EMBDI embedding stage.
    pub embdi: EmbdiConfig,
    /// Graph canonicalization.
    pub graph: GraphConfig,
    /// Classifier hidden width.
    pub hidden: usize,
    /// Classifier training epochs.
    pub epochs: usize,
    /// Learning rate.
    pub lr: f32,
    /// Seed.
    pub seed: u64,
}

impl Default for EmbdiMcConfig {
    fn default() -> Self {
        EmbdiMcConfig {
            embdi: EmbdiConfig::default(),
            graph: GraphConfig::default(),
            hidden: 64,
            epochs: 80,
            lr: 0.02,
            seed: 0,
        }
    }
}

/// The EMBDI-MC imputer.
pub struct EmbdiMc {
    config: EmbdiMcConfig,
}

impl EmbdiMc {
    /// Build with options.
    pub fn new(config: EmbdiMcConfig) -> Self {
        EmbdiMc { config }
    }

    /// Context vector: mean of the row's cell embeddings, skipping nulls and
    /// the target column.
    fn context_vec(
        graph: &TableGraph,
        emb: &grimp_graph::EmbdiEmbeddings,
        table: &Table,
        row: usize,
        target_col: usize,
        out: &mut [f32],
    ) {
        out.iter_mut().for_each(|v| *v = 0.0);
        let mut n = 0usize;
        for c in 0..table.n_columns() {
            if c == target_col {
                continue;
            }
            if let Some(node) = graph.cell_node_of(table, row, c) {
                for (o, &e) in out.iter_mut().zip(emb.node(node as usize)) {
                    *o += e;
                }
                n += 1;
            }
        }
        if n > 0 {
            let inv = 1.0 / n as f32;
            out.iter_mut().for_each(|v| *v *= inv);
        }
    }
}

impl Imputer for EmbdiMc {
    fn name(&self) -> &str {
        "EmbDI-MC"
    }

    fn impute(&mut self, dirty: &Table) -> Table {
        let cfg = &self.config;
        let mut rng = StdRng::seed_from_u64(cfg.seed);

        let normalizer = Normalizer::fit(dirty);
        let mut norm = dirty.clone();
        normalizer.apply(&mut norm);

        let graph = TableGraph::build(&norm, cfg.graph, &[]);
        let domain = ValueDomain::build(&graph);
        if domain.n_classes() == 0 {
            return dirty.clone();
        }
        let emb = train_embdi(&graph, &norm, &cfg.embdi, &mut rng);
        let dim = emb.dim;

        // Training set: every non-missing cell (no holdout — EMBDI-MC uses a
        // fixed epoch budget).
        let corpus = Corpus::build(&norm, 0.0, &mut rng);
        let mut xs: Vec<f32> = Vec::new();
        let mut labels: Vec<u32> = Vec::new();
        let mut buf = vec![0.0f32; dim];
        for bucket in &corpus.train {
            for s in bucket {
                let key =
                    grimp_graph::value_key(&norm, s.row, s.target_col, cfg.graph.numeric_decimals)
                        .expect("labels are non-null");
                let Some(class) = domain.class_of(s.target_col, &key) else {
                    continue;
                };
                Self::context_vec(&graph, &emb, &norm, s.row, s.target_col, &mut buf);
                xs.extend_from_slice(&buf);
                labels.push(class);
            }
        }
        if labels.is_empty() {
            return crate::encoding::mean_mode_fill(dirty);
        }
        let x_train = Tensor::from_vec(labels.len(), dim, xs);
        let labels = Rc::new(labels);

        let mut tape = Tape::new();
        let model = Mlp::new(&mut tape, &[dim, cfg.hidden, domain.n_classes()], &mut rng);
        tape.freeze();
        let mut adam = Adam::new(cfg.lr);
        for _ in 0..cfg.epochs {
            let x = tape.input(x_train.clone());
            let logits = model.forward(&mut tape, x);
            let loss = tape.softmax_cross_entropy(logits, Rc::clone(&labels));
            tape.backward(loss);
            adam.step(&mut tape);
            tape.reset();
        }

        // Imputation.
        let mut result = dirty.clone();
        let missing = norm.missing_cells();
        if !missing.is_empty() {
            let mut xs: Vec<f32> = Vec::with_capacity(missing.len() * dim);
            for &(i, j) in &missing {
                Self::context_vec(&graph, &emb, &norm, i, j, &mut buf);
                xs.extend_from_slice(&buf);
            }
            let x = tape.input(Tensor::from_vec(missing.len(), dim, xs));
            let logits = model.forward(&mut tape, x);
            let out = tape.value(logits).clone();
            for (s, &(i, j)) in missing.iter().enumerate() {
                let (lo, hi) = domain.column_range(j);
                if lo == hi {
                    continue;
                }
                let row = out.row_slice(s);
                let best = (lo..hi)
                    .max_by(|&a, &b| row[a].total_cmp(&row[b]))
                    .expect("non-empty");
                let key = domain.key_of(j, best);
                match norm.schema().column(j).kind {
                    ColumnKind::Categorical => {
                        let code = result.intern(j, key);
                        result.set(i, j, Value::Cat(code));
                    }
                    ColumnKind::Numerical => {
                        let z: f64 = key.parse().expect("numeric keys parse");
                        result.set(i, j, Value::Num(normalizer.inverse(j, z)));
                    }
                }
            }
            tape.reset();
        }
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use grimp_table::{check_imputation_contract, inject_mcar, Schema};

    fn functional_table(n: usize) -> Table {
        let schema = Schema::from_pairs(&[
            ("a", ColumnKind::Categorical),
            ("b", ColumnKind::Categorical),
        ]);
        let mut t = Table::empty(schema);
        for i in 0..n {
            let a = format!("a{}", i % 3);
            let b = format!("b{}", i % 3);
            t.push_str_row(&[Some(&a), Some(&b)]);
        }
        t
    }

    #[test]
    fn embdi_mc_imputes_with_contract() {
        let clean = functional_table(60);
        let mut dirty = clean.clone();
        let log = inject_mcar(&mut dirty, 0.1, &mut StdRng::seed_from_u64(1));
        let mut m = EmbdiMc::new(EmbdiMcConfig::default());
        let imputed = m.impute(&dirty);
        check_imputation_contract(&dirty, &imputed).unwrap();
        // co-occurrence structure should beat random (1/3)
        let correct = log
            .cells
            .iter()
            .filter(|c| {
                imputed.display(c.row, c.col) == {
                    let Value::Cat(code) = c.truth else {
                        unreachable!()
                    };
                    clean.dictionary(c.col)[code as usize].clone()
                }
            })
            .count();
        assert!(
            correct as f64 / log.len().max(1) as f64 > 0.4,
            "embdi-mc accuracy {correct}/{}",
            log.len()
        );
    }

    #[test]
    fn values_never_leak_across_columns() {
        let clean = functional_table(40);
        let mut dirty = clean.clone();
        inject_mcar(&mut dirty, 0.2, &mut StdRng::seed_from_u64(2));
        let mut m = EmbdiMc::new(EmbdiMcConfig::default());
        let imputed = m.impute(&dirty);
        for (i, j) in dirty.missing_cells() {
            let v = imputed.display(i, j);
            assert!(
                v.starts_with(if j == 0 { "a" } else { "b" }),
                "leak: {v} in col {j}"
            );
        }
    }
}

//! Column-scoped value domains shared by the token-predicting baselines
//! (EMBDI-MC, TURL-sub): every distinct (attribute, value-key) pair is one
//! class, and imputation restricts the argmax to the target attribute's
//! slice.

use grimp_graph::TableGraph;

/// The flat class space over all attribute domains.
pub struct ValueDomain {
    keys: Vec<Vec<String>>,
    offsets: Vec<usize>,
    total: usize,
}

impl ValueDomain {
    /// Build from a table graph's cell nodes.
    pub fn build(graph: &TableGraph) -> Self {
        let n_cols = graph.n_edge_types();
        let mut keys: Vec<Vec<String>> = Vec::with_capacity(n_cols);
        let mut offsets = Vec::with_capacity(n_cols);
        let mut total = 0usize;
        for j in 0..n_cols {
            let mut col_keys: Vec<String> =
                graph.column_cells(j).map(|(k, _)| k.to_string()).collect();
            col_keys.sort_unstable();
            offsets.push(total);
            total += col_keys.len();
            keys.push(col_keys);
        }
        ValueDomain {
            keys,
            offsets,
            total,
        }
    }

    /// Total classes.
    pub fn n_classes(&self) -> usize {
        self.total
    }

    /// Class of `(col, key)`, if present.
    pub fn class_of(&self, col: usize, key: &str) -> Option<u32> {
        self.keys[col]
            .binary_search_by(|k| k.as_str().cmp(key))
            .ok()
            .map(|i| (self.offsets[col] + i) as u32)
    }

    /// `(start, end)` class range of one column.
    pub fn column_range(&self, col: usize) -> (usize, usize) {
        (self.offsets[col], self.offsets[col] + self.keys[col].len())
    }

    /// Key text of a class known to lie in `col`'s range.
    pub fn key_of(&self, col: usize, class: usize) -> &str {
        &self.keys[col][class - self.offsets[col]]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use grimp_graph::GraphConfig;
    use grimp_table::{ColumnKind, Schema, Table};

    #[test]
    fn classes_partition_by_column() {
        let schema = Schema::from_pairs(&[
            ("a", ColumnKind::Categorical),
            ("b", ColumnKind::Categorical),
        ]);
        let t = Table::from_rows(
            schema,
            &[vec![Some("x"), Some("x")], vec![Some("y"), Some("z")]],
        );
        let g = TableGraph::build(&t, GraphConfig::default(), &[]);
        let d = ValueDomain::build(&g);
        assert_eq!(d.n_classes(), 4);
        let (lo, hi) = d.column_range(0);
        assert_eq!(hi - lo, 2);
        // "x" exists in both columns with distinct classes
        assert_ne!(d.class_of(0, "x"), d.class_of(1, "x"));
        let c = d.class_of(1, "z").unwrap() as usize;
        assert_eq!(d.key_of(1, c), "z");
    }
}

//! FD-REPAIR: imputation by the minimality principle of data repairing
//! (paper §4.3).
//!
//! For a `∅` cell in the conclusion of an FD, impute the most common value
//! among the tuples agreeing with this tuple on the FD's premise. Cells not
//! covered by any FD (or whose premise group gives no evidence) are left to
//! a configurable fallback: either unimputed-as-mode/mean (so the algorithm
//! still satisfies the imputer contract) — matching the paper's observation
//! of "high precision, but poor recall".

use grimp_table::{ColumnKind, FdSet, Imputer, Table, Value};

/// The FD-REPAIR imputer.
pub struct FdRepair {
    fds: FdSet,
    /// Cells imputed through an FD in the last run (the "high precision"
    /// part); everything else fell back to mode/mean.
    pub last_fd_imputations: usize,
}

impl FdRepair {
    /// Build from an FD set.
    pub fn new(fds: FdSet) -> Self {
        FdRepair {
            fds,
            last_fd_imputations: 0,
        }
    }
}

impl Imputer for FdRepair {
    fn name(&self) -> &str {
        "FD-Repair"
    }

    fn impute(&mut self, dirty: &Table) -> Table {
        let mut result = dirty.clone();
        self.last_fd_imputations = 0;

        // FD pass: most common conclusion value within the premise group.
        for fd in &self.fds.fds {
            let groups = dirty.group_rows_by(&fd.lhs);
            for rows in groups.values() {
                // frequency of non-null conclusion values in this group
                let mut counts: std::collections::HashMap<u64, (usize, Value)> =
                    std::collections::HashMap::new();
                for &i in rows {
                    let v = dirty.get(i, fd.rhs);
                    let key = match v {
                        Value::Null => continue,
                        Value::Cat(c) => u64::from(c),
                        Value::Num(x) => x.to_bits(),
                    };
                    counts.entry(key).or_insert((0, v)).0 += 1;
                }
                // deterministic tie-break on the value key (counts is a
                // HashMap; its iteration order must not decide ties)
                let Some((_, most_common)) = counts
                    .iter()
                    .max_by(|(ka, (na, _)), (kb, (nb, _))| na.cmp(nb).then(kb.cmp(ka)))
                    .map(|(_, v)| *v)
                else {
                    continue;
                };
                for &i in rows {
                    if result.is_missing(i, fd.rhs) {
                        result.set(i, fd.rhs, most_common);
                        self.last_fd_imputations += 1;
                    }
                }
            }
        }

        // Fallback pass: mode/mean for everything FDs could not reach.
        for j in 0..dirty.n_columns() {
            match dirty.schema().column(j).kind {
                ColumnKind::Categorical => {
                    let Some(mode) = dirty.mode(j) else { continue };
                    for i in 0..dirty.n_rows() {
                        if result.is_missing(i, j) {
                            result.set(i, j, Value::Cat(mode));
                        }
                    }
                }
                ColumnKind::Numerical => {
                    let Some(mean) = dirty.mean(j) else { continue };
                    for i in 0..dirty.n_rows() {
                        if result.is_missing(i, j) {
                            result.set(i, j, Value::Num(mean));
                        }
                    }
                }
            }
        }
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use grimp_table::{check_imputation_contract, Schema};

    fn table() -> Table {
        // state -> areacode
        let schema = Schema::from_pairs(&[
            ("state", ColumnKind::Categorical),
            ("areacode", ColumnKind::Categorical),
            ("salary", ColumnKind::Numerical),
        ]);
        Table::from_rows(
            schema,
            &[
                vec![Some("RI"), Some("401"), Some("100.0")],
                vec![Some("RI"), None, Some("50.0")],
                vec![Some("NH"), Some("603"), None],
                vec![Some("NH"), Some("603"), Some("80.0")],
                vec![None, Some("401"), Some("75.0")],
            ],
        )
    }

    #[test]
    fn fd_conclusion_imputed_from_premise_group() {
        let fds = FdSet::from_pairs(&[(&[0], 1)]);
        let mut repair = FdRepair::new(fds);
        let imputed = repair.impute(&table());
        assert_eq!(imputed.display(1, 1), "401", "RI implies 401");
        assert_eq!(repair.last_fd_imputations, 1);
    }

    #[test]
    fn uncovered_cells_fall_back_to_mode_and_mean() {
        let fds = FdSet::from_pairs(&[(&[0], 1)]);
        let mut repair = FdRepair::new(fds);
        let t = table();
        let imputed = repair.impute(&t);
        check_imputation_contract(&t, &imputed).unwrap();
        // state (col 0) is not an FD conclusion: mode fallback (RI/NH tie →
        // lowest code wins = RI)
        assert_eq!(imputed.display(4, 0), "RI");
        // salary mean fallback
        let mean = (100.0 + 50.0 + 80.0 + 75.0) / 4.0;
        assert!((imputed.get(2, 2).as_num().unwrap() - mean).abs() < 1e-9);
    }

    #[test]
    fn empty_fd_set_is_pure_mode_mean() {
        let mut repair = FdRepair::new(FdSet::empty());
        let t = table();
        let imputed = repair.impute(&t);
        check_imputation_contract(&t, &imputed).unwrap();
        assert_eq!(repair.last_fd_imputations, 0);
    }
}

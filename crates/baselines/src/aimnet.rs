//! HOLO: an AimNet-style attention-based discriminative imputer
//! (Wu et al., "Attention-based learning for missing data imputation in
//! HoloClean", MLSys 2020 — the paper's HOLO baseline; reimplemented from
//! the architecture sketch in the GRIMP paper's §3.5 and §6, see DESIGN.md
//! §3 for the substitution note).
//!
//! Each (attribute, value) pair gets a trainable embedding. For a target
//! attribute, learned per-attribute attention weights select which context
//! attributes matter (this is how AimNet picks up attribute relationships
//! like `State → AreaCode`), the weighted context vector feeds a per-
//! attribute head: softmax over the domain for categoricals, a linear
//! regressor for numericals — AimNet's strength on numerical RMSE comes
//! from this direct regression path.

use std::rc::Rc;

use rand::rngs::StdRng;
use rand::SeedableRng;

use grimp::vectors::VectorBatch;
use grimp_graph::{GraphConfig, TableGraph};
use grimp_table::{ColumnKind, Corpus, Imputer, Normalizer, Table, Value};
use grimp_tensor::{init, Adam, Dense, Tape, Tensor, Var};

/// AimNet-like options.
#[derive(Clone, Copy, Debug)]
pub struct AimNetConfig {
    /// Cell-embedding dimensionality.
    pub dim: usize,
    /// Training epochs.
    pub epochs: usize,
    /// Early-stopping patience on training loss plateau.
    pub patience: usize,
    /// Learning rate.
    pub lr: f32,
    /// Graph canonicalization (for value indexing).
    pub graph: GraphConfig,
    /// Seed.
    pub seed: u64,
}

impl Default for AimNetConfig {
    fn default() -> Self {
        AimNetConfig {
            dim: 32,
            epochs: 120,
            patience: 10,
            lr: 0.02,
            graph: GraphConfig::default(),
            seed: 0,
        }
    }
}

/// The AimNet-like imputer.
pub struct AimNetLike {
    config: AimNetConfig,
}

struct ColumnHead {
    /// `1 × C` attention logits over context attributes.
    attn: Var,
    /// Output head (`dim → |Dom|` or `dim → 1`).
    out: Dense,
}

impl AimNetLike {
    /// Build with options.
    pub fn new(config: AimNetConfig) -> Self {
        AimNetLike { config }
    }

    /// Attention-pooled context: `alpha = softmax(1·attn + mask_bias)`,
    /// `ctx = Σ_c alpha_c · emb(cell_c)`.
    fn head_forward(tape: &mut Tape, emb: Var, head: &ColumnHead, batch: &VectorBatch) -> Var {
        let v = tape.gather_rows(emb, Rc::clone(&batch.idx));
        let mask = tape.input(batch.mask.clone());
        let v = tape.mul_elem(v, mask);
        let ones = tape.input(Tensor::full(batch.n, 1, 1.0));
        let logits = tape.matmul(ones, head.attn); // N × C
        let bias = tape.input(batch.score_bias.clone());
        let scores = tape.add(logits, bias);
        let alpha = tape.row_softmax(scores);
        let ctx = tape.block_weighted_sum(v, alpha);
        head.out.forward(tape, ctx)
    }
}

impl Imputer for AimNetLike {
    fn name(&self) -> &str {
        "HoloClean/AimNet"
    }

    fn impute(&mut self, dirty: &Table) -> Table {
        let cfg = self.config;
        let mut rng = StdRng::seed_from_u64(cfg.seed);

        let normalizer = Normalizer::fit(dirty);
        let mut norm = dirty.clone();
        normalizer.apply(&mut norm);

        let graph = TableGraph::build(&norm, cfg.graph, &[]);
        let n_cols = norm.n_columns();
        let corpus = Corpus::build(&norm, 0.0, &mut rng);

        let mut tape = Tape::new();
        let emb = tape.param(init::normal(graph.n_nodes(), cfg.dim, 0.1, &mut rng));
        let heads: Vec<ColumnHead> = (0..n_cols)
            .map(|j| {
                let out_dim = match norm.schema().column(j).kind {
                    ColumnKind::Categorical => norm.dictionary(j).len().max(1),
                    ColumnKind::Numerical => 1,
                };
                ColumnHead {
                    attn: tape.param(Tensor::zeros(1, n_cols)),
                    out: Dense::new(&mut tape, cfg.dim, out_dim, &mut rng),
                }
            })
            .collect();
        tape.freeze();
        let mut adam = Adam::new(cfg.lr);

        // Pre-build batches and labels per column.
        enum L {
            Cat(Rc<Vec<u32>>),
            Num(Rc<Vec<f32>>),
        }
        let batches: Vec<Option<(VectorBatch, L)>> = (0..n_cols)
            .map(|j| {
                let samples = &corpus.train[j];
                if samples.is_empty() {
                    return None;
                }
                let positions: Vec<(usize, usize)> =
                    samples.iter().map(|s| (s.row, s.target_col)).collect();
                let batch = VectorBatch::build(&graph, &norm, &positions, cfg.dim);
                let labels = match norm.schema().column(j).kind {
                    ColumnKind::Categorical => L::Cat(Rc::new(
                        samples
                            .iter()
                            .map(|s| s.label.as_cat().expect("cat"))
                            .collect(),
                    )),
                    ColumnKind::Numerical => L::Num(Rc::new(
                        samples
                            .iter()
                            .map(|s| s.label.as_num().expect("num") as f32)
                            .collect(),
                    )),
                };
                Some((batch, labels))
            })
            .collect();

        let mut best = f32::INFINITY;
        let mut since_best = 0usize;
        for _ in 0..cfg.epochs {
            let mut losses = Vec::new();
            for (head, entry) in heads.iter().zip(&batches) {
                let Some((batch, labels)) = entry else {
                    continue;
                };
                let out = Self::head_forward(&mut tape, emb, head, batch);
                let loss = match labels {
                    L::Cat(t) => tape.softmax_cross_entropy(out, Rc::clone(t)),
                    L::Num(t) => tape.mse_loss(out, Rc::clone(t)),
                };
                losses.push(loss);
            }
            if losses.is_empty() {
                tape.reset();
                break;
            }
            let total = tape.add_n(&losses);
            let value = tape.value(total).item();
            tape.backward(total);
            adam.step(&mut tape);
            tape.reset();
            if value + 1e-5 < best {
                best = value;
                since_best = 0;
            } else {
                since_best += 1;
                if since_best >= cfg.patience {
                    break;
                }
            }
        }

        // Imputation.
        let mut result = dirty.clone();
        for (j, head) in heads.iter().enumerate() {
            let missing: Vec<(usize, usize)> = (0..norm.n_rows())
                .filter(|&i| norm.is_missing(i, j))
                .map(|i| (i, j))
                .collect();
            if missing.is_empty() {
                continue;
            }
            let batch = VectorBatch::build(&graph, &norm, &missing, cfg.dim);
            let out = Self::head_forward(&mut tape, emb, head, &batch);
            let out_t = tape.value(out).clone();
            match norm.schema().column(j).kind {
                ColumnKind::Categorical => {
                    if norm.dictionary(j).is_empty() {
                        continue;
                    }
                    for (s, &(i, _)) in missing.iter().enumerate() {
                        let best = out_t
                            .row_slice(s)
                            .iter()
                            .enumerate()
                            .max_by(|a, b| a.1.total_cmp(b.1))
                            .map(|(k, _)| k as u32)
                            .expect("non-empty");
                        result.set(i, j, Value::Cat(best));
                    }
                }
                ColumnKind::Numerical => {
                    for (s, &(i, _)) in missing.iter().enumerate() {
                        let z = f64::from(out_t.get(s, 0));
                        result.set(i, j, Value::Num(normalizer.inverse(j, z)));
                    }
                }
            }
            tape.reset();
        }
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use grimp_table::{check_imputation_contract, inject_mcar, Schema};

    fn functional_table(n: usize) -> Table {
        let schema = Schema::from_pairs(&[
            ("a", ColumnKind::Categorical),
            ("b", ColumnKind::Categorical),
            ("x", ColumnKind::Numerical),
        ]);
        let mut t = Table::empty(schema);
        for i in 0..n {
            let a = format!("a{}", i % 4);
            let b = format!("b{}", i % 4);
            let x = format!("{}", (i % 4) as f64 * 10.0);
            t.push_str_row(&[Some(&a), Some(&b), Some(&x)]);
        }
        t
    }

    #[test]
    fn aimnet_learns_attribute_relationships() {
        let clean = functional_table(80);
        let mut dirty = clean.clone();
        let log = inject_mcar(&mut dirty, 0.1, &mut StdRng::seed_from_u64(1));
        let mut m = AimNetLike::new(AimNetConfig::default());
        let imputed = m.impute(&dirty);
        check_imputation_contract(&dirty, &imputed).unwrap();
        let cat: Vec<_> = log.cells.iter().filter(|c| c.col < 2).collect();
        let correct = cat
            .iter()
            .filter(|c| imputed.get(c.row, c.col) == c.truth)
            .count();
        let acc = correct as f64 / cat.len().max(1) as f64;
        assert!(acc > 0.6, "aimnet accuracy {acc}");
    }

    #[test]
    fn numeric_regression_path_produces_reasonable_values() {
        let clean = functional_table(80);
        let mut dirty = clean.clone();
        let log = inject_mcar(&mut dirty, 0.1, &mut StdRng::seed_from_u64(2));
        let mut m = AimNetLike::new(AimNetConfig::default());
        let imputed = m.impute(&dirty);
        let num: Vec<_> = log.cells.iter().filter(|c| c.col == 2).collect();
        let rmse = (num
            .iter()
            .map(|c| {
                let t = c.truth.as_num().unwrap();
                let p = imputed.get(c.row, c.col).as_num().unwrap();
                (t - p) * (t - p)
            })
            .sum::<f64>()
            / num.len().max(1) as f64)
            .sqrt();
        assert!(rmse < 12.0, "aimnet rmse {rmse} (column std ~11)");
    }
}

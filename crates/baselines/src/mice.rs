//! MICE — Multivariate Imputation by Chained Equations
//! (van Buuren & Groothuis-Oudshoorn, 2011), cited by the paper as the
//! classical iterative discriminative baseline.
//!
//! Each round regresses every column on all others over the currently filled
//! matrix: softmax regression for categorical targets, linear regression for
//! numerical targets (both trained with the workspace's autodiff engine).
//! Features are one-hot-encoded categoricals (frequency-capped) plus
//! z-scored numericals.

use std::rc::Rc;

use rand::rngs::StdRng;
use rand::SeedableRng;

use grimp_table::{ColumnKind, Imputer, Table, Value};
use grimp_tensor::{Adam, Mlp, Tape, Tensor};

use crate::encoding::{mean_mode_fill, FeatCol, FeatureMatrix};

/// Cap on one-hot width per categorical feature column.
const MAX_ONE_HOT: usize = 24;

/// MICE options.
#[derive(Clone, Copy, Debug)]
pub struct MiceConfig {
    /// Chained-equation rounds.
    pub rounds: usize,
    /// Gradient steps per column model.
    pub epochs: usize,
    /// Learning rate.
    pub lr: f32,
    /// Seed.
    pub seed: u64,
}

impl Default for MiceConfig {
    fn default() -> Self {
        MiceConfig {
            rounds: 3,
            epochs: 80,
            lr: 0.05,
            seed: 0,
        }
    }
}

/// The MICE imputer.
pub struct Mice {
    config: MiceConfig,
}

impl Mice {
    /// MICE with the given options.
    pub fn new(config: MiceConfig) -> Self {
        Mice { config }
    }
}

/// Encoding plan for one feature column: which codes get one-hot slots
/// (categorical) or the z-score stats (numerical).
enum ColPlan {
    Cat { hot_codes: Vec<u32> },
    Num { mean: f64, std: f64 },
}

fn plan_columns(features: &FeatureMatrix) -> Vec<ColPlan> {
    features
        .cols
        .iter()
        .map(|col| match col {
            FeatCol::Cat {
                codes,
                n_categories,
            } => {
                let mut counts = vec![0usize; *n_categories];
                for &c in codes {
                    counts[c as usize] += 1;
                }
                let mut order: Vec<u32> = (0..*n_categories as u32).collect();
                order.sort_by_key(|&c| std::cmp::Reverse(counts[c as usize]));
                order.truncate(MAX_ONE_HOT);
                ColPlan::Cat { hot_codes: order }
            }
            FeatCol::Num(vals) => {
                let n = vals.len().max(1) as f64;
                let mean = vals.iter().sum::<f64>() / n;
                let var = vals.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / n;
                ColPlan::Num {
                    mean,
                    std: var.sqrt().max(1e-9),
                }
            }
        })
        .collect()
}

fn plan_width(plan: &ColPlan) -> usize {
    match plan {
        ColPlan::Cat { hot_codes } => hot_codes.len(),
        ColPlan::Num { .. } => 1,
    }
}

/// Encode `rows` of `features` excluding `skip_col` into a dense matrix.
fn encode(features: &FeatureMatrix, plans: &[ColPlan], rows: &[usize], skip_col: usize) -> Tensor {
    let width: usize = plans
        .iter()
        .enumerate()
        .filter(|(j, _)| *j != skip_col)
        .map(|(_, p)| plan_width(p))
        .sum();
    let mut x = Tensor::zeros(rows.len(), width.max(1));
    for (r, &row) in rows.iter().enumerate() {
        let mut off = 0usize;
        for (j, plan) in plans.iter().enumerate() {
            if j == skip_col {
                continue;
            }
            match (plan, features.get(row, j)) {
                (ColPlan::Cat { hot_codes }, Value::Cat(c)) => {
                    if let Some(pos) = hot_codes.iter().position(|&h| h == c) {
                        x.set(r, off + pos, 1.0);
                    }
                    off += hot_codes.len();
                }
                (ColPlan::Num { mean, std }, Value::Num(v)) => {
                    x.set(r, off, ((v - mean) / std) as f32);
                    off += 1;
                }
                _ => unreachable!("plan kind matches column kind"),
            }
        }
    }
    x
}

impl Imputer for Mice {
    fn name(&self) -> &str {
        "MICE"
    }

    fn impute(&mut self, dirty: &Table) -> Table {
        let mut rng = StdRng::seed_from_u64(self.config.seed);
        let filled = mean_mode_fill(dirty);
        let mut features = FeatureMatrix::from_complete_table(&filled);
        let n_cols = dirty.n_columns();

        let missing_rows: Vec<Vec<usize>> = (0..n_cols)
            .map(|j| {
                (0..dirty.n_rows())
                    .filter(|&i| dirty.is_missing(i, j))
                    .collect()
            })
            .collect();
        let observed_rows: Vec<Vec<usize>> = (0..n_cols)
            .map(|j| {
                (0..dirty.n_rows())
                    .filter(|&i| !dirty.is_missing(i, j))
                    .collect()
            })
            .collect();

        for _round in 0..self.config.rounds {
            let plans = plan_columns(&features);
            for j in 0..n_cols {
                if missing_rows[j].is_empty() || observed_rows[j].is_empty() {
                    continue;
                }
                let x_train = encode(&features, &plans, &observed_rows[j], j);
                let x_miss = encode(&features, &plans, &missing_rows[j], j);
                match dirty.schema().column(j).kind {
                    ColumnKind::Categorical => {
                        let n_classes = dirty.dictionary(j).len().max(2);
                        let labels: Rc<Vec<u32>> = Rc::new(
                            observed_rows[j]
                                .iter()
                                .map(|&i| features.get(i, j).as_cat().expect("cat"))
                                .collect(),
                        );
                        let mut tape = Tape::new();
                        let model = Mlp::new(&mut tape, &[x_train.cols(), n_classes], &mut rng);
                        tape.freeze();
                        let mut adam = Adam::new(self.config.lr);
                        for _ in 0..self.config.epochs {
                            let x = tape.input(x_train.clone());
                            let logits = model.forward(&mut tape, x);
                            let loss = tape.softmax_cross_entropy(logits, Rc::clone(&labels));
                            tape.backward(loss);
                            adam.step(&mut tape);
                            tape.reset();
                        }
                        let x = tape.input(x_miss);
                        let logits = model.forward(&mut tape, x);
                        let out = tape.value(logits).clone();
                        for (r, &i) in missing_rows[j].iter().enumerate() {
                            let best = out
                                .row_slice(r)
                                .iter()
                                .enumerate()
                                .max_by(|a, b| a.1.total_cmp(b.1))
                                .map(|(k, _)| k as u32)
                                .unwrap_or(0)
                                .min(dirty.dictionary(j).len().saturating_sub(1) as u32);
                            features.set(i, j, Value::Cat(best));
                        }
                    }
                    ColumnKind::Numerical => {
                        let targets: Rc<Vec<f32>> = Rc::new(
                            observed_rows[j]
                                .iter()
                                .map(|&i| features.get(i, j).as_num().expect("num") as f32)
                                .collect(),
                        );
                        // fit in normalized target space for stable lr
                        let t_mean = targets.iter().copied().sum::<f32>() / targets.len() as f32;
                        let t_std = (targets.iter().map(|v| (v - t_mean).powi(2)).sum::<f32>()
                            / targets.len() as f32)
                            .sqrt()
                            .max(1e-6);
                        let norm_targets: Rc<Vec<f32>> =
                            Rc::new(targets.iter().map(|v| (v - t_mean) / t_std).collect());
                        let mut tape = Tape::new();
                        let model = Mlp::new(&mut tape, &[x_train.cols(), 1], &mut rng);
                        tape.freeze();
                        let mut adam = Adam::new(self.config.lr);
                        for _ in 0..self.config.epochs {
                            let x = tape.input(x_train.clone());
                            let pred = model.forward(&mut tape, x);
                            let loss = tape.mse_loss(pred, Rc::clone(&norm_targets));
                            tape.backward(loss);
                            adam.step(&mut tape);
                            tape.reset();
                        }
                        let x = tape.input(x_miss);
                        let pred = model.forward(&mut tape, x);
                        let out = tape.value(pred).clone();
                        for (r, &i) in missing_rows[j].iter().enumerate() {
                            let v = f64::from(out.get(r, 0) * t_std + t_mean);
                            features.set(i, j, Value::Num(v));
                        }
                    }
                }
            }
        }

        // Intern categorical write-backs by surface string: the initial
        // fill may have created dictionary entries the dirty table lacks.
        let mut result = dirty.clone();
        for (j, rows) in missing_rows.iter().enumerate() {
            for &i in rows {
                match features.get(i, j) {
                    Value::Cat(code) => {
                        let s = filled.dictionary(j)[code as usize].clone();
                        let code = result.intern(j, &s);
                        result.set(i, j, Value::Cat(code));
                    }
                    v => result.set(i, j, v),
                }
            }
        }
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use grimp_table::{check_imputation_contract, inject_mcar, Schema};

    fn linear_table(n: usize) -> Table {
        // y = 2x; c determined by sign of x
        let schema = Schema::from_pairs(&[
            ("x", ColumnKind::Numerical),
            ("y", ColumnKind::Numerical),
            ("c", ColumnKind::Categorical),
        ]);
        let mut t = Table::empty(schema);
        for i in 0..n {
            let x = i as f64 - n as f64 / 2.0;
            let y = 2.0 * x;
            let c = if x < 0.0 { "neg" } else { "pos" };
            t.push_str_row(&[Some(&format!("{x}")), Some(&format!("{y}")), Some(c)]);
        }
        t
    }

    #[test]
    fn mice_recovers_linear_relationship() {
        let clean = linear_table(80);
        let mut dirty = clean.clone();
        let log = inject_mcar(&mut dirty, 0.1, &mut StdRng::seed_from_u64(1));
        let mut mice = Mice::new(MiceConfig::default());
        let imputed = mice.impute(&dirty);
        check_imputation_contract(&dirty, &imputed).unwrap();
        // numerical RMSE must beat the mean-fill baseline by a wide margin
        let num: Vec<_> = log.cells.iter().filter(|c| c.col <= 1).collect();
        let rmse = (num
            .iter()
            .map(|c| {
                let t = c.truth.as_num().unwrap();
                let p = imputed.get(c.row, c.col).as_num().unwrap();
                (t - p) * (t - p)
            })
            .sum::<f64>()
            / num.len().max(1) as f64)
            .sqrt();
        assert!(rmse < 15.0, "mice rmse {rmse} (column std ~46)");
    }

    #[test]
    fn mice_classifies_categorical_from_numeric_evidence() {
        let clean = linear_table(80);
        let mut dirty = clean.clone();
        let log = inject_mcar(&mut dirty, 0.1, &mut StdRng::seed_from_u64(2));
        let mut mice = Mice::new(MiceConfig::default());
        let imputed = mice.impute(&dirty);
        let cat: Vec<_> = log.cells.iter().filter(|c| c.col == 2).collect();
        let correct = cat
            .iter()
            .filter(|c| imputed.get(c.row, c.col) == c.truth)
            .count();
        let acc = correct as f64 / cat.len().max(1) as f64;
        // Seed 2 corrupts 9 cells in `c`, two of which are unrecoverable even
        // in principle: row 63 loses x AND y (no evidence), and row 39 sits
        // exactly on the max-margin boundary of the remaining training data
        // (its own label is held out, so the nearest observed neg/pos are
        // x = -2 and x = 0, whose midpoint is the held-out x = -1). The bar
        // therefore accepts 7/9 and still rejects mode-fill (~5/9).
        assert!(acc > 0.75, "mice categorical accuracy {acc}");
    }
}

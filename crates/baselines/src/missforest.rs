//! MissForest (Stekhoven & Bühlmann, 2012) and FUNFOREST (the paper's
//! FD-aware extension, §4.3).
//!
//! Iterative imputation: start from a mean/mode fill, then repeatedly — in
//! ascending order of column missingness — retrain a random forest per
//! column on the originally observed rows and re-predict the missing ones,
//! until the standard difference measure first increases or the iteration
//! cap is reached.
//!
//! FUNFOREST "points" a fraction of each attribute's trees at the attributes
//! related to it by a functional dependency, reducing the budget wasted on
//! spurious feature combinations. The paper found a 50 % FD budget best.

use rand::rngs::StdRng;
use rand::SeedableRng;

use grimp_table::{ColumnKind, FdSet, Imputer, Table, Value};

use crate::encoding::{mean_mode_fill, FeatCol, FeatureMatrix};
use crate::forest::{ForestConfig, RandomForest};
use crate::tree::{TreeLabels, TreeTarget};

/// MissForest options.
#[derive(Clone, Copy, Debug)]
pub struct MissForestConfig {
    /// Forest options per column model.
    pub forest: ForestConfig,
    /// Maximum outer iterations.
    pub max_iterations: usize,
    /// Seed.
    pub seed: u64,
}

impl Default for MissForestConfig {
    fn default() -> Self {
        MissForestConfig {
            forest: ForestConfig::default(),
            max_iterations: 6,
            seed: 0,
        }
    }
}

/// The MissForest imputer (set `config.forest.fd_budget > 0` and pass FDs
/// via [`MissForest::funforest`] for the FUNFOREST variant).
pub struct MissForest {
    config: MissForestConfig,
    fds: FdSet,
    name: &'static str,
    /// Outer iterations executed in the last run.
    pub last_iterations: usize,
}

impl MissForest {
    /// Plain MissForest.
    pub fn new(config: MissForestConfig) -> Self {
        let mut config = config;
        config.forest.fd_budget = 0.0;
        MissForest {
            config,
            fds: FdSet::empty(),
            name: "MissForest",
            last_iterations: 0,
        }
    }

    /// FUNFOREST: MissForest with `fd_budget` of each column's trees
    /// restricted to that column's FD-related attributes.
    pub fn funforest(mut config: MissForestConfig, fds: FdSet) -> Self {
        if config.forest.fd_budget <= 0.0 {
            config.forest.fd_budget = 0.5; // the paper's empirical best
        }
        MissForest {
            config,
            fds,
            name: "FunForest",
            last_iterations: 0,
        }
    }

    fn impute_inner(&mut self, dirty: &Table) -> Table {
        let mut rng = StdRng::seed_from_u64(self.config.seed);
        let n_cols = dirty.n_columns();
        let filled = mean_mode_fill(dirty);
        let mut features = FeatureMatrix::from_complete_table(&filled);

        // Missing masks per column, in ascending-missingness order.
        let mut order: Vec<usize> = (0..n_cols).collect();
        order.sort_by_key(|&j| dirty.column(j).n_missing());
        let missing_rows: Vec<Vec<usize>> = (0..n_cols)
            .map(|j| {
                (0..dirty.n_rows())
                    .filter(|&i| dirty.is_missing(i, j))
                    .collect()
            })
            .collect();
        let observed_rows: Vec<Vec<usize>> = (0..n_cols)
            .map(|j| {
                (0..dirty.n_rows())
                    .filter(|&i| !dirty.is_missing(i, j))
                    .collect()
            })
            .collect();

        let mut prev_diff = f64::INFINITY;
        let mut best_snapshot = features.clone();
        self.last_iterations = 0;
        for _iter in 0..self.config.max_iterations {
            let before = features.clone();
            for &j in &order {
                if missing_rows[j].is_empty() || observed_rows[j].is_empty() {
                    continue;
                }
                let allowed: Vec<usize> = (0..n_cols).filter(|&c| c != j).collect();
                let fd_feats: Vec<usize> = self
                    .fds
                    .related_attributes(j)
                    .into_iter()
                    .filter(|&c| c != j)
                    .collect();
                match dirty.schema().column(j).kind {
                    ColumnKind::Categorical => {
                        let n_classes = dirty.dictionary(j).len().max(1);
                        let labels = TreeLabels::Classes(
                            observed_rows[j]
                                .iter()
                                .map(|&i| features.get(i, j).as_cat().expect("categorical"))
                                .collect(),
                        );
                        let forest = RandomForest::fit(
                            &features,
                            &observed_rows[j],
                            &labels,
                            TreeTarget::Classification(n_classes),
                            &allowed,
                            &fd_feats,
                            self.config.forest,
                            &mut rng,
                        );
                        for &i in &missing_rows[j] {
                            let pred = forest.predict_class(&features, i, n_classes);
                            features.set(i, j, Value::Cat(pred));
                        }
                    }
                    ColumnKind::Numerical => {
                        let labels = TreeLabels::Values(
                            observed_rows[j]
                                .iter()
                                .map(|&i| features.get(i, j).as_num().expect("numerical"))
                                .collect(),
                        );
                        let forest = RandomForest::fit(
                            &features,
                            &observed_rows[j],
                            &labels,
                            TreeTarget::Regression,
                            &allowed,
                            &fd_feats,
                            self.config.forest,
                            &mut rng,
                        );
                        for &i in &missing_rows[j] {
                            let pred = forest.predict_value(&features, i);
                            features.set(i, j, Value::Num(pred));
                        }
                    }
                }
            }
            self.last_iterations += 1;
            let diff = difference_measure(&before, &features, &missing_rows);
            if diff >= prev_diff {
                // first increase: keep the previous round's imputations
                features = best_snapshot;
                break;
            }
            prev_diff = diff;
            best_snapshot = features.clone();
        }

        // Write imputations back into a copy of the dirty table. Codes are
        // interned by surface string: the initial fill may have created
        // dictionary entries (e.g. the all-null placeholder) that the dirty
        // table does not have.
        let mut result = dirty.clone();
        for (j, rows) in missing_rows.iter().enumerate() {
            for &i in rows {
                match features.get(i, j) {
                    Value::Cat(code) => {
                        let s = filled.dictionary(j)[code as usize].clone();
                        let code = result.intern(j, &s);
                        result.set(i, j, Value::Cat(code));
                    }
                    v => result.set(i, j, v),
                }
            }
        }
        result
    }
}

/// The MissForest stopping statistic: normalized change of the imputed
/// entries between consecutive rounds (categorical: fraction changed;
/// numerical: relative squared change), summed over columns.
fn difference_measure(
    before: &FeatureMatrix,
    after: &FeatureMatrix,
    missing_rows: &[Vec<usize>],
) -> f64 {
    let mut total = 0.0;
    for (j, rows) in missing_rows.iter().enumerate() {
        if rows.is_empty() {
            continue;
        }
        match (&before.cols[j], &after.cols[j]) {
            (FeatCol::Cat { codes: b, .. }, FeatCol::Cat { codes: a, .. }) => {
                let changed = rows.iter().filter(|&&i| b[i] != a[i]).count();
                total += changed as f64 / rows.len() as f64;
            }
            (FeatCol::Num(b), FeatCol::Num(a)) => {
                let num: f64 = rows.iter().map(|&i| (a[i] - b[i]).powi(2)).sum();
                let den: f64 = rows.iter().map(|&i| a[i].powi(2)).sum::<f64>().max(1e-12);
                total += num / den;
            }
            _ => unreachable!("column kinds cannot change"),
        }
    }
    total
}

impl Imputer for MissForest {
    fn name(&self) -> &str {
        self.name
    }

    fn impute(&mut self, dirty: &Table) -> Table {
        self.impute_inner(dirty)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use grimp_table::{check_imputation_contract, inject_mcar, Schema};

    fn functional_table(n: usize) -> Table {
        let schema = Schema::from_pairs(&[
            ("a", ColumnKind::Categorical),
            ("b", ColumnKind::Categorical),
            ("x", ColumnKind::Numerical),
        ]);
        let mut t = Table::empty(schema);
        for i in 0..n {
            let a = format!("a{}", i % 4);
            let b = format!("b{}", i % 4);
            let x = format!("{}", (i % 4) as f64 * 10.0);
            t.push_str_row(&[Some(&a), Some(&b), Some(&x)]);
        }
        t
    }

    #[test]
    fn missforest_recovers_functional_columns() {
        let clean = functional_table(120);
        let mut dirty = clean.clone();
        let log = inject_mcar(&mut dirty, 0.15, &mut StdRng::seed_from_u64(1));
        let mut mf = MissForest::new(MissForestConfig::default());
        let imputed = mf.impute(&dirty);
        check_imputation_contract(&dirty, &imputed).unwrap();
        let cat: Vec<_> = log.cells.iter().filter(|c| c.col < 2).collect();
        let correct = cat
            .iter()
            .filter(|c| imputed.get(c.row, c.col) == c.truth)
            .count();
        let acc = correct as f64 / cat.len().max(1) as f64;
        assert!(acc > 0.8, "MissForest accuracy {acc}");
        assert!(mf.last_iterations >= 1);
    }

    #[test]
    fn numeric_imputations_track_functional_value() {
        let clean = functional_table(120);
        let mut dirty = clean.clone();
        let log = inject_mcar(&mut dirty, 0.15, &mut StdRng::seed_from_u64(2));
        let mut mf = MissForest::new(MissForestConfig::default());
        let imputed = mf.impute(&dirty);
        let num: Vec<_> = log.cells.iter().filter(|c| c.col == 2).collect();
        let rmse = (num
            .iter()
            .map(|c| {
                let t = c.truth.as_num().unwrap();
                let p = imputed.get(c.row, c.col).as_num().unwrap();
                (t - p) * (t - p)
            })
            .sum::<f64>()
            / num.len().max(1) as f64)
            .sqrt();
        assert!(rmse < 8.0, "rmse {rmse} (column std is ~11)");
    }

    #[test]
    fn funforest_uses_fd_information() {
        let clean = functional_table(120);
        let mut dirty = clean.clone();
        let log = inject_mcar(&mut dirty, 0.2, &mut StdRng::seed_from_u64(3));
        let fds = FdSet::from_pairs(&[(&[0], 1), (&[1], 0)]);
        let mut ff = MissForest::funforest(MissForestConfig::default(), fds);
        assert_eq!(ff.name(), "FunForest");
        let imputed = ff.impute(&dirty);
        check_imputation_contract(&dirty, &imputed).unwrap();
        let cat: Vec<_> = log.cells.iter().filter(|c| c.col < 2).collect();
        let correct = cat
            .iter()
            .filter(|c| imputed.get(c.row, c.col) == c.truth)
            .count();
        assert!(correct as f64 / cat.len().max(1) as f64 > 0.8);
    }

    #[test]
    fn fully_missing_column_is_left_at_initial_fill() {
        let schema =
            Schema::from_pairs(&[("a", ColumnKind::Categorical), ("x", ColumnKind::Numerical)]);
        let t = Table::from_rows(schema, &[vec![Some("p"), None], vec![Some("q"), None]]);
        let mut mf = MissForest::new(MissForestConfig::default());
        let imputed = mf.impute(&t);
        // no observed rows for x: falls back to mean fill (0.0)
        assert_eq!(imputed.get(0, 1), Value::Num(0.0));
    }
}

//! # grimp-baselines
//!
//! Every comparator of the GRIMP paper's evaluation (§4), implemented from
//! scratch on the workspace's own substrates:
//!
//! | Paper name | Type | Here |
//! |---|---|---|
//! | MISF (MissForest) | iterative random forests | [`MissForest`] |
//! | FUNF (FUNFOREST) | FD-pointed MissForest (§4.3) | [`MissForest::funforest`] |
//! | FD (FD-REPAIR) | minimality repair (§4.3) | [`FdRepair`] |
//! | HOLO (HoloClean/AimNet) | attention discriminative model | [`AimNetLike`] |
//! | DWIG (DataWig) | independent per-attribute models | [`DataWigLike`] |
//! | TURL | masked-cell token predictor | [`TurlSub`] |
//! | EMBDI-MC | EMBDI embeddings + single classifier | [`EmbdiMc`] |
//! | — | classical references | [`MeanMode`], [`KnnImputer`], [`Mice`] |
//! | MIDA [23] | denoising autoencoder | [`Mida`] |
//! | GAIN [54] | adversarial (LSGAN) imputer | [`Gain`] |
//!
//! The GNN-MC ablation arm lives in `grimp-core` (it shares GRIMP's shared
//! layer). TURL and AimNet are documented substitutions — see DESIGN.md §3.

#![warn(missing_docs)]

pub mod aimnet;
pub mod datawig;
pub mod domain;
pub mod embdi_mc;
pub mod encoding;
pub mod fd_repair;
pub mod forest;
pub mod gain;
pub mod mice;
pub mod mida;
pub mod missforest;
pub mod simple;
pub mod tree;
pub mod turl;

pub use aimnet::{AimNetConfig, AimNetLike};
pub use datawig::{DataWigConfig, DataWigLike};
pub use domain::ValueDomain;
pub use embdi_mc::{EmbdiMc, EmbdiMcConfig};
pub use encoding::{mean_mode_fill, FeatCol, FeatureMatrix};
pub use fd_repair::FdRepair;
pub use forest::{ForestConfig, RandomForest};
pub use gain::{Gain, GainConfig};
pub use mice::{Mice, MiceConfig};
pub use mida::{Mida, MidaConfig};
pub use missforest::{MissForest, MissForestConfig};
pub use simple::{KnnImputer, MeanMode};
pub use tree::{DecisionTree, SplitRule, TreeConfig, TreeLabels, TreeTarget};
pub use turl::{TurlConfig, TurlSub};

//! Property-based tests of the classical baselines: imputer contracts on
//! random tables, tree/forest invariants, and encoding roundtrips.

use grimp_baselines::{
    mean_mode_fill, DecisionTree, FeatureMatrix, KnnImputer, MeanMode, MissForest,
    MissForestConfig, TreeConfig, TreeLabels, TreeTarget,
};
use grimp_table::{check_imputation_contract, ColumnKind, Imputer, Schema, Table};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn arb_table() -> impl Strategy<Value = Table> {
    let cat = prop_oneof![
        4 => (0u32..5).prop_map(Some),
        1 => Just(None),
    ];
    proptest::collection::vec((cat, proptest::option::of(-100i32..100)), 2..40).prop_map(|rows| {
        let schema =
            Schema::from_pairs(&[("c", ColumnKind::Categorical), ("x", ColumnKind::Numerical)]);
        let mut t = Table::empty(schema);
        for (c, x) in rows {
            let c = c.map(|v| format!("v{v}"));
            let x = x.map(|v| format!("{}", v as f64 / 4.0));
            t.push_str_row(&[c.as_deref(), x.as_deref()]);
        }
        t
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn mean_mode_fill_is_idempotent(t in arb_table()) {
        let once = mean_mode_fill(&t);
        let twice = mean_mode_fill(&once);
        prop_assert_eq!(&once, &twice);
        prop_assert_eq!(once.n_missing(), 0);
    }

    #[test]
    fn simple_imputers_satisfy_the_contract(t in arb_table()) {
        for imputer in [&mut MeanMode as &mut dyn Imputer, &mut KnnImputer::new(3)] {
            let imputed = imputer.impute(&t);
            // contract holds whenever the column has at least one observed
            // value; fully-null columns stay null for mode/mean
            if (0..t.n_columns()).all(|j| t.column(j).n_missing() < t.n_rows()) {
                prop_assert!(check_imputation_contract(&t, &imputed).is_ok(), "{}", imputer.name());
            }
        }
    }

    #[test]
    fn missforest_satisfies_the_contract(t in arb_table()) {
        if (0..t.n_columns()).all(|j| t.column(j).n_missing() < t.n_rows()) {
            let mut mf = MissForest::new(MissForestConfig {
                max_iterations: 2,
                ..Default::default()
            });
            let imputed = mf.impute(&t);
            prop_assert!(check_imputation_contract(&t, &imputed).is_ok());
        }
    }

    #[test]
    fn trees_never_predict_unseen_classes(labels in proptest::collection::vec(0u32..4, 10..40)) {
        // build features aligned with labels
        let schema = Schema::from_pairs(&[("f", ColumnKind::Numerical)]);
        let mut t = Table::empty(schema);
        for (i, _) in labels.iter().enumerate() {
            t.push_str_row(&[Some(&format!("{}", i as f64))]);
        }
        let features = FeatureMatrix::from_complete_table(&t);
        let sample: Vec<usize> = (0..labels.len()).collect();
        let seen: std::collections::HashSet<u32> = labels.iter().copied().collect();
        let tree = DecisionTree::fit(
            &features,
            &sample,
            &TreeLabels::Classes(labels),
            TreeTarget::Classification(4),
            &[0],
            TreeConfig::default(),
            &mut StdRng::seed_from_u64(0),
        );
        for i in 0..features.n_rows() {
            prop_assert!(seen.contains(&tree.predict_class(&features, i)));
        }
    }

    #[test]
    fn regression_trees_predict_within_label_range(values in proptest::collection::vec(-100f64..100.0, 10..40)) {
        let schema = Schema::from_pairs(&[("f", ColumnKind::Numerical)]);
        let mut t = Table::empty(schema);
        for (i, _) in values.iter().enumerate() {
            t.push_str_row(&[Some(&format!("{}", (i * 7 % 13) as f64))]);
        }
        let features = FeatureMatrix::from_complete_table(&t);
        let sample: Vec<usize> = (0..values.len()).collect();
        let lo = values.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let tree = DecisionTree::fit(
            &features,
            &sample,
            &TreeLabels::Values(values),
            TreeTarget::Regression,
            &[0],
            TreeConfig::default(),
            &mut StdRng::seed_from_u64(1),
        );
        for i in 0..features.n_rows() {
            let p = tree.predict_value(&features, i);
            prop_assert!(p >= lo - 1e-9 && p <= hi + 1e-9, "{p} outside [{lo}, {hi}]");
        }
    }

    #[test]
    fn tree_depth_respects_config(depth in 0usize..6) {
        let schema = Schema::from_pairs(&[("f", ColumnKind::Numerical)]);
        let mut t = Table::empty(schema);
        let mut labels = Vec::new();
        for i in 0..64usize {
            t.push_str_row(&[Some(&format!("{}", i as f64))]);
            labels.push((i % 2) as u32);
        }
        let features = FeatureMatrix::from_complete_table(&t);
        let sample: Vec<usize> = (0..64).collect();
        let tree = DecisionTree::fit(
            &features,
            &sample,
            &TreeLabels::Classes(labels),
            TreeTarget::Classification(2),
            &[0],
            TreeConfig { max_depth: depth, ..Default::default() },
            &mut StdRng::seed_from_u64(2),
        );
        prop_assert!(tree.depth() <= depth);
    }
}

//! Vendored, dependency-free stand-in for the subset of the `rand` 0.8 API
//! that the GRIMP workspace uses.
//!
//! The build environment has no access to crates.io, so the workspace ships
//! this small shim as a path dependency under the same crate name. It
//! provides [`rngs::StdRng`] (xoshiro256** seeded via SplitMix64), the
//! [`Rng`] / [`SeedableRng`] traits with `gen`, `gen_range` and `gen_bool`,
//! and [`seq::SliceRandom`] with Fisher–Yates `shuffle` and `choose`.
//!
//! Streams are deterministic per seed (which is all the workspace relies
//! on) but are **not** bit-compatible with upstream `rand`.

#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Low-level uniform bit generation.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Deterministic construction from a seed.
pub trait SeedableRng: Sized {
    /// Build a generator whose stream is a pure function of `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// A sample from the "standard" distribution of `T` (unit interval for
    /// floats, full range for integers, fair coin for `bool`).
    fn gen<T: StandardSample>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// A uniform sample from `range`.
    ///
    /// # Panics
    /// Panics when the range is empty.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    /// Panics unless `0 ≤ p ≤ 1`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability must be in [0, 1]"
        );
        unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Map 64 random bits to the unit interval `[0, 1)` with 53-bit precision.
#[inline]
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Types samplable without parameters via [`Rng::gen`].
pub trait StandardSample {
    /// Draw one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng.next_u64())
    }
}

impl StandardSample for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl StandardSample for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl StandardSample for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl StandardSample for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw one value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Debiased uniform integer in `[0, span)` by rejection sampling.
#[inline]
fn uniform_u64_below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    let zone = u64::MAX - (u64::MAX - span + 1) % span;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % span;
        }
    }
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + uniform_u64_below(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample from empty range");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + uniform_u64_below(rng, span + 1) as i128) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let u = unit_f64(rng.next_u64()) as $t;
                let v = self.start + (self.end - self.start) * u;
                // guard against rounding up to the excluded endpoint
                if v >= self.end { self.start } else { v }
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample from empty range");
                lo + (hi - lo) * unit_f64(rng.next_u64()) as $t
            }
        }
    )*};
}

impl_float_range!(f32, f64);

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256** with SplitMix64
    /// seed expansion. Deterministic per seed; not reproducible against
    /// upstream `rand::rngs::StdRng` (a different algorithm entirely).
    #[derive(Clone, Debug, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        #[inline]
        fn rotl(x: u64, k: u32) -> u64 {
            x.rotate_left(k)
        }

        /// The full internal state, for checkpointing. Restoring it with
        /// [`StdRng::from_state`] resumes the stream exactly where it was.
        pub fn state(&self) -> [u64; 4] {
            self.s
        }

        /// A generator resumed from a state previously captured with
        /// [`StdRng::state`].
        pub fn from_state(s: [u64; 4]) -> Self {
            StdRng { s }
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            // SplitMix64 expansion as recommended by the xoshiro authors.
            let mut sm = state;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = Self::rotl(self.s[1].wrapping_mul(5), 7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = Self::rotl(self.s[3], 45);
            result
        }
    }
}

/// Sequence helpers.
pub mod seq {
    use super::Rng;

    /// Shuffling and random selection over slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        /// A uniformly random element, or `None` when empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = super::uniform_u64_below(rng, i as u64 + 1) as usize;
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                let i = super::uniform_u64_below(rng, self.len() as u64) as usize;
                Some(&self[i])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<f64>().to_bits(), b.gen::<f64>().to_bits());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        use super::RngCore;
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let one: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let other: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_ne!(one, other);
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(3usize..10);
            assert!((3..10).contains(&v));
            let f = rng.gen_range(-1.0f32..1.0);
            assert!((-1.0..1.0).contains(&f));
            let i = rng.gen_range(0..=5u32);
            assert!(i <= 5);
        }
    }

    #[test]
    fn unit_samples_cover_the_interval() {
        let mut rng = StdRng::seed_from_u64(11);
        let n = 10_000;
        let mean: f64 = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert!(v.choose(&mut rng).is_some());
        assert!(Vec::<u32>::new().choose(&mut rng).is_none());
    }

    #[test]
    fn state_roundtrip_resumes_the_stream() {
        use super::RngCore;
        let mut a = StdRng::seed_from_u64(42);
        for _ in 0..17 {
            a.next_u64();
        }
        let mut b = StdRng::from_state(a.state());
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(5);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((hits as f64 / 10_000.0 - 0.25).abs() < 0.02, "{hits}");
    }
}

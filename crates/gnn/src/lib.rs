//! # grimp-gnn
//!
//! Heterogeneous GraphSAGE message passing over the GRIMP table graph
//! (paper §3.4–3.5, Eq. 1): one mean-aggregator sub-module per
//! (layer, attribute) pair, summed across edge types (`γ`) and passed
//! through ReLU (`σ`). The `W_self` term realizes the paper's self-loops.

#![warn(missing_docs)]
#![cfg_attr(not(test), warn(clippy::unwrap_used))]

pub mod sage;

pub use sage::{GnnConfig, HeteroSage, OperatorAssignment};

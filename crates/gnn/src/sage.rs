//! Heterogeneous GraphSAGE (paper §3.5, Eq. 1).
//!
//! Each layer `L_k` holds one sub-module `l_{kt}` per edge type `t` (one per
//! table attribute). A sub-module is a GraphSAGE mean-aggregator operating
//! only on edges of its type:
//!
//! `z_t = h · W_self^{kt} + mean_{u ∈ N_t(v)}(h_u) · W_neigh^{kt} + b^{kt}`
//!
//! The per-type outputs are combined by the aggregation `γ` (summation) and
//! passed through the nonlinearity `σ` (ReLU):
//!
//! `h^{(k)} = σ( Σ_t z_t )`
//!
//! The `W_self` term realizes the self-loops the paper adds to the graph.
//! Weights are **not** shared across sub-modules ("allows some independence
//! between each column").

use std::rc::Rc;

use rand::{Rng, SeedableRng};

use grimp_graph::TableGraph;
use grimp_tensor::{init, Adjacency, Tape, Tensor, Var};

/// Hyperparameters of the heterogeneous GNN.
#[derive(Clone, Copy, Debug)]
pub struct GnnConfig {
    /// Number of message-passing layers (`L_GNN`; paper default 2).
    pub layers: usize,
    /// Width of every layer (`#P_GNN`; paper default 64).
    pub hidden: usize,
    /// Optional neighbor-sampling cap: at most this many neighbors per
    /// node per edge type are kept (uniformly sampled). This implements
    /// the graph-pruning efficiency direction of the paper's §7 — the
    /// original GraphSAGE neighborhood sampling — trading a little accuracy
    /// on high-degree cell nodes for linear-in-cap aggregation cost.
    /// `None` aggregates over the full neighborhood (the paper's default).
    pub neighbor_cap: Option<usize>,
    /// Which convolution operator the sub-modules use. The paper notes each
    /// sub-module could use a different architecture ("l11 using GCN, l12
    /// uses GraphSAGE…") but employs GraphSAGE everywhere; all three
    /// assignments are available here.
    pub operator: OperatorAssignment,
}

impl Default for GnnConfig {
    fn default() -> Self {
        GnnConfig {
            layers: 2,
            hidden: 64,
            neighbor_cap: None,
            operator: OperatorAssignment::AllSage,
        }
    }
}

/// How convolution operators are assigned to sub-modules.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OperatorAssignment {
    /// GraphSAGE mean aggregation everywhere (the paper's choice).
    AllSage,
    /// Kipf–Welling GCN (symmetric-normalized aggregation with self-loops)
    /// everywhere.
    AllGcn,
    /// The paper's illustrative mix: even-indexed columns use GraphSAGE,
    /// odd-indexed columns use GCN.
    Alternating,
}

impl OperatorAssignment {
    fn is_gcn(self, edge_type: usize) -> bool {
        match self {
            OperatorAssignment::AllSage => false,
            OperatorAssignment::AllGcn => true,
            OperatorAssignment::Alternating => edge_type % 2 == 1,
        }
    }
}

/// One sub-module `l_{kt}`: GraphSAGE mean-aggregator or GCN.
#[derive(Clone, Debug)]
enum Module {
    /// `z = h·W_self + mean_N(h)·W_neigh + b`.
    Sage {
        w_self: Var,
        w_neigh: Var,
        bias: Var,
    },
    /// `z = (Â h)·W + b` with `Â` the symmetric-normalized adjacency with
    /// self-loops (Kipf & Welling, 2017).
    Gcn { w: Var, bias: Var },
}

impl Module {
    fn new_sage(tape: &mut Tape, in_dim: usize, out_dim: usize, rng: &mut impl Rng) -> Self {
        Module::Sage {
            w_self: tape.param(init::xavier_uniform(in_dim, out_dim, rng)),
            w_neigh: tape.param(init::xavier_uniform(in_dim, out_dim, rng)),
            bias: tape.param(Tensor::zeros(1, out_dim)),
        }
    }

    fn new_gcn(tape: &mut Tape, in_dim: usize, out_dim: usize, rng: &mut impl Rng) -> Self {
        Module::Gcn {
            w: tape.param(init::xavier_uniform(in_dim, out_dim, rng)),
            bias: tape.param(Tensor::zeros(1, out_dim)),
        }
    }

    fn forward(&self, tape: &mut Tape, h: Var, adj: &TypeAdjacency) -> Var {
        match self {
            Module::Sage {
                w_self,
                w_neigh,
                bias,
            } => {
                let neigh = tape.scatter_mean(h, Rc::clone(&adj.mean));
                let self_part = tape.matmul(h, *w_self);
                let neigh_part = tape.matmul(neigh, *w_neigh);
                let sum = tape.add(self_part, neigh_part);
                tape.add_row_broadcast(sum, *bias)
            }
            Module::Gcn { w, bias } => {
                let agg =
                    tape.scatter_weighted(h, Rc::clone(&adj.gcn), Rc::clone(&adj.gcn_weights));
                let z = tape.matmul(agg, *w);
                tape.add_row_broadcast(z, *bias)
            }
        }
    }

    fn n_weights(&self, in_dim: usize, out_dim: usize) -> usize {
        match self {
            Module::Sage { .. } => 2 * in_dim * out_dim + out_dim,
            Module::Gcn { .. } => in_dim * out_dim + out_dim,
        }
    }
}

/// Per-edge-type aggregation structures: the plain neighbor lists for
/// GraphSAGE's mean, and the self-looped symmetric-normalized version for
/// GCN.
struct TypeAdjacency {
    mean: Rc<Adjacency>,
    gcn: Rc<Adjacency>,
    gcn_weights: Rc<Vec<f32>>,
}

/// Append self-loops and compute `1/sqrt((d_i+1)(d_j+1))` edge weights.
fn gcn_normalize(lists: &[Vec<u32>]) -> (Adjacency, Vec<f32>) {
    let deg: Vec<usize> = lists.iter().map(Vec::len).collect();
    let mut with_self: Vec<Vec<u32>> = Vec::with_capacity(lists.len());
    let mut weights = Vec::new();
    for (i, list) in lists.iter().enumerate() {
        let mut row = list.clone();
        row.push(i as u32); // self-loop
        for &j in &row {
            let dj = deg[j as usize] + 1;
            let di = deg[i] + 1;
            weights.push(1.0 / ((di * dj) as f32).sqrt());
        }
        with_self.push(row);
    }
    (Adjacency::from_lists(&with_self), weights)
}

/// Build per-type CSR adjacencies, optionally subsampling each node's
/// neighbor list to `cap` entries.
fn build_adjacencies(
    graph: &TableGraph,
    cap: Option<usize>,
    rng: &mut impl Rng,
) -> Vec<TypeAdjacency> {
    use rand::seq::SliceRandom;
    graph
        .neighbor_lists()
        .into_iter()
        .map(|mut lists| {
            if let Some(cap) = cap {
                for list in &mut lists {
                    if list.len() > cap {
                        list.shuffle(rng);
                        list.truncate(cap);
                        list.sort_unstable();
                    }
                }
            }
            let (gcn, gcn_weights) = gcn_normalize(&lists);
            TypeAdjacency {
                mean: Rc::new(Adjacency::from_lists(&lists)),
                gcn: Rc::new(gcn),
                gcn_weights: Rc::new(gcn_weights),
            }
        })
        .collect()
}

/// The heterogeneous GNN: `layers × edge_types` GraphSAGE sub-modules plus
/// the per-type CSR adjacencies of one table graph.
pub struct HeteroSage {
    modules: Vec<Vec<Module>>,
    adj: Vec<TypeAdjacency>,
    in_dim: usize,
    config: GnnConfig,
}

impl HeteroSage {
    /// Register the GNN's parameters on `tape` and precompute the per-type
    /// adjacencies of `graph`.
    pub fn new(
        tape: &mut Tape,
        graph: &TableGraph,
        in_dim: usize,
        config: GnnConfig,
        rng: &mut impl Rng,
    ) -> Self {
        assert!(config.layers >= 1, "at least one GNN layer required");
        let n_types = graph.n_edge_types();
        let mut modules = Vec::with_capacity(config.layers);
        for layer in 0..config.layers {
            let d_in = if layer == 0 { in_dim } else { config.hidden };
            let row: Vec<Module> = (0..n_types)
                .map(|t| {
                    if config.operator.is_gcn(t) {
                        Module::new_gcn(tape, d_in, config.hidden, rng)
                    } else {
                        Module::new_sage(tape, d_in, config.hidden, rng)
                    }
                })
                .collect();
            modules.push(row);
        }
        let adj = build_adjacencies(graph, config.neighbor_cap, rng);
        HeteroSage {
            modules,
            adj,
            in_dim,
            config,
        }
    }

    /// Rebind the GNN to a different graph with the same number of edge
    /// types (used when the underlying table's edges change, e.g. fresh
    /// corruption or inductive reuse, while keeping trained weights).
    /// Neighbor sampling (when configured) is re-drawn deterministically.
    pub fn rebind(&mut self, graph: &TableGraph) {
        assert_eq!(
            graph.n_edge_types(),
            self.modules[0].len(),
            "graph has a different number of edge types"
        );
        let mut rng = rand::rngs::StdRng::seed_from_u64(0x5a9e);
        self.adj = build_adjacencies(graph, self.config.neighbor_cap, &mut rng);
    }

    /// Rebind the GNN to explicit per-type neighbor lists (shaped like
    /// [`TableGraph::neighbor_lists`]) instead of a graph — the sampled
    /// training path hands in each epoch's fanout-capped lists from the
    /// deterministic neighbor sampler. The node count must stay fixed so
    /// tensor shapes (and hence the training workspace) are unchanged; the
    /// configured `neighbor_cap` is **not** re-applied on top, the lists are
    /// used verbatim.
    pub fn rebind_lists(&mut self, per_type: &[Vec<Vec<u32>>]) {
        assert_eq!(
            per_type.len(),
            self.modules[0].len(),
            "lists cover a different number of edge types"
        );
        self.adj = per_type
            .iter()
            .map(|lists| {
                let (gcn, gcn_weights) = gcn_normalize(lists);
                TypeAdjacency {
                    mean: Rc::new(Adjacency::from_lists(lists)),
                    gcn: Rc::new(gcn),
                    gcn_weights: Rc::new(gcn_weights),
                }
            })
            .collect();
    }

    /// Message passing over all layers. `features` must be
    /// `n_nodes × in_dim`; the result is `n_nodes × hidden`.
    pub fn forward(&self, tape: &mut Tape, features: Var) -> Var {
        assert_eq!(
            tape.value(features).cols(),
            self.in_dim,
            "feature width does not match GNN input dim"
        );
        let mut h = features;
        for row in &self.modules {
            let per_type: Vec<Var> = row
                .iter()
                .zip(&self.adj)
                .map(|(module, adj)| module.forward(tape, h, adj))
                .collect();
            let combined = tape.add_n(&per_type);
            h = tape.relu(combined);
        }
        h
    }

    /// Output width.
    pub fn out_dim(&self) -> usize {
        self.config.hidden
    }

    /// Configured shape.
    pub fn config(&self) -> GnnConfig {
        self.config
    }

    /// Number of scalar weights actually allocated (all sub-modules).
    pub fn n_weights(&self) -> usize {
        let mut total = 0;
        for (layer, row) in self.modules.iter().enumerate() {
            let d_in = if layer == 0 {
                self.in_dim
            } else {
                self.config.hidden
            };
            total += row
                .iter()
                .map(|m| m.n_weights(d_in, self.config.hidden))
                .sum::<usize>();
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use grimp_graph::GraphConfig;
    use grimp_table::{ColumnKind, Schema, Table};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn graph() -> (Table, TableGraph) {
        let schema = Schema::from_pairs(&[
            ("a", ColumnKind::Categorical),
            ("b", ColumnKind::Categorical),
        ]);
        let t = Table::from_rows(
            schema,
            &[
                vec![Some("x"), Some("p")],
                vec![Some("x"), Some("q")],
                vec![Some("y"), None],
            ],
        );
        let g = TableGraph::build(&t, GraphConfig::default(), &[]);
        (t, g)
    }

    #[test]
    fn forward_produces_hidden_width_for_all_nodes() {
        let (_, g) = graph();
        let mut rng = StdRng::seed_from_u64(0);
        let mut tape = Tape::new();
        let sage = HeteroSage::new(
            &mut tape,
            &g,
            8,
            GnnConfig {
                layers: 2,
                hidden: 16,
                ..Default::default()
            },
            &mut rng,
        );
        tape.freeze();
        let x = tape.input(Tensor::full(g.n_nodes(), 8, 0.1));
        let h = sage.forward(&mut tape, x);
        assert_eq!(tape.value(h).shape(), (g.n_nodes(), 16));
        assert!(tape.value(h).all_finite());
    }

    #[test]
    fn gradients_flow_to_every_submodule() {
        let (_, g) = graph();
        let mut rng = StdRng::seed_from_u64(1);
        let mut tape = Tape::new();
        let sage = HeteroSage::new(
            &mut tape,
            &g,
            4,
            GnnConfig {
                layers: 2,
                hidden: 8,
                ..Default::default()
            },
            &mut rng,
        );
        tape.freeze();
        let x = tape.input(Tensor::full(g.n_nodes(), 4, 0.5));
        let h = sage.forward(&mut tape, x);
        let sq = tape.mul_elem(h, h);
        let loss = tape.sum_all(sq);
        tape.backward(loss);
        let mut with_grad = 0;
        for i in 0..tape.param_count() {
            if tape.grad(Var::from_index(i)).is_some() {
                with_grad += 1;
            }
        }
        // 2 layers x 2 types x 3 tensors
        assert_eq!(with_grad, 12);
    }

    #[test]
    fn isolated_nodes_still_get_representations() {
        // A node with no edges in some type must not produce NaNs
        // (scatter_mean yields a zero row; the self term carries it).
        let schema = Schema::from_pairs(&[("a", ColumnKind::Categorical)]);
        let t = Table::from_rows(schema, &[vec![Some("x")], vec![None]]);
        let g = TableGraph::build(&t, GraphConfig::default(), &[]);
        let mut rng = StdRng::seed_from_u64(2);
        let mut tape = Tape::new();
        let sage = HeteroSage::new(
            &mut tape,
            &g,
            4,
            GnnConfig {
                layers: 2,
                hidden: 8,
                ..Default::default()
            },
            &mut rng,
        );
        tape.freeze();
        let x = tape.input(Tensor::full(g.n_nodes(), 4, 1.0));
        let h = sage.forward(&mut tape, x);
        assert!(tape.value(h).all_finite());
    }

    #[test]
    fn isolated_node_aggregation_is_bit_identical_across_backends() {
        // The degree-0 path (scatter_mean zero rows) must agree bit-for-bit
        // between the serial and parallel kernel backends, through the full
        // hetero forward + backward — outputs and parameter gradients alike.
        let schema = Schema::from_pairs(&[("a", ColumnKind::Categorical)]);
        let t = Table::from_rows(schema, &[vec![Some("x")], vec![None], vec![Some("y")]]);
        let g = TableGraph::build(&t, GraphConfig::default(), &[]);
        let run = |kind: grimp_tensor::BackendKind| {
            let mut rng = StdRng::seed_from_u64(5);
            let mut tape = Tape::new();
            tape.set_backend(kind);
            let sage = HeteroSage::new(
                &mut tape,
                &g,
                4,
                GnnConfig {
                    layers: 2,
                    hidden: 8,
                    ..Default::default()
                },
                &mut rng,
            );
            tape.freeze();
            let x = tape.input(Tensor::full(g.n_nodes(), 4, 0.5));
            let h = sage.forward(&mut tape, x);
            let sq = tape.mul_elem(h, h);
            let loss = tape.sum_all(sq);
            tape.backward(loss);
            let grads: Vec<u32> = (0..tape.param_count())
                .filter_map(|i| tape.grad(Var::from_index(i)))
                .flat_map(|gr| {
                    gr.as_slice()
                        .iter()
                        .map(|v| v.to_bits())
                        .collect::<Vec<_>>()
                })
                .collect();
            let out: Vec<u32> = tape
                .value(h)
                .as_slice()
                .iter()
                .map(|v| v.to_bits())
                .collect();
            (out, grads)
        };
        let serial = run(grimp_tensor::BackendKind::Serial);
        for threads in [1, 2, 8] {
            let parallel = run(grimp_tensor::BackendKind::Parallel { threads });
            assert_eq!(serial.0, parallel.0, "outputs, {threads} threads");
            assert_eq!(serial.1, parallel.1, "gradients, {threads} threads");
        }
    }

    #[test]
    fn neighbors_influence_each_other() {
        // Changing a neighbor's features must change a node's output.
        let (_, g) = graph();
        let mut rng = StdRng::seed_from_u64(3);
        let mut tape = Tape::new();
        let sage = HeteroSage::new(
            &mut tape,
            &g,
            4,
            GnnConfig {
                layers: 1,
                hidden: 8,
                ..Default::default()
            },
            &mut rng,
        );
        tape.freeze();

        let run = |tape: &mut Tape, feat: Tensor| -> Tensor {
            let x = tape.input(feat);
            let h = sage.forward(tape, x);
            let out = tape.value(h).clone();
            tape.reset();
            out
        };
        let base = Tensor::full(g.n_nodes(), 4, 0.5);
        let mut changed = base.clone();
        // perturb the cell node shared by rows 0 and 1 (value "x" in col a)
        let shared = g.cell_node(0, "x").unwrap() as usize;
        for d in 0..4 {
            changed.set(shared, d, 5.0);
        }
        let h_base = run(&mut tape, base);
        let h_changed = run(&mut tape, changed);
        // row 0 and row 1 RID outputs must differ, row 2's must not
        // (row 2 holds value "y", not "x", and has no column-b edge).
        let diff = |r: usize| -> f32 {
            h_base
                .row_slice(r)
                .iter()
                .zip(h_changed.row_slice(r))
                .map(|(&a, &b)| (a - b).abs())
                .sum()
        };
        assert!(diff(0) > 1e-4);
        assert!(diff(1) > 1e-4);
        assert!(diff(2) < 1e-6);
    }

    #[test]
    fn neighbor_cap_bounds_every_adjacency_list() {
        // a table where one cell value is shared by many rows → high degree
        let schema = Schema::from_pairs(&[("a", ColumnKind::Categorical)]);
        let rows: Vec<Vec<Option<&str>>> = (0..50).map(|_| vec![Some("hot")]).collect();
        let t = Table::from_rows(schema, &rows);
        let g = TableGraph::build(&t, GraphConfig::default(), &[]);
        let mut rng = StdRng::seed_from_u64(5);
        let mut tape = Tape::new();
        let cfg = GnnConfig {
            layers: 1,
            hidden: 8,
            neighbor_cap: Some(4),
            ..Default::default()
        };
        let sage = HeteroSage::new(&mut tape, &g, 4, cfg, &mut rng);
        tape.freeze();
        // the hot cell node has degree 50 uncapped; forward must behave as
        // if degree ≤ 4 — verify via the adjacency actually used
        for adj in &sage.adj {
            for node in 0..adj.mean.n_rows() {
                assert!(
                    adj.mean.degree(node) <= 4,
                    "node {node} degree {}",
                    adj.mean.degree(node)
                );
            }
        }
        // and the forward pass still works
        let x = tape.input(Tensor::full(g.n_nodes(), 4, 0.5));
        let h = sage.forward(&mut tape, x);
        assert!(tape.value(h).all_finite());
    }

    #[test]
    fn uncapped_config_keeps_full_neighborhoods() {
        let schema = Schema::from_pairs(&[("a", ColumnKind::Categorical)]);
        let rows: Vec<Vec<Option<&str>>> = (0..20).map(|_| vec![Some("hot")]).collect();
        let t = Table::from_rows(schema, &rows);
        let g = TableGraph::build(&t, GraphConfig::default(), &[]);
        let mut rng = StdRng::seed_from_u64(6);
        let mut tape = Tape::new();
        let sage = HeteroSage::new(
            &mut tape,
            &g,
            4,
            GnnConfig {
                layers: 1,
                hidden: 8,
                ..Default::default()
            },
            &mut rng,
        );
        let hot = g.cell_node(0, "hot").unwrap() as usize;
        assert_eq!(sage.adj[0].mean.degree(hot), 20);
    }

    #[test]
    fn gcn_modules_forward_and_train() {
        let (_, g) = graph();
        let mut rng = StdRng::seed_from_u64(7);
        let mut tape = Tape::new();
        let cfg = GnnConfig {
            layers: 2,
            hidden: 8,
            operator: OperatorAssignment::AllGcn,
            ..Default::default()
        };
        let sage = HeteroSage::new(&mut tape, &g, 4, cfg, &mut rng);
        tape.freeze();
        let x = tape.input(Tensor::full(g.n_nodes(), 4, 0.5));
        let h = sage.forward(&mut tape, x);
        assert!(tape.value(h).all_finite());
        let sq = tape.mul_elem(h, h);
        let loss = tape.sum_all(sq);
        tape.backward(loss);
        let with_grad = (0..tape.param_count())
            .filter(|&i| tape.grad(Var::from_index(i)).is_some())
            .count();
        // 2 layers x 2 types x 2 tensors (GCN has W + bias)
        assert_eq!(with_grad, 8);
    }

    #[test]
    fn alternating_assignment_mixes_operators() {
        let (_, g) = graph();
        let mut rng = StdRng::seed_from_u64(8);
        let mut tape = Tape::new();
        let cfg = GnnConfig {
            layers: 1,
            hidden: 8,
            operator: OperatorAssignment::Alternating,
            ..Default::default()
        };
        let sage = HeteroSage::new(&mut tape, &g, 4, cfg, &mut rng);
        // column 0 = SAGE (3 tensors), column 1 = GCN (2 tensors)
        assert_eq!(tape.total_param_elems(), sage.n_weights());
        assert_eq!(sage.n_weights(), (2 * 4 * 8 + 8) + (4 * 8 + 8));
    }

    #[test]
    fn gcn_normalization_weights_are_symmetric_stochasticish() {
        // hand check: path graph 0-1 plus self loops
        let lists = vec![vec![1u32], vec![0u32]];
        let (adj, w) = gcn_normalize(&lists);
        assert_eq!(adj.n_edges(), 4); // 2 edges + 2 self-loops
                                      // all degrees are 1 (+1 self) → every weight = 1/2
        assert!(w.iter().all(|&x| (x - 0.5).abs() < 1e-6), "{w:?}");
    }

    #[test]
    fn rebind_lists_swaps_the_adjacency_and_back() {
        let (_, g) = graph();
        let mut rng = StdRng::seed_from_u64(9);
        let mut tape = Tape::new();
        let mut sage = HeteroSage::new(
            &mut tape,
            &g,
            4,
            GnnConfig {
                layers: 1,
                hidden: 8,
                ..Default::default()
            },
            &mut rng,
        );
        tape.freeze();
        let full = g.neighbor_lists();
        let run = |tape: &mut Tape, sage: &HeteroSage| -> Vec<u32> {
            let x = tape.input(Tensor::full(g.n_nodes(), 4, 0.5));
            let h = sage.forward(tape, x);
            let bits = tape
                .value(h)
                .as_slice()
                .iter()
                .map(|v| v.to_bits())
                .collect();
            tape.reset();
            bits
        };
        let h_full = run(&mut tape, &sage);

        // empty column-0 neighborhoods → different aggregation result
        let mut stripped = full.clone();
        for list in &mut stripped[0] {
            list.clear();
        }
        sage.rebind_lists(&stripped);
        let h_stripped = run(&mut tape, &sage);
        assert_ne!(h_full, h_stripped, "stripped adjacency must change output");

        // rebinding the verbatim full lists restores the original bits
        sage.rebind_lists(&full);
        assert_eq!(run(&mut tape, &sage), h_full);
    }

    #[test]
    fn n_weights_matches_shape_arithmetic() {
        let (_, g) = graph();
        let mut rng = StdRng::seed_from_u64(4);
        let mut tape = Tape::new();
        let sage = HeteroSage::new(
            &mut tape,
            &g,
            8,
            GnnConfig {
                layers: 2,
                hidden: 16,
                ..Default::default()
            },
            &mut rng,
        );
        // layer 0: 2 types x (2*8*16 + 16); layer 1: 2 types x (2*16*16 + 16)
        assert_eq!(
            sage.n_weights(),
            2 * (2 * 8 * 16 + 16) + 2 * (2 * 16 * 16 + 16)
        );
        assert_eq!(tape.total_param_elems(), sage.n_weights());
    }
}

//! Integration tests of multi-hop message passing: with two GraphSAGE
//! layers, information must travel RID → cell → RID (the "similar tuples"
//! channel of the paper's Figure 1), and rebinding must transfer weights to
//! a new graph.

use grimp_gnn::{GnnConfig, HeteroSage};
use grimp_graph::{GraphConfig, TableGraph};
use grimp_table::{ColumnKind, Schema, Table};
use grimp_tensor::{Tape, Tensor};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// rows 0 and 1 share value "x"; row 2 is disconnected from them.
fn shared_value_table() -> Table {
    let schema = Schema::from_pairs(&[("a", ColumnKind::Categorical)]);
    Table::from_rows(schema, &[vec![Some("x")], vec![Some("x")], vec![Some("z")]])
}

fn run_forward(sage: &HeteroSage, tape: &mut Tape, features: Tensor) -> Tensor {
    let x = tape.input(features);
    let h = sage.forward(tape, x);
    let out = tape.value(h).clone();
    tape.reset();
    out
}

#[test]
fn two_layers_propagate_between_rows_sharing_a_value() {
    let t = shared_value_table();
    let g = TableGraph::build(&t, GraphConfig::default(), &[]);
    let mut rng = StdRng::seed_from_u64(0);
    let mut tape = Tape::new();
    let sage = HeteroSage::new(
        &mut tape,
        &g,
        4,
        GnnConfig {
            layers: 2,
            hidden: 8,
            ..Default::default()
        },
        &mut rng,
    );
    tape.freeze();

    let base = Tensor::full(g.n_nodes(), 4, 0.5);
    let mut perturbed = base.clone();
    // perturb RID 1's own features
    for d in 0..4 {
        perturbed.set(1, d, 3.0);
    }
    let h_base = run_forward(&sage, &mut tape, base);
    let h_pert = run_forward(&sage, &mut tape, perturbed);

    let delta = |r: usize| -> f32 {
        h_base
            .row_slice(r)
            .iter()
            .zip(h_pert.row_slice(r))
            .map(|(&a, &b)| (a - b).abs())
            .sum()
    };
    // 2 hops: RID1 → cell "x" → RID0. RID0 must feel the change.
    assert!(delta(0) > 1e-5, "2-hop neighbor unaffected: {}", delta(0));
    // RID2 shares no value with RID1; at 2 layers the influence path
    // RID1→x→RID0 never reaches it (z's only neighbor is RID2).
    assert!(delta(2) < 1e-6, "disconnected row affected: {}", delta(2));
}

#[test]
fn one_layer_does_not_reach_two_hops() {
    let t = shared_value_table();
    let g = TableGraph::build(&t, GraphConfig::default(), &[]);
    let mut rng = StdRng::seed_from_u64(1);
    let mut tape = Tape::new();
    let sage = HeteroSage::new(
        &mut tape,
        &g,
        4,
        GnnConfig {
            layers: 1,
            hidden: 8,
            ..Default::default()
        },
        &mut rng,
    );
    tape.freeze();
    let base = Tensor::full(g.n_nodes(), 4, 0.5);
    let mut perturbed = base.clone();
    for d in 0..4 {
        perturbed.set(1, d, 3.0);
    }
    let h_base = run_forward(&sage, &mut tape, base);
    let h_pert = run_forward(&sage, &mut tape, perturbed);
    let delta_r0: f32 = h_base
        .row_slice(0)
        .iter()
        .zip(h_pert.row_slice(0))
        .map(|(&a, &b)| (a - b).abs())
        .sum();
    // One layer aggregates only the *input* features of direct neighbors:
    // RID0's neighbor is the cell node "x", whose input features do not
    // depend on RID1, so RID1's perturbation cannot reach RID0 in one hop.
    assert!(
        delta_r0 < 1e-6,
        "1-layer model leaked 2-hop information: {delta_r0}"
    );
}

#[test]
fn rebind_preserves_weights_across_graphs() {
    let t1 = shared_value_table();
    let g1 = TableGraph::build(&t1, GraphConfig::default(), &[]);
    let mut rng = StdRng::seed_from_u64(2);
    let mut tape = Tape::new();
    let mut sage = HeteroSage::new(
        &mut tape,
        &g1,
        4,
        GnnConfig {
            layers: 2,
            hidden: 8,
            ..Default::default()
        },
        &mut rng,
    );
    tape.freeze();
    let h1 = run_forward(&sage, &mut tape, Tensor::full(g1.n_nodes(), 4, 0.5));

    // a different table with the same schema
    let t2 = Table::from_rows(
        Schema::from_pairs(&[("a", ColumnKind::Categorical)]),
        &[
            vec![Some("p")],
            vec![Some("p")],
            vec![Some("p")],
            vec![Some("q")],
        ],
    );
    let g2 = TableGraph::build(&t2, GraphConfig::default(), &[]);
    sage.rebind(&g2);
    let h2 = run_forward(&sage, &mut tape, Tensor::full(g2.n_nodes(), 4, 0.5));
    assert_eq!(h2.rows(), g2.n_nodes());
    assert!(h2.all_finite());

    // rebinding back reproduces the original outputs exactly
    sage.rebind(&g1);
    let h1_again = run_forward(&sage, &mut tape, Tensor::full(g1.n_nodes(), 4, 0.5));
    assert_eq!(
        h1, h1_again,
        "rebind must be weight-preserving and deterministic"
    );
}

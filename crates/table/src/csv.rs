//! Minimal CSV reading and writing for tables.
//!
//! Handles the subset of RFC 4180 the experiment files need: comma
//! separation, double-quote quoting with `""` escapes, and a configurable
//! set of tokens treated as missing (`""`, `NULL`, `NA`, `?`).

use std::io::{self, BufRead, Write};

use crate::schema::{ColumnKind, ColumnMeta, Schema};
use crate::table::Table;

/// Tokens interpreted as the missing-value sentinel when loading.
pub const NULL_TOKENS: [&str; 4] = ["", "NULL", "NA", "?"];

fn is_null_token(s: &str) -> bool {
    NULL_TOKENS.contains(&s)
}

/// Split one CSV line into fields, honoring double-quote quoting.
pub fn split_line(line: &str) -> Vec<String> {
    let mut fields = Vec::new();
    let mut field = String::new();
    let mut chars = line.chars().peekable();
    let mut quoted = false;
    while let Some(c) = chars.next() {
        if quoted {
            match c {
                '"' if chars.peek() == Some(&'"') => {
                    chars.next();
                    field.push('"');
                }
                '"' => quoted = false,
                c => field.push(c),
            }
        } else {
            match c {
                '"' => quoted = true,
                ',' => fields.push(std::mem::take(&mut field)),
                c => field.push(c),
            }
        }
    }
    fields.push(field);
    fields
}

fn quote_field(s: &str) -> String {
    if s.contains([',', '"', '\n']) {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

fn bad_data(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

/// Read a table from CSV text with a header row, inferring column kinds:
/// a column is numerical when every non-null cell parses as `f64`,
/// categorical otherwise.
///
/// Malformed input — an empty stream, invalid UTF-8, ragged rows, or
/// duplicate header names — is reported as an
/// [`io::ErrorKind::InvalidData`] error naming the offending line; this
/// function never panics on bad data.
pub fn read_csv(reader: impl BufRead) -> io::Result<Table> {
    let mut lines = reader.lines();
    let header = lines
        .next()
        .ok_or_else(|| bad_data("empty CSV: expected a header row"))?
        .map_err(|e| utf8_context(e, 1))?;
    let names = split_line(&header);
    {
        let mut sorted: Vec<&str> = names.iter().map(String::as_str).collect();
        sorted.sort_unstable();
        if let Some(w) = sorted.windows(2).find(|w| w[0] == w[1]) {
            return Err(bad_data(format!(
                "duplicate column name {:?} in header",
                w[0]
            )));
        }
    }
    let mut rows: Vec<Vec<Option<String>>> = Vec::new();
    for (idx, line) in lines.enumerate() {
        let line_no = idx + 2; // 1-based, after the header
        let line = line.map_err(|e| utf8_context(e, line_no))?;
        if line.is_empty() {
            continue;
        }
        let fields = split_line(&line);
        if fields.len() != names.len() {
            return Err(bad_data(format!(
                "line {line_no}: row has {} fields, header has {}",
                fields.len(),
                names.len()
            )));
        }
        rows.push(
            fields
                .into_iter()
                .map(|f| {
                    if is_null_token(f.trim()) {
                        None
                    } else {
                        Some(f)
                    }
                })
                .collect(),
        );
    }
    // Infer kinds.
    let kinds: Vec<ColumnKind> = (0..names.len())
        .map(|j| {
            let mut saw_value = false;
            let all_numeric = rows.iter().all(|r| match &r[j] {
                Some(s) => {
                    saw_value = true;
                    s.trim().parse::<f64>().is_ok()
                }
                None => true,
            });
            if all_numeric && saw_value {
                ColumnKind::Numerical
            } else {
                ColumnKind::Categorical
            }
        })
        .collect();
    let schema = Schema::new(
        names
            .into_iter()
            .zip(&kinds)
            .map(|(name, &kind)| ColumnMeta { name, kind })
            .collect(),
    );
    let mut table = Table::empty(schema);
    for row in &rows {
        let borrowed: Vec<Option<&str>> = row.iter().map(|c| c.as_deref()).collect();
        table
            .try_push_str_row(&borrowed)
            .map_err(|e| bad_data(e.to_string()))?;
    }
    Ok(table)
}

/// Attach a line number to the UTF-8/io errors `BufRead::lines` produces.
fn utf8_context(e: io::Error, line_no: usize) -> io::Error {
    if e.kind() == io::ErrorKind::InvalidData {
        bad_data(format!("line {line_no}: input is not valid UTF-8"))
    } else {
        e
    }
}

/// Parse a table directly from an in-memory CSV string.
pub fn read_csv_str(text: &str) -> io::Result<Table> {
    read_csv(text.as_bytes())
}

/// Write a table as CSV with a header row; `∅` cells become empty fields.
pub fn write_csv(table: &Table, mut writer: impl Write) -> io::Result<()> {
    let header: Vec<String> = table
        .schema()
        .columns()
        .iter()
        .map(|c| quote_field(&c.name))
        .collect();
    writeln!(writer, "{}", header.join(","))?;
    for i in 0..table.n_rows() {
        let row: Vec<String> = (0..table.n_columns())
            .map(|j| {
                if table.is_missing(i, j) {
                    String::new()
                } else {
                    quote_field(&table.display(i, j))
                }
            })
            .collect();
        writeln!(writer, "{}", row.join(","))?;
    }
    Ok(())
}

/// Render a table as a CSV string.
pub fn to_csv_string(table: &Table) -> String {
    String::from_utf8(to_csv_bytes(table)).expect("invariant: write_csv emits only UTF-8")
}

/// Render a table as in-memory CSV bytes, for callers that write the whole
/// file in one atomic operation (temp file + rename) instead of streaming.
pub fn to_csv_bytes(table: &Table) -> Vec<u8> {
    let mut buf = Vec::new();
    write_csv(table, &mut buf).expect("invariant: writing to a Vec<u8> cannot fail");
    buf
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Value;

    #[test]
    fn roundtrip_preserves_content() {
        let src = "a,b\nx,1\n,2\ny,\n";
        let t = read_csv_str(src).unwrap();
        assert_eq!(t.n_rows(), 3);
        assert_eq!(t.schema().column(0).kind, ColumnKind::Categorical);
        assert_eq!(t.schema().column(1).kind, ColumnKind::Numerical);
        assert!(t.is_missing(1, 0));
        assert!(t.is_missing(2, 1));
        let csv = to_csv_string(&t);
        let t2 = read_csv_str(&csv).unwrap();
        assert_eq!(t, t2);
    }

    #[test]
    fn quoted_fields_with_commas_and_quotes() {
        let src = "name,v\n\"a,b\",1\n\"say \"\"hi\"\"\",2\n";
        let t = read_csv_str(src).unwrap();
        assert_eq!(t.display(0, 0), "a,b");
        assert_eq!(t.display(1, 0), "say \"hi\"");
        let back = to_csv_string(&t);
        let t2 = read_csv_str(&back).unwrap();
        assert_eq!(t, t2);
    }

    #[test]
    fn null_tokens_are_missing() {
        let src = "a\nNULL\nNA\n?\nok\n";
        let t = read_csv_str(src).unwrap();
        assert_eq!(t.n_missing(), 3);
        assert_eq!(t.get(3, 0), Value::Cat(0));
    }

    #[test]
    fn ragged_rows_are_rejected_with_line_number() {
        let e = read_csv_str("a,b\n1,2\n3\n").unwrap_err();
        assert_eq!(e.kind(), std::io::ErrorKind::InvalidData);
        let msg = e.to_string();
        assert!(msg.contains("line 3"), "missing line number: {msg}");
        assert!(msg.contains("1 fields"), "missing field count: {msg}");
    }

    #[test]
    fn empty_input_is_a_descriptive_error() {
        let e = read_csv_str("").unwrap_err();
        assert_eq!(e.kind(), std::io::ErrorKind::InvalidData);
        assert!(e.to_string().contains("header"));
    }

    #[test]
    fn invalid_utf8_is_a_descriptive_error() {
        // invalid in the header (line 1)
        let e = read_csv(&[0xFF, 0xFE, b'\n'][..]).unwrap_err();
        assert_eq!(e.kind(), std::io::ErrorKind::InvalidData);
        assert!(e.to_string().contains("line 1"));
        // invalid in a data row (line 2)
        let mut bytes = b"a,b\n".to_vec();
        bytes.extend_from_slice(&[b'x', 0x80, b',', b'1', b'\n']);
        let e = read_csv(&bytes[..]).unwrap_err();
        assert!(e.to_string().contains("line 2"), "{e}");
        assert!(e.to_string().contains("UTF-8"), "{e}");
    }

    #[test]
    fn duplicate_header_names_are_rejected_not_panicked() {
        let e = read_csv_str("a,a\n1,2\n").unwrap_err();
        assert_eq!(e.kind(), std::io::ErrorKind::InvalidData);
        assert!(e.to_string().contains("duplicate column name"));
    }

    #[test]
    fn header_only_input_yields_an_empty_table() {
        let t = read_csv_str("a,b\n").unwrap();
        assert_eq!(t.n_rows(), 0);
        assert_eq!(t.n_columns(), 2);
    }

    #[test]
    fn all_null_column_defaults_to_categorical() {
        let t = read_csv_str("a,b\n,1\n,2\n").unwrap();
        assert_eq!(t.schema().column(0).kind, ColumnKind::Categorical);
    }
}

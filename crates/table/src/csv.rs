//! Minimal CSV reading and writing for tables.
//!
//! Handles the subset of RFC 4180 the experiment files need: comma
//! separation, double-quote quoting with `""` escapes, and a configurable
//! set of tokens treated as missing (`""`, `NULL`, `NA`, `?`).

use std::io::{self, BufRead, Write};

use crate::schema::{ColumnKind, ColumnMeta, Schema};
use crate::table::Table;

/// Tokens interpreted as the missing-value sentinel when loading.
pub const NULL_TOKENS: [&str; 4] = ["", "NULL", "NA", "?"];

fn is_null_token(s: &str) -> bool {
    NULL_TOKENS.contains(&s)
}

/// Split one CSV line into fields, honoring double-quote quoting.
pub fn split_line(line: &str) -> Vec<String> {
    let mut fields = Vec::new();
    let mut field = String::new();
    let mut chars = line.chars().peekable();
    let mut quoted = false;
    while let Some(c) = chars.next() {
        if quoted {
            match c {
                '"' if chars.peek() == Some(&'"') => {
                    chars.next();
                    field.push('"');
                }
                '"' => quoted = false,
                c => field.push(c),
            }
        } else {
            match c {
                '"' => quoted = true,
                ',' => fields.push(std::mem::take(&mut field)),
                c => field.push(c),
            }
        }
    }
    fields.push(field);
    fields
}

fn quote_field(s: &str) -> String {
    if s.contains([',', '"', '\n']) {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

/// Read a table from CSV text with a header row, inferring column kinds:
/// a column is numerical when every non-null cell parses as `f64`,
/// categorical otherwise.
pub fn read_csv(reader: impl BufRead) -> io::Result<Table> {
    let mut lines = reader.lines();
    let header = lines
        .next()
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "empty CSV"))??;
    let names = split_line(&header);
    let mut rows: Vec<Vec<Option<String>>> = Vec::new();
    for line in lines {
        let line = line?;
        if line.is_empty() {
            continue;
        }
        let fields = split_line(&line);
        if fields.len() != names.len() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!(
                    "row has {} fields, header has {}",
                    fields.len(),
                    names.len()
                ),
            ));
        }
        rows.push(
            fields
                .into_iter()
                .map(|f| {
                    if is_null_token(f.trim()) {
                        None
                    } else {
                        Some(f)
                    }
                })
                .collect(),
        );
    }
    // Infer kinds.
    let kinds: Vec<ColumnKind> = (0..names.len())
        .map(|j| {
            let mut saw_value = false;
            let all_numeric = rows.iter().all(|r| match &r[j] {
                Some(s) => {
                    saw_value = true;
                    s.trim().parse::<f64>().is_ok()
                }
                None => true,
            });
            if all_numeric && saw_value {
                ColumnKind::Numerical
            } else {
                ColumnKind::Categorical
            }
        })
        .collect();
    let schema = Schema::new(
        names
            .into_iter()
            .zip(&kinds)
            .map(|(name, &kind)| ColumnMeta { name, kind })
            .collect(),
    );
    let mut table = Table::empty(schema);
    for row in &rows {
        let borrowed: Vec<Option<&str>> = row.iter().map(|c| c.as_deref()).collect();
        table.push_str_row(&borrowed);
    }
    Ok(table)
}

/// Parse a table directly from an in-memory CSV string.
pub fn read_csv_str(text: &str) -> io::Result<Table> {
    read_csv(text.as_bytes())
}

/// Write a table as CSV with a header row; `∅` cells become empty fields.
pub fn write_csv(table: &Table, mut writer: impl Write) -> io::Result<()> {
    let header: Vec<String> = table
        .schema()
        .columns()
        .iter()
        .map(|c| quote_field(&c.name))
        .collect();
    writeln!(writer, "{}", header.join(","))?;
    for i in 0..table.n_rows() {
        let row: Vec<String> = (0..table.n_columns())
            .map(|j| {
                if table.is_missing(i, j) {
                    String::new()
                } else {
                    quote_field(&table.display(i, j))
                }
            })
            .collect();
        writeln!(writer, "{}", row.join(","))?;
    }
    Ok(())
}

/// Render a table as a CSV string.
pub fn to_csv_string(table: &Table) -> String {
    let mut buf = Vec::new();
    write_csv(table, &mut buf).expect("writing to a Vec cannot fail");
    String::from_utf8(buf).expect("CSV output is UTF-8")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Value;

    #[test]
    fn roundtrip_preserves_content() {
        let src = "a,b\nx,1\n,2\ny,\n";
        let t = read_csv_str(src).unwrap();
        assert_eq!(t.n_rows(), 3);
        assert_eq!(t.schema().column(0).kind, ColumnKind::Categorical);
        assert_eq!(t.schema().column(1).kind, ColumnKind::Numerical);
        assert!(t.is_missing(1, 0));
        assert!(t.is_missing(2, 1));
        let csv = to_csv_string(&t);
        let t2 = read_csv_str(&csv).unwrap();
        assert_eq!(t, t2);
    }

    #[test]
    fn quoted_fields_with_commas_and_quotes() {
        let src = "name,v\n\"a,b\",1\n\"say \"\"hi\"\"\",2\n";
        let t = read_csv_str(src).unwrap();
        assert_eq!(t.display(0, 0), "a,b");
        assert_eq!(t.display(1, 0), "say \"hi\"");
        let back = to_csv_string(&t);
        let t2 = read_csv_str(&back).unwrap();
        assert_eq!(t, t2);
    }

    #[test]
    fn null_tokens_are_missing() {
        let src = "a\nNULL\nNA\n?\nok\n";
        let t = read_csv_str(src).unwrap();
        assert_eq!(t.n_missing(), 3);
        assert_eq!(t.get(3, 0), Value::Cat(0));
    }

    #[test]
    fn ragged_rows_are_rejected() {
        assert!(read_csv_str("a,b\n1\n").is_err());
    }

    #[test]
    fn all_null_column_defaults_to_categorical() {
        let t = read_csv_str("a,b\n,1\n,2\n").unwrap();
        assert_eq!(t.schema().column(0).kind, ColumnKind::Categorical);
    }
}

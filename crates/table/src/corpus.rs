//! Self-supervised training corpus construction (paper §3.3, Fig. 4).
//!
//! Every non-missing cell of the dirty table yields one training sample: a
//! copy of its tuple with that cell additionally masked, labeled with the
//! removed value. A tuple with `K` non-missing attributes thus produces `K`
//! samples, regardless of attribute-domain sizes. A 20 % split is held out
//! for validation-based early stopping.

use rand::seq::SliceRandom;
use rand::Rng;

use crate::table::Table;
use crate::value::Value;

/// One self-supervised training sample.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TrainingSample {
    /// Tuple index in the dirty table.
    pub row: usize,
    /// The attribute whose (known) value is masked and must be predicted.
    pub target_col: usize,
    /// The label: the masked value (never `Null`).
    pub label: Value,
}

/// The training corpus: samples grouped per target attribute, split into a
/// training and a validation part.
#[derive(Clone, Debug, Default)]
pub struct Corpus {
    /// Training samples for each attribute `A_j` (index = `j`).
    pub train: Vec<Vec<TrainingSample>>,
    /// Validation samples for each attribute.
    pub validation: Vec<Vec<TrainingSample>>,
}

impl Corpus {
    /// Build the corpus from a dirty table.
    ///
    /// `validation_fraction` of all samples (shuffled with `rng`) are held
    /// out; the paper uses 20 %.
    pub fn build(table: &Table, validation_fraction: f64, rng: &mut impl Rng) -> Self {
        assert!(
            (0.0..1.0).contains(&validation_fraction),
            "validation fraction must be in [0, 1)"
        );
        let mut all: Vec<TrainingSample> = Vec::new();
        for i in 0..table.n_rows() {
            for j in 0..table.n_columns() {
                let v = table.get(i, j);
                // A NaN/±inf observation cannot serve as a regression label:
                // its loss is non-finite from epoch 0 and would demote the
                // whole column, so such cells yield no training sample.
                let finite_label = v.as_num().is_none_or(f64::is_finite);
                if !v.is_null() && finite_label {
                    all.push(TrainingSample {
                        row: i,
                        target_col: j,
                        label: v,
                    });
                }
            }
        }
        all.shuffle(rng);
        let n_val = (all.len() as f64 * validation_fraction).round() as usize;
        let mut corpus = Corpus {
            train: vec![Vec::new(); table.n_columns()],
            validation: vec![Vec::new(); table.n_columns()],
        };
        for (k, sample) in all.into_iter().enumerate() {
            let bucket = if k < n_val {
                &mut corpus.validation[sample.target_col]
            } else {
                &mut corpus.train[sample.target_col]
            };
            bucket.push(sample);
        }
        corpus
    }

    /// Total number of training samples across attributes.
    pub fn n_train(&self) -> usize {
        self.train.iter().map(Vec::len).sum()
    }

    /// Total number of validation samples across attributes.
    pub fn n_validation(&self) -> usize {
        self.validation.iter().map(Vec::len).sum()
    }

    /// All validation samples, flattened.
    pub fn validation_flat(&self) -> impl Iterator<Item = &TrainingSample> {
        self.validation.iter().flatten()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{ColumnKind, Schema};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn movie_table() -> Table {
        // Mirrors the paper's Fig. 4 example: R1 has 1 null (K=3 usable in a
        // 4-col table? the figure uses 5 cols; here 4 cols, R1 has 3 known).
        let schema = Schema::from_pairs(&[
            ("year", ColumnKind::Categorical),
            ("country", ColumnKind::Categorical),
            ("title", ColumnKind::Categorical),
            ("director", ColumnKind::Categorical),
        ]);
        Table::from_rows(
            schema,
            &[
                vec![Some("2015"), None, Some("The Martian"), Some("R. Scott")],
                vec![None, Some("France"), Some("Amelie"), Some("J.P. Jeunet")],
            ],
        )
    }

    #[test]
    fn one_sample_per_non_missing_cell() {
        let t = movie_table();
        let c = Corpus::build(&t, 0.0, &mut StdRng::seed_from_u64(0));
        // R1 contributes 3 samples, R2 contributes 3 samples.
        assert_eq!(c.n_train(), 6);
        assert_eq!(c.n_validation(), 0);
        // Year task only gets R1's sample, country only R2's.
        assert_eq!(c.train[0].len(), 1);
        assert_eq!(c.train[1].len(), 1);
        assert_eq!(c.train[2].len(), 2);
        assert_eq!(c.train[3].len(), 2);
    }

    #[test]
    fn labels_are_the_masked_values() {
        let t = movie_table();
        let c = Corpus::build(&t, 0.0, &mut StdRng::seed_from_u64(0));
        for samples in &c.train {
            for s in samples {
                assert_eq!(s.label, t.get(s.row, s.target_col));
                assert!(!s.label.is_null());
            }
        }
    }

    #[test]
    fn validation_split_has_requested_size() {
        let schema = Schema::from_pairs(&[("a", ColumnKind::Categorical)]);
        let rows: Vec<Vec<Option<&str>>> = (0..100).map(|_| vec![Some("x")]).collect();
        let t = Table::from_rows(schema, &rows);
        let c = Corpus::build(&t, 0.2, &mut StdRng::seed_from_u64(0));
        assert_eq!(c.n_validation(), 20);
        assert_eq!(c.n_train(), 80);
    }

    #[test]
    fn split_is_deterministic_per_seed() {
        let t = movie_table();
        let a = Corpus::build(&t, 0.5, &mut StdRng::seed_from_u64(7));
        let b = Corpus::build(&t, 0.5, &mut StdRng::seed_from_u64(7));
        assert_eq!(a.train, b.train);
        assert_eq!(a.validation, b.validation);
    }
}

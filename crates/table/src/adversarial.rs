//! Deterministic adversarial table generators for the chaos harness.
//!
//! Each generator produces a small table that is hostile in one specific
//! way — all-missing columns, single rows, non-finite numerics, degenerate
//! dictionaries, pathological strings, 10k-distinct categorical domains.
//! The never-panic/always-impute contract says the pipeline must accept
//! every one of them: no panic, every missing cell filled (possibly from a
//! degraded ladder tier), typed errors for inputs that cannot even be
//! constructed (see [`malformed_csvs`]).
//!
//! Everything here is deterministic — no RNG, no clocks — so chaos runs are
//! bit-reproducible and failures replay exactly.

use crate::schema::{ColumnKind, Schema};
use crate::table::Table;

/// One adversarial input: a name for reporting, the hostile table, and what
/// makes it hostile.
pub struct Scenario {
    /// Short stable identifier (used in test output and `grimp chaos`).
    pub name: &'static str,
    /// What property of the input is adversarial.
    pub detail: &'static str,
    /// The table itself.
    pub table: Table,
}

/// A mixed-kind table where one categorical column has no observed value at
/// all — its dictionary is empty, so only the constant tier can fill it.
pub fn all_missing_categorical() -> Table {
    let schema = Schema::from_pairs(&[
        ("k", ColumnKind::Categorical),
        ("ghost", ColumnKind::Categorical),
    ]);
    let mut t = Table::empty(schema);
    for i in 0..12 {
        let k = format!("k{}", i % 3);
        t.push_str_row(&[Some(&k), None]);
    }
    t
}

/// A numerical column with no observed value — no mean exists, so only the
/// constant tier can fill it.
pub fn all_missing_numerical() -> Table {
    let schema = Schema::from_pairs(&[
        ("k", ColumnKind::Categorical),
        ("ghost_x", ColumnKind::Numerical),
    ]);
    let mut t = Table::empty(schema);
    for i in 0..12 {
        let k = format!("k{}", i % 3);
        t.push_str_row(&[Some(&k), None]);
    }
    t
}

/// A single-row table with a missing cell: no validation split is possible
/// and most columns have at most one observed value.
pub fn single_row() -> Table {
    let schema = Schema::from_pairs(&[
        ("a", ColumnKind::Categorical),
        ("b", ColumnKind::Categorical),
        ("x", ColumnKind::Numerical),
    ]);
    let mut t = Table::empty(schema);
    t.push_str_row(&[Some("only"), None, Some("1.5")]);
    t
}

/// A table with no rows at all: nothing to train on, nothing to impute.
pub fn zero_rows() -> Table {
    let schema =
        Schema::from_pairs(&[("a", ColumnKind::Categorical), ("x", ColumnKind::Numerical)]);
    Table::empty(schema)
}

/// Observed `NaN`, `+inf`, and `-inf` cells sharing a numerical column with
/// honest values and missing cells. The non-finite observations must not
/// poison the column statistics or the training loss.
pub fn nan_inf_numerics() -> Table {
    let schema =
        Schema::from_pairs(&[("k", ColumnKind::Categorical), ("x", ColumnKind::Numerical)]);
    let mut t = Table::empty(schema);
    let xs = [
        Some("NaN"),
        Some("inf"),
        Some("-inf"),
        Some("1.0"),
        Some("2.0"),
        None,
        Some("3.0"),
        None,
        Some("4.0"),
        Some("NaN"),
        Some("5.0"),
        None,
    ];
    for (i, x) in xs.iter().enumerate() {
        let k = format!("k{}", i % 3);
        t.push_str_row(&[Some(&k), *x]);
    }
    t
}

/// Unicode and control-character categorical values: NULs, newlines, tabs,
/// combining marks, RTL text, emoji, and the empty string (which the CSV
/// layer would treat as null, but the table layer must carry verbatim).
pub fn hostile_strings() -> Table {
    let schema = Schema::from_pairs(&[
        ("s", ColumnKind::Categorical),
        ("t", ColumnKind::Categorical),
    ]);
    let values: [&str; 8] = [
        "plain",
        "with\nnewline",
        "with\ttab",
        "nul\0byte",
        "e\u{301}combining",
        "\u{202e}rtl-override",
        "🦀🧨",
        "",
    ];
    let mut t = Table::empty(schema);
    for (i, v) in values.iter().enumerate() {
        let other = if i % 3 == 0 { None } else { Some("anchor") };
        t.push_str_row(&[Some(v), other]);
    }
    // A second pass so every hostile value is observed at least twice.
    for v in values.iter() {
        t.push_str_row(&[Some(v), None]);
    }
    t
}

/// A categorical column with `n_distinct` unique observed values (a key in
/// all but name) next to a low-cardinality column with missing cells.
/// Stresses dictionary size, task-head width, and softmax batches.
pub fn high_cardinality(n_distinct: usize) -> Table {
    let schema = Schema::from_pairs(&[
        ("id", ColumnKind::Categorical),
        ("group", ColumnKind::Categorical),
    ]);
    let mut t = Table::empty(schema);
    for i in 0..n_distinct {
        let id = format!("v{i}");
        let group = format!("g{}", i % 3);
        let id_cell = if i % 101 == 0 {
            None
        } else {
            Some(id.as_str())
        };
        let group_cell = if i % 7 == 0 {
            None
        } else {
            Some(group.as_str())
        };
        t.push_str_row(&[id_cell, group_cell]);
    }
    t
}

/// A column where every observed value is identical (cardinality 1): the
/// classifier has a single class, so the baseline tier is strictly better.
pub fn single_distinct_column() -> Table {
    let schema = Schema::from_pairs(&[
        ("constant", ColumnKind::Categorical),
        ("v", ColumnKind::Categorical),
    ]);
    let mut t = Table::empty(schema);
    for i in 0..12 {
        let c = if i % 4 == 0 { None } else { Some("const") };
        let v = format!("v{}", i % 3);
        t.push_str_row(&[c, Some(&v)]);
    }
    t
}

/// Every adversarial scenario, in a stable order. `high_cardinality` is
/// instantiated at 2 000 distinct values here to keep the suite fast; the
/// dedicated chaos test also runs the full 10 000.
pub fn scenarios() -> Vec<Scenario> {
    vec![
        Scenario {
            name: "all_missing_categorical",
            detail: "categorical column with zero observed values",
            table: all_missing_categorical(),
        },
        Scenario {
            name: "all_missing_numerical",
            detail: "numerical column with zero observed values",
            table: all_missing_numerical(),
        },
        Scenario {
            name: "single_row",
            detail: "one row, one missing cell, no validation split",
            table: single_row(),
        },
        Scenario {
            name: "zero_rows",
            detail: "schema with no rows",
            table: zero_rows(),
        },
        Scenario {
            name: "nan_inf_numerics",
            detail: "observed NaN/+inf/-inf cells in a numerical column",
            table: nan_inf_numerics(),
        },
        Scenario {
            name: "hostile_strings",
            detail: "control chars, NULs, RTL overrides, emoji, empty string",
            table: hostile_strings(),
        },
        Scenario {
            name: "high_cardinality",
            detail: "2000-distinct categorical column",
            table: high_cardinality(2000),
        },
        Scenario {
            name: "single_distinct_column",
            detail: "cardinality-1 column (single observed value)",
            table: single_distinct_column(),
        },
    ]
}

/// CSV inputs that must be *rejected* with a typed error — never a panic
/// and never a silently mangled table.
pub fn malformed_csvs() -> Vec<(&'static str, &'static str)> {
    vec![
        ("duplicate_headers", "a,a\n1,2\n"),
        ("ragged_row", "a,b\n1\n"),
        ("row_too_wide", "a,b\n1,2,3\n"),
        ("empty_input", ""),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generators_are_deterministic() {
        // Cell-by-cell display comparison: `Table` equality uses `f64 ==`,
        // which would report the (deliberate) NaN cells as unequal.
        for (a, b) in scenarios().iter().zip(scenarios().iter()) {
            assert_eq!(a.name, b.name);
            assert_eq!(a.table.schema(), b.table.schema(), "{}", a.name);
            assert_eq!(a.table.n_rows(), b.table.n_rows(), "{}", a.name);
            for i in 0..a.table.n_rows() {
                for j in 0..a.table.n_columns() {
                    assert_eq!(
                        a.table.is_missing(i, j),
                        b.table.is_missing(i, j),
                        "{} cell ({i},{j})",
                        a.name
                    );
                    assert_eq!(
                        a.table.display(i, j),
                        b.table.display(i, j),
                        "{} not deterministic at ({i},{j})",
                        a.name
                    );
                }
            }
        }
    }

    #[test]
    fn scenarios_are_hostile_in_the_advertised_way() {
        let t = all_missing_categorical();
        assert!(t.dictionary(1).is_empty());
        assert_eq!(t.column(1).n_missing(), t.n_rows());

        let t = single_row();
        assert_eq!(t.n_rows(), 1);
        assert!(t.missing_cells().len() == 1);

        let t = nan_inf_numerics();
        let observed: Vec<f64> = (0..t.n_rows())
            .filter_map(|i| t.get(i, 1).as_num())
            .collect();
        assert!(observed.iter().any(|v| v.is_nan()));
        assert!(observed.iter().any(|v| v.is_infinite()));

        let t = high_cardinality(500);
        assert!(t.column(0).n_distinct() > 400);

        let t = single_distinct_column();
        assert_eq!(t.column(0).n_distinct(), 1);
    }

    #[test]
    fn malformed_csvs_are_rejected_by_the_reader() {
        for (name, text) in malformed_csvs() {
            let r = crate::csv::read_csv_str(text);
            assert!(r.is_err(), "{name} should not parse");
        }
    }
}

//! # grimp-table
//!
//! The relational substrate of the GRIMP reproduction: mixed-type
//! (categorical + numerical) column-oriented tables with the `∅`
//! missing-value sentinel, plus everything the paper's pipeline needs
//! around them:
//!
//! - [`Schema`] / [`Table`] / [`Value`] — the data model of §2;
//! - [`csv`] — loading/saving the experiment files;
//! - [`Normalizer`] — z-score normalization of numerical attributes (§3.2);
//! - [`corrupt`] — MCAR missingness injection and typo noise (§4.1–4.2);
//! - [`Corpus`] — the self-supervised training corpus of §3.3 (Fig. 4);
//! - [`FunctionalDependency`] / [`FdSet`] — the external information of §4.3;
//! - [`Imputer`] — the trait every algorithm (GRIMP and all baselines)
//!   implements.

#![warn(missing_docs)]
#![cfg_attr(not(test), warn(clippy::unwrap_used))]

pub mod adversarial;
pub mod corpus;
pub mod corrupt;
pub mod csv;
pub mod error;
pub mod fd;
pub mod imputer;
pub mod normalize;
pub mod schema;
pub mod table;
pub mod value;

pub use corpus::{Corpus, TrainingSample};
pub use corrupt::{
    inject_mar, inject_mcar, inject_mnar, inject_typos, CorruptionLog, InjectedCell,
};
pub use error::TableError;
pub use fd::{FdSet, FunctionalDependency};
pub use imputer::{check_imputation_contract, Imputer};
pub use normalize::Normalizer;
pub use schema::{ColumnKind, ColumnMeta, Schema};
pub use table::{Column, Table};
pub use value::Value;

//! Column-oriented mixed-type tables with missing values.

use std::collections::HashMap;

use crate::error::TableError;
use crate::schema::{ColumnKind, Schema};
use crate::value::Value;

/// Storage for one attribute.
#[derive(Clone, Debug, PartialEq)]
pub enum Column {
    /// Dictionary-encoded categorical data; `None` is the `∅` sentinel.
    Categorical {
        /// Distinct values in first-seen order; codes index into this.
        dict: Vec<String>,
        /// Per-row dictionary codes.
        codes: Vec<Option<u32>>,
    },
    /// Real-valued data; `None` is the `∅` sentinel.
    Numerical {
        /// Per-row values.
        values: Vec<Option<f64>>,
    },
}

impl Column {
    /// Number of rows stored.
    pub fn len(&self) -> usize {
        match self {
            Column::Categorical { codes, .. } => codes.len(),
            Column::Numerical { values } => values.len(),
        }
    }

    /// True when the column holds no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of `∅` entries.
    pub fn n_missing(&self) -> usize {
        match self {
            Column::Categorical { codes, .. } => codes.iter().filter(|c| c.is_none()).count(),
            Column::Numerical { values } => values.iter().filter(|v| v.is_none()).count(),
        }
    }

    /// Number of distinct non-null values.
    pub fn n_distinct(&self) -> usize {
        match self {
            Column::Categorical { dict, codes } => {
                let mut seen = vec![false; dict.len()];
                for c in codes.iter().flatten() {
                    seen[*c as usize] = true;
                }
                seen.iter().filter(|&&s| s).count()
            }
            Column::Numerical { values } => {
                let mut v: Vec<u64> = values.iter().flatten().map(|x| x.to_bits()).collect();
                v.sort_unstable();
                v.dedup();
                v.len()
            }
        }
    }
}

/// A mixed-type relational table `D` with missing values.
#[derive(Clone, Debug, PartialEq)]
pub struct Table {
    schema: Schema,
    columns: Vec<Column>,
    n_rows: usize,
}

impl Table {
    /// An empty table with the given schema.
    pub fn empty(schema: Schema) -> Self {
        let columns = schema
            .columns()
            .iter()
            .map(|c| match c.kind {
                ColumnKind::Categorical => Column::Categorical {
                    dict: Vec::new(),
                    codes: Vec::new(),
                },
                ColumnKind::Numerical => Column::Numerical { values: Vec::new() },
            })
            .collect();
        Table {
            schema,
            columns,
            n_rows: 0,
        }
    }

    /// Build a table from string rows; `None` entries are missing. Numerical
    /// cells are parsed as `f64`.
    ///
    /// # Panics
    /// Panics on ragged rows or unparseable numerical cells.
    pub fn from_rows(schema: Schema, rows: &[Vec<Option<&str>>]) -> Self {
        let mut table = Table::empty(schema);
        for row in rows {
            table.push_str_row(row);
        }
        table
    }

    /// Append one row given as strings.
    ///
    /// # Panics
    /// Panics on ragged rows or unparseable numerical cells; use
    /// [`Table::try_push_str_row`] when the row comes from untrusted input.
    pub fn push_str_row(&mut self, row: &[Option<&str>]) {
        self.try_push_str_row(row)
            .unwrap_or_else(|e| panic!("push_str_row: {e}"));
    }

    /// Append one row given as strings, reporting malformed input as an
    /// error. On `Err` the table is unchanged.
    pub fn try_push_str_row(&mut self, row: &[Option<&str>]) -> Result<(), TableError> {
        if row.len() != self.schema.n_columns() {
            return Err(TableError::RaggedRow {
                expected: self.schema.n_columns(),
                got: row.len(),
            });
        }
        // Validate every numerical cell before mutating anything so a failed
        // push cannot leave the table with a half-written row.
        let mut parsed: Vec<Option<f64>> = Vec::new();
        for (j, (col, cell)) in self.columns.iter().zip(row).enumerate() {
            if let (Column::Numerical { .. }, Some(s)) = (col, cell) {
                match s.trim().parse::<f64>() {
                    Ok(v) => parsed.push(Some(v)),
                    Err(_) => {
                        return Err(TableError::NotNumeric {
                            column: j,
                            cell: (*s).to_string(),
                        })
                    }
                }
            } else {
                parsed.push(None);
            }
        }
        for ((col, cell), pre) in self.columns.iter_mut().zip(row).zip(parsed) {
            match col {
                Column::Categorical { dict, codes } => match cell {
                    Some(s) => {
                        let code = match dict.iter().position(|d| d == s) {
                            Some(i) => i as u32,
                            None => {
                                dict.push((*s).to_string());
                                (dict.len() - 1) as u32
                            }
                        };
                        codes.push(Some(code));
                    }
                    None => codes.push(None),
                },
                Column::Numerical { values } => values.push(pre),
            }
        }
        self.n_rows += 1;
        Ok(())
    }

    /// Append one row of [`Value`]s. Categorical codes must be valid for the
    /// column's dictionary.
    ///
    /// # Panics
    /// Panics on ragged rows, kind mismatches, or out-of-dictionary codes;
    /// use [`Table::try_push_value_row`] for untrusted input.
    pub fn push_value_row(&mut self, row: &[Value]) {
        self.try_push_value_row(row)
            .unwrap_or_else(|e| panic!("push_value_row: {e}"));
    }

    /// Append one row of [`Value`]s, reporting malformed input as an error.
    /// On `Err` the table is unchanged.
    pub fn try_push_value_row(&mut self, row: &[Value]) -> Result<(), TableError> {
        if row.len() != self.schema.n_columns() {
            return Err(TableError::RaggedRow {
                expected: self.schema.n_columns(),
                got: row.len(),
            });
        }
        for (j, (col, cell)) in self.columns.iter().zip(row).enumerate() {
            check_cell(col, *cell, j)?;
        }
        for (col, cell) in self.columns.iter_mut().zip(row) {
            match (col, cell) {
                (Column::Categorical { codes, .. }, Value::Cat(c)) => codes.push(Some(*c)),
                (Column::Categorical { codes, .. }, Value::Null) => codes.push(None),
                (Column::Numerical { values }, Value::Num(v)) => values.push(Some(*v)),
                (Column::Numerical { values }, Value::Null) => values.push(None),
                _ => unreachable!("check_cell validated every (column, value) pair"),
            }
        }
        self.n_rows += 1;
        Ok(())
    }

    /// The table's schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of rows `n`.
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// Number of attributes `m`.
    pub fn n_columns(&self) -> usize {
        self.schema.n_columns()
    }

    /// Raw column storage for attribute `j`.
    pub fn column(&self, j: usize) -> &Column {
        &self.columns[j]
    }

    /// Cell value `t_i[A_j]`.
    pub fn get(&self, i: usize, j: usize) -> Value {
        match &self.columns[j] {
            Column::Categorical { codes, .. } => match codes[i] {
                Some(c) => Value::Cat(c),
                None => Value::Null,
            },
            Column::Numerical { values } => match values[i] {
                Some(v) => Value::Num(v),
                None => Value::Null,
            },
        }
    }

    /// Overwrite cell `t_i[A_j]`.
    ///
    /// # Panics
    /// Panics when the value kind does not match the column kind or a
    /// categorical code is outside the dictionary; use [`Table::try_set`]
    /// for untrusted input.
    pub fn set(&mut self, i: usize, j: usize, v: Value) {
        self.try_set(i, j, v).unwrap_or_else(|e| panic!("set: {e}"));
    }

    /// Overwrite cell `t_i[A_j]`, reporting kind mismatches and
    /// out-of-dictionary codes as errors. On `Err` the table is unchanged.
    pub fn try_set(&mut self, i: usize, j: usize, v: Value) -> Result<(), TableError> {
        check_cell(&self.columns[j], v, j)?;
        match (&mut self.columns[j], v) {
            (Column::Categorical { codes, .. }, Value::Cat(c)) => codes[i] = Some(c),
            (Column::Categorical { codes, .. }, Value::Null) => codes[i] = None,
            (Column::Numerical { values }, Value::Num(x)) => values[i] = Some(x),
            (Column::Numerical { values }, Value::Null) => values[i] = None,
            _ => unreachable!("check_cell validated the (column, value) pair"),
        }
        Ok(())
    }

    /// True when `t_i[A_j] = ∅`.
    pub fn is_missing(&self, i: usize, j: usize) -> bool {
        self.get(i, j).is_null()
    }

    /// A copy of the first `n` rows (all of them when `n >= n_rows`).
    /// Categorical dictionaries are kept whole — codes referencing values
    /// only seen in dropped rows simply go unused — so the prefix of a
    /// concatenated table has dictionaries compatible with the original.
    pub fn head(&self, n: usize) -> Table {
        let n = n.min(self.n_rows);
        let columns = self
            .columns
            .iter()
            .map(|col| match col {
                Column::Categorical { dict, codes } => Column::Categorical {
                    dict: dict.clone(),
                    codes: codes[..n].to_vec(),
                },
                Column::Numerical { values } => Column::Numerical {
                    values: values[..n].to_vec(),
                },
            })
            .collect();
        Table {
            schema: self.schema.clone(),
            columns,
            n_rows: n,
        }
    }

    /// Human-readable rendering of a cell (dictionary-decoded).
    pub fn display(&self, i: usize, j: usize) -> String {
        match self.get(i, j) {
            Value::Null => "∅".to_string(),
            Value::Cat(c) => match &self.columns[j] {
                Column::Categorical { dict, .. } => dict[c as usize].clone(),
                _ => unreachable!("invariant: Value::Cat only stored in categorical columns"),
            },
            Value::Num(v) => format!("{v}"),
        }
    }

    /// Dictionary of a categorical column.
    ///
    /// # Panics
    /// Panics for numerical columns.
    pub fn dictionary(&self, j: usize) -> &[String] {
        match &self.columns[j] {
            Column::Categorical { dict, .. } => dict,
            _ => panic!(
                "invariant: dictionary() requires a categorical column, column {j} is numerical"
            ),
        }
    }

    /// Register (or find) a dictionary entry in a categorical column and
    /// return its code, without touching any rows.
    pub fn intern(&mut self, j: usize, s: &str) -> u32 {
        match &mut self.columns[j] {
            Column::Categorical { dict, .. } => match dict.iter().position(|d| d == s) {
                Some(i) => i as u32,
                None => {
                    dict.push(s.to_string());
                    (dict.len() - 1) as u32
                }
            },
            _ => {
                panic!("invariant: intern() requires a categorical column, column {j} is numerical")
            }
        }
    }

    /// Cardinality of `Dom(A_j)`: dictionary size for categorical columns,
    /// distinct non-null values for numerical columns.
    pub fn domain_size(&self, j: usize) -> usize {
        match &self.columns[j] {
            Column::Categorical { dict, .. } => dict.len(),
            c @ Column::Numerical { .. } => c.n_distinct(),
        }
    }

    /// Total number of `∅` cells.
    pub fn n_missing(&self) -> usize {
        self.columns.iter().map(Column::n_missing).sum()
    }

    /// Fraction of cells that are `∅`.
    pub fn missing_fraction(&self) -> f64 {
        let cells = self.n_rows * self.n_columns();
        if cells == 0 {
            0.0
        } else {
            self.n_missing() as f64 / cells as f64
        }
    }

    /// Number of distinct non-null values over the whole table (the
    /// "Distinct" column of the paper's Table 1).
    pub fn n_distinct_total(&self) -> usize {
        self.columns.iter().map(Column::n_distinct).sum()
    }

    /// Frequency of each dictionary code among non-null cells of a
    /// categorical column.
    pub fn category_counts(&self, j: usize) -> Vec<usize> {
        match &self.columns[j] {
            Column::Categorical { dict, codes } => {
                let mut counts = vec![0usize; dict.len()];
                for c in codes.iter().flatten() {
                    counts[*c as usize] += 1;
                }
                counts
            }
            _ => panic!(
                "invariant: category_counts() requires a categorical column, column {j} is numerical"
            ),
        }
    }

    /// Most frequent dictionary code of a categorical column (ties broken by
    /// lowest code), or `None` if every cell is null.
    pub fn mode(&self, j: usize) -> Option<u32> {
        let counts = self.category_counts(j);
        counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .max_by(|a, b| a.1.cmp(b.1).then(b.0.cmp(&a.0)))
            .map(|(i, _)| i as u32)
    }

    /// Mean of the non-null *finite* values of a numerical column, or
    /// `None` if no such value exists (all null, or all NaN/±inf).
    pub fn mean(&self, j: usize) -> Option<f64> {
        match &self.columns[j] {
            Column::Numerical { values } => {
                let (sum, n) = values
                    .iter()
                    .flatten()
                    .filter(|v| v.is_finite())
                    .fold((0.0, 0usize), |(s, n), &v| (s + v, n + 1));
                (n > 0).then(|| sum / n as f64)
            }
            _ => panic!("invariant: mean() requires a numerical column, column {j} is categorical"),
        }
    }

    /// Positions `(i, j)` of every `∅` cell.
    pub fn missing_cells(&self) -> Vec<(usize, usize)> {
        let mut out = Vec::new();
        for j in 0..self.n_columns() {
            for i in 0..self.n_rows {
                if self.is_missing(i, j) {
                    out.push((i, j));
                }
            }
        }
        out
    }

    /// Group rows by their (non-null) values on `cols`; rows with a null in
    /// any of `cols` are skipped. Used by FD-based repair.
    pub fn group_rows_by(&self, cols: &[usize]) -> HashMap<Vec<u64>, Vec<usize>> {
        let mut groups: HashMap<Vec<u64>, Vec<usize>> = HashMap::new();
        'rows: for i in 0..self.n_rows {
            let mut key = Vec::with_capacity(cols.len());
            for &j in cols {
                match self.get(i, j) {
                    Value::Null => continue 'rows,
                    Value::Cat(c) => key.push(u64::from(c)),
                    Value::Num(v) => key.push(v.to_bits()),
                }
            }
            groups.entry(key).or_default().push(i);
        }
        groups
    }
}

/// Validate that `v` can be stored in column `j` with storage `col`.
fn check_cell(col: &Column, v: Value, j: usize) -> Result<(), TableError> {
    match (col, v) {
        (Column::Categorical { dict, .. }, Value::Cat(c)) => {
            if (c as usize) < dict.len() {
                Ok(())
            } else {
                Err(TableError::CodeOutOfDictionary {
                    column: j,
                    code: c,
                    dict_len: dict.len(),
                })
            }
        }
        (Column::Categorical { .. } | Column::Numerical { .. }, Value::Null)
        | (Column::Numerical { .. }, Value::Num(_)) => Ok(()),
        (col, v) => Err(TableError::KindMismatch {
            column: j,
            kind: match col {
                Column::Categorical { .. } => ColumnKind::Categorical,
                Column::Numerical { .. } => ColumnKind::Numerical,
            },
            value: format!("{v:?}"),
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        let schema = Schema::from_pairs(&[
            ("country", ColumnKind::Categorical),
            ("year", ColumnKind::Numerical),
        ]);
        Table::from_rows(
            schema,
            &[
                vec![Some("FR"), Some("2015")],
                vec![None, Some("2014")],
                vec![Some("FR"), None],
                vec![Some("IT"), Some("2015")],
            ],
        )
    }

    #[test]
    fn construction_and_accessors() {
        let t = sample();
        assert_eq!(t.n_rows(), 4);
        assert_eq!(t.n_columns(), 2);
        assert_eq!(t.get(0, 0), Value::Cat(0));
        assert_eq!(t.get(1, 0), Value::Null);
        assert_eq!(t.get(0, 1), Value::Num(2015.0));
        assert_eq!(t.display(3, 0), "IT");
        assert_eq!(t.display(1, 0), "∅");
    }

    #[test]
    fn missing_accounting() {
        let t = sample();
        assert_eq!(t.n_missing(), 2);
        assert_eq!(t.missing_cells(), vec![(1, 0), (2, 1)]);
        assert!((t.missing_fraction() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn distinct_and_domain() {
        let t = sample();
        assert_eq!(t.domain_size(0), 2); // FR, IT
        assert_eq!(t.domain_size(1), 2); // 2015, 2014
        assert_eq!(t.n_distinct_total(), 4);
    }

    #[test]
    fn set_and_get_roundtrip() {
        let mut t = sample();
        t.set(1, 0, Value::Cat(1));
        assert_eq!(t.display(1, 0), "IT");
        t.set(2, 1, Value::Num(2020.0));
        assert_eq!(t.get(2, 1), Value::Num(2020.0));
        t.set(0, 0, Value::Null);
        assert!(t.is_missing(0, 0));
    }

    #[test]
    #[should_panic(expected = "does not match column")]
    fn set_rejects_kind_mismatch() {
        let mut t = sample();
        t.set(0, 0, Value::Num(1.0));
    }

    #[test]
    fn mode_and_mean() {
        let t = sample();
        assert_eq!(t.mode(0), Some(0)); // FR appears twice
        let mean = t.mean(1).unwrap();
        assert!((mean - (2015.0 + 2014.0 + 2015.0) / 3.0).abs() < 1e-9);
    }

    #[test]
    fn group_rows_skips_nulls() {
        let t = sample();
        let groups = t.group_rows_by(&[0]);
        assert_eq!(groups.len(), 2);
        assert_eq!(groups[&vec![0u64]], vec![0, 2]);
        assert_eq!(groups[&vec![1u64]], vec![3]);
    }

    #[test]
    fn intern_reuses_existing_codes() {
        let mut t = sample();
        assert_eq!(t.intern(0, "FR"), 0);
        assert_eq!(t.intern(0, "DE"), 2);
        assert_eq!(t.dictionary(0), &["FR", "IT", "DE"]);
    }

    #[test]
    fn category_counts_ignore_nulls() {
        let t = sample();
        assert_eq!(t.category_counts(0), vec![2, 1]);
    }

    #[test]
    fn try_push_str_row_rejects_ragged_and_non_numeric() {
        let mut t = sample();
        let before = t.clone();
        let e = t.try_push_str_row(&[Some("FR")]).unwrap_err();
        assert_eq!(
            e,
            TableError::RaggedRow {
                expected: 2,
                got: 1
            }
        );
        let e = t
            .try_push_str_row(&[Some("FR"), Some("not-a-year")])
            .unwrap_err();
        assert!(matches!(e, TableError::NotNumeric { column: 1, .. }));
        // failed pushes must leave the table untouched, including dictionaries
        assert_eq!(t, before);
        t.try_push_str_row(&[Some("DE"), Some("1999")]).unwrap();
        assert_eq!(t.n_rows(), 5);
        assert_eq!(t.display(4, 0), "DE");
    }

    #[test]
    fn try_push_value_row_rejects_bad_codes_and_kinds() {
        let mut t = sample();
        let before = t.clone();
        let e = t
            .try_push_value_row(&[Value::Cat(99), Value::Num(1.0)])
            .unwrap_err();
        assert!(matches!(
            e,
            TableError::CodeOutOfDictionary { code: 99, .. }
        ));
        let e = t
            .try_push_value_row(&[Value::Num(1.0), Value::Num(1.0)])
            .unwrap_err();
        assert!(matches!(e, TableError::KindMismatch { column: 0, .. }));
        assert_eq!(t, before);
        t.try_push_value_row(&[Value::Cat(1), Value::Null]).unwrap();
        assert_eq!(t.display(4, 0), "IT");
    }

    #[test]
    fn try_set_reports_instead_of_panicking() {
        let mut t = sample();
        let e = t.try_set(0, 0, Value::Num(1.0)).unwrap_err();
        assert!(e.to_string().contains("does not match column"));
        let e = t.try_set(0, 0, Value::Cat(7)).unwrap_err();
        assert!(matches!(e, TableError::CodeOutOfDictionary { .. }));
        assert_eq!(t.get(0, 0), Value::Cat(0));
        t.try_set(0, 0, Value::Cat(1)).unwrap();
        assert_eq!(t.display(0, 0), "IT");
    }
}

//! The common interface every imputation algorithm implements.

use crate::table::Table;
use crate::value::Value;

/// An imputation algorithm `A`: given a dirty table `D` it produces the
/// imputed table `D̃` in which every `∅` cell is replaced by a value from the
/// corresponding attribute domain.
///
/// Implementations must not alter non-missing cells.
pub trait Imputer {
    /// Human-readable algorithm name used in experiment output.
    fn name(&self) -> &str;

    /// Impute all missing values of `dirty`, returning the filled table.
    fn impute(&mut self, dirty: &Table) -> Table;
}

/// Assert the contract that `imputed` only differs from `dirty` at cells
/// that were missing, and that no missing cells remain. Used in tests and
/// debug builds of the experiment harness.
pub fn check_imputation_contract(dirty: &Table, imputed: &Table) -> Result<(), String> {
    if dirty.n_rows() != imputed.n_rows() || dirty.n_columns() != imputed.n_columns() {
        return Err("imputed table has different dimensions".to_string());
    }
    for i in 0..dirty.n_rows() {
        for j in 0..dirty.n_columns() {
            let before = dirty.get(i, j);
            let after = imputed.get(i, j);
            if before.is_null() {
                if after.is_null() {
                    return Err(format!("cell ({i}, {j}) left missing"));
                }
            } else if !values_identical(&before, &after) {
                return Err(format!(
                    "non-missing cell ({i}, {j}) changed from {before:?} to {after:?}"
                ));
            }
        }
    }
    Ok(())
}

/// Cell identity for the contract check: numericals compare by bit pattern
/// so an untouched `NaN` observation counts as unchanged (`NaN != NaN`
/// under `PartialEq` would misreport it as modified).
fn values_identical(a: &Value, b: &Value) -> bool {
    match (a, b) {
        (Value::Num(x), Value::Num(y)) => x.to_bits() == y.to_bits(),
        _ => a == b,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{ColumnKind, Schema};
    use crate::value::Value;

    fn tables() -> (Table, Table) {
        let schema = Schema::from_pairs(&[("a", ColumnKind::Categorical)]);
        let dirty = Table::from_rows(schema, &[vec![Some("x")], vec![None]]);
        let mut imputed = dirty.clone();
        imputed.set(1, 0, Value::Cat(0));
        (dirty, imputed)
    }

    #[test]
    fn contract_accepts_valid_imputation() {
        let (dirty, imputed) = tables();
        assert!(check_imputation_contract(&dirty, &imputed).is_ok());
    }

    #[test]
    fn contract_rejects_remaining_nulls() {
        let (dirty, _) = tables();
        let err = check_imputation_contract(&dirty, &dirty).unwrap_err();
        assert!(err.contains("left missing"));
    }

    #[test]
    fn contract_rejects_changed_known_cells() {
        let (dirty, mut imputed) = tables();
        let code = imputed.intern(0, "y");
        imputed.set(0, 0, Value::Cat(code));
        assert!(check_imputation_contract(&dirty, &imputed).is_err());
    }
}

//! Z-score normalization of numerical attributes.
//!
//! The paper normalizes numerical values before training "so that their MSE
//! is comparable in magnitude to the Cross Entropy loss" and de-normalizes
//! imputed values before measuring accuracy (§3.2, §3.6).

use crate::schema::ColumnKind;
use crate::table::Table;
use crate::value::Value;

/// Per-column mean/std recorded when normalizing, used to invert.
#[derive(Clone, Debug, PartialEq)]
pub struct Normalizer {
    /// `(mean, std)` per column; `None` for categorical columns.
    stats: Vec<Option<(f64, f64)>>,
}

impl Normalizer {
    /// Compute normalization statistics from the non-null values of every
    /// numerical column. Columns with zero variance get `std = 1` so they
    /// normalize to zero rather than NaN.
    pub fn fit(table: &Table) -> Self {
        let stats = (0..table.n_columns())
            .map(|j| match table.schema().column(j).kind {
                ColumnKind::Categorical => None,
                ColumnKind::Numerical => {
                    // Non-finite observations (a single NaN or ±inf cell)
                    // would poison the mean/std for the whole column, so
                    // they are excluded from the statistics.
                    let vals: Vec<f64> = (0..table.n_rows())
                        .filter_map(|i| table.get(i, j).as_num())
                        .filter(|v| v.is_finite())
                        .collect();
                    if vals.is_empty() {
                        return Some((0.0, 1.0));
                    }
                    let mean = vals.iter().sum::<f64>() / vals.len() as f64;
                    let var = vals.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>()
                        / vals.len() as f64;
                    let std = if var > 0.0 && var.is_finite() {
                        var.sqrt()
                    } else {
                        1.0
                    };
                    if !mean.is_finite() {
                        // Finite values whose *sum* overflows to inf.
                        return Some((0.0, 1.0));
                    }
                    Some((mean, std))
                }
            })
            .collect();
        Normalizer { stats }
    }

    /// Normalize a raw value of column `j`.
    pub fn forward(&self, j: usize, v: f64) -> f64 {
        let (mean, std) =
            self.stats[j].expect("invariant: forward() is only called for numerical columns");
        (v - mean) / std
    }

    /// De-normalize a model output of column `j`.
    pub fn inverse(&self, j: usize, z: f64) -> f64 {
        let (mean, std) =
            self.stats[j].expect("invariant: inverse() is only called for numerical columns");
        z * std + mean
    }

    /// Apply normalization to every numerical cell in place.
    pub fn apply(&self, table: &mut Table) {
        for j in 0..table.n_columns() {
            if self.stats[j].is_none() {
                continue;
            }
            for i in 0..table.n_rows() {
                if let Value::Num(v) = table.get(i, j) {
                    table.set(i, j, Value::Num(self.forward(j, v)));
                }
            }
        }
    }

    /// Invert normalization on every numerical cell in place.
    pub fn unapply(&self, table: &mut Table) {
        for j in 0..table.n_columns() {
            if self.stats[j].is_none() {
                continue;
            }
            for i in 0..table.n_rows() {
                if let Value::Num(v) = table.get(i, j) {
                    table.set(i, j, Value::Num(self.inverse(j, v)));
                }
            }
        }
    }

    /// The `(mean, std)` recorded for column `j`, if numerical.
    pub fn column_stats(&self, j: usize) -> Option<(f64, f64)> {
        self.stats[j]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Schema;

    fn numeric_table(vals: &[Option<f64>]) -> Table {
        let schema = Schema::from_pairs(&[("x", ColumnKind::Numerical)]);
        let mut t = Table::empty(schema);
        for v in vals {
            match v {
                Some(v) => t.push_value_row(&[Value::Num(*v)]),
                None => t.push_value_row(&[Value::Null]),
            }
        }
        t
    }

    #[test]
    fn normalized_column_has_zero_mean_unit_std() {
        let mut t = numeric_table(&[Some(1.0), Some(2.0), Some(3.0), Some(4.0)]);
        let norm = Normalizer::fit(&t);
        norm.apply(&mut t);
        let vals: Vec<f64> = (0..4).map(|i| t.get(i, 0).as_num().unwrap()).collect();
        let mean: f64 = vals.iter().sum::<f64>() / 4.0;
        let var: f64 = vals.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / 4.0;
        assert!(mean.abs() < 1e-12);
        assert!((var - 1.0).abs() < 1e-12);
    }

    #[test]
    fn apply_then_unapply_is_identity() {
        let orig = numeric_table(&[Some(10.0), None, Some(-5.0), Some(0.25)]);
        let mut t = orig.clone();
        let norm = Normalizer::fit(&t);
        norm.apply(&mut t);
        norm.unapply(&mut t);
        for i in 0..4 {
            match (orig.get(i, 0), t.get(i, 0)) {
                (Value::Num(a), Value::Num(b)) => assert!((a - b).abs() < 1e-9),
                (Value::Null, Value::Null) => {}
                other => panic!("mismatch {other:?}"),
            }
        }
    }

    #[test]
    fn constant_column_does_not_produce_nan() {
        let mut t = numeric_table(&[Some(5.0), Some(5.0)]);
        let norm = Normalizer::fit(&t);
        norm.apply(&mut t);
        assert_eq!(t.get(0, 0), Value::Num(0.0));
        assert_eq!(norm.inverse(0, 0.0), 5.0);
    }

    #[test]
    fn nulls_stay_null() {
        let mut t = numeric_table(&[Some(1.0), None]);
        Normalizer::fit(&t).apply(&mut t);
        assert!(t.is_missing(1, 0));
    }
}

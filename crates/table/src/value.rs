//! Cell values of a mixed-type table.

use std::fmt;

/// A single cell value. Categorical values are dictionary codes into the
/// owning column's dictionary; the sentinel `Null` is the paper's `∅`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Value {
    /// The missing-value sentinel `∅`.
    Null,
    /// Dictionary code of a categorical value within its column.
    Cat(u32),
    /// A numerical value.
    Num(f64),
}

impl Value {
    /// True for the `∅` sentinel.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// The categorical code, if this is a categorical value.
    pub fn as_cat(&self) -> Option<u32> {
        match self {
            Value::Cat(c) => Some(*c),
            _ => None,
        }
    }

    /// The numerical value, if this is a numerical value.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Value::Num(v) => Some(*v),
            _ => None,
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "∅"),
            Value::Cat(c) => write!(f, "#{c}"),
            Value::Num(v) => write!(f, "{v}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors_match_variants() {
        assert!(Value::Null.is_null());
        assert_eq!(Value::Cat(3).as_cat(), Some(3));
        assert_eq!(Value::Cat(3).as_num(), None);
        assert_eq!(Value::Num(1.5).as_num(), Some(1.5));
    }
}

//! Error injection: MCAR missingness and typo noise.
//!
//! The paper's evaluation "corrupts" clean datasets by injecting missing
//! values completely at random at 5/20/50 % and, for the noise-robustness
//! experiment, by inserting random characters into 10 % of the cells.

use rand::seq::SliceRandom;
use rand::Rng;

use crate::schema::ColumnKind;
use crate::table::Table;
use crate::value::Value;

/// One injected missing value: position and the ground-truth value removed.
#[derive(Clone, Debug, PartialEq)]
pub struct InjectedCell {
    /// Row index.
    pub row: usize,
    /// Column index.
    pub col: usize,
    /// The value that was removed (never `Null`).
    pub truth: Value,
}

/// The record of one corruption run: which cells were blanked and what the
/// ground truth was. This is the test set of every experiment.
#[derive(Clone, Debug, Default)]
pub struct CorruptionLog {
    /// All injected cells in injection order.
    pub cells: Vec<InjectedCell>,
}

impl CorruptionLog {
    /// Number of injected missing values.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// True when nothing was injected.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Injected cells belonging to column `j`.
    pub fn cells_in_column(&self, j: usize) -> impl Iterator<Item = &InjectedCell> {
        self.cells.iter().filter(move |c| c.col == j)
    }
}

/// Blank a fraction `p` of all cells, chosen uniformly at random over the
/// whole table (MCAR), returning the modified table's corruption log.
///
/// Cells that are already `∅` are not eligible. The number of injected
/// cells is `round(p · n_rows · n_cols)` capped by the number of eligible
/// cells.
pub fn inject_mcar(table: &mut Table, p: f64, rng: &mut impl Rng) -> CorruptionLog {
    assert!(
        (0.0..=1.0).contains(&p),
        "missingness proportion must be in [0, 1]"
    );
    let mut eligible: Vec<(usize, usize)> = Vec::new();
    for j in 0..table.n_columns() {
        for i in 0..table.n_rows() {
            if !table.is_missing(i, j) {
                eligible.push((i, j));
            }
        }
    }
    let target = ((table.n_rows() * table.n_columns()) as f64 * p).round() as usize;
    let n = target.min(eligible.len());
    eligible.shuffle(rng);
    let mut log = CorruptionLog::default();
    for &(i, j) in eligible.iter().take(n) {
        let truth = table.get(i, j);
        table.set(i, j, Value::Null);
        log.cells.push(InjectedCell {
            row: i,
            col: j,
            truth,
        });
    }
    log
}

/// Blank cells **missing-not-at-random** (MNAR): within each column, a
/// cell's blanking probability depends on its own value — rarer values are
/// more likely to go missing, scaled so the expected overall fraction is
/// `p`. This is the systematic-missingness scenario the paper defers to
/// follow-up work (§7) and that GRIMP's data-driven design is claimed to
/// handle.
///
/// Mechanism: values in a column are ranked by frequency; the blanking
/// probability of a cell is proportional to `1 + rank` (rarest values most
/// likely to be hidden), renormalized per column to hit `p` in expectation.
/// Numerical cells use the rank of their rounded value.
pub fn inject_mnar(table: &mut Table, p: f64, rng: &mut impl Rng) -> CorruptionLog {
    assert!(
        (0.0..=1.0).contains(&p),
        "missingness proportion must be in [0, 1]"
    );
    let mut log = CorruptionLog::default();
    for j in 0..table.n_columns() {
        // frequency rank per surface value
        let mut counts: std::collections::HashMap<String, usize> = Default::default();
        for i in 0..table.n_rows() {
            if !table.is_missing(i, j) {
                *counts.entry(table.display(i, j)).or_default() += 1;
            }
        }
        if counts.is_empty() {
            continue;
        }
        let mut by_freq: Vec<(String, usize)> = counts.into_iter().collect();
        by_freq.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        let rank: std::collections::HashMap<&str, usize> = by_freq
            .iter()
            .enumerate()
            .map(|(r, (v, _))| (v.as_str(), r))
            .collect();
        // per-cell weights ∝ 1 + rank, normalized to expectation p
        let cells: Vec<(usize, f64)> = (0..table.n_rows())
            .filter(|&i| !table.is_missing(i, j))
            .map(|i| {
                let r = rank[table.display(i, j).as_str()];
                (i, 1.0 + r as f64)
            })
            .collect();
        let total_w: f64 = cells.iter().map(|(_, w)| w).sum();
        let scale = p * cells.len() as f64 / total_w.max(1e-12);
        for (i, w) in cells {
            if rng.gen::<f64>() < (w * scale).min(1.0) {
                let truth = table.get(i, j);
                table.set(i, j, Value::Null);
                log.cells.push(InjectedCell {
                    row: i,
                    col: j,
                    truth,
                });
            }
        }
    }
    log
}

/// Blank cells **missing-at-random** (MAR): the blanking probability of
/// column `target`'s cells depends on the value of a *different* column
/// `driver` (cells whose driver value is in the upper frequency half are
/// `bias` times more likely to be blanked). Other columns are untouched.
pub fn inject_mar(
    table: &mut Table,
    target: usize,
    driver: usize,
    p: f64,
    bias: f64,
    rng: &mut impl Rng,
) -> CorruptionLog {
    assert!(
        (0.0..=1.0).contains(&p),
        "missingness proportion must be in [0, 1]"
    );
    assert!(bias >= 1.0, "bias must be >= 1");
    assert_ne!(target, driver, "driver must differ from target");
    // median frequency split of the driver column
    let mut counts: std::collections::HashMap<String, usize> = Default::default();
    for i in 0..table.n_rows() {
        if !table.is_missing(i, driver) {
            *counts.entry(table.display(i, driver)).or_default() += 1;
        }
    }
    let mut freqs: Vec<usize> = counts.values().copied().collect();
    freqs.sort_unstable();
    let median = freqs.get(freqs.len() / 2).copied().unwrap_or(0);
    let mut log = CorruptionLog::default();
    let cells: Vec<(usize, f64)> = (0..table.n_rows())
        .filter(|&i| !table.is_missing(i, target))
        .map(|i| {
            let heavy = !table.is_missing(i, driver) && counts[&table.display(i, driver)] >= median;
            (i, if heavy { bias } else { 1.0 })
        })
        .collect();
    let total_w: f64 = cells.iter().map(|(_, w)| w).sum();
    let scale = p * cells.len() as f64 / total_w.max(1e-12);
    for (i, w) in cells {
        if rng.gen::<f64>() < (w * scale).min(1.0) {
            let truth = table.get(i, target);
            table.set(i, target, Value::Null);
            log.cells.push(InjectedCell {
                row: i,
                col: target,
                truth,
            });
        }
    }
    log
}

/// Insert a random ASCII letter at a random position of a string.
fn typo(s: &str, rng: &mut impl Rng) -> String {
    let mut chars: Vec<char> = s.chars().collect();
    let pos = rng.gen_range(0..=chars.len());
    let c = (b'a' + rng.gen_range(0..26u8)) as char;
    chars.insert(pos, c);
    chars.into_iter().collect()
}

/// Give every categorical cell an independent probability `p` of having a
/// random character inserted into its value (the paper's 10 %-typo noise
/// experiment). Returns the number of cells modified.
///
/// Typos create *new* dictionary entries: a corrupted cell no longer matches
/// its clean value, exactly as a typo in a real CSV would.
pub fn inject_typos(table: &mut Table, p: f64, rng: &mut impl Rng) -> usize {
    assert!(
        (0.0..=1.0).contains(&p),
        "typo probability must be in [0, 1]"
    );
    let mut modified = 0;
    let cat_cols: Vec<usize> = table
        .schema()
        .columns()
        .iter()
        .enumerate()
        .filter(|(_, c)| c.kind == ColumnKind::Categorical)
        .map(|(j, _)| j)
        .collect();
    for j in cat_cols {
        for i in 0..table.n_rows() {
            if table.is_missing(i, j) || rng.gen::<f64>() >= p {
                continue;
            }
            let dirty = typo(&table.display(i, j), rng);
            let code = table.intern(j, &dirty);
            table.set(i, j, Value::Cat(code));
            modified += 1;
        }
    }
    modified
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Schema;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn table(n: usize) -> Table {
        let schema =
            Schema::from_pairs(&[("c", ColumnKind::Categorical), ("x", ColumnKind::Numerical)]);
        let mut t = Table::empty(schema);
        for i in 0..n {
            let s = format!("v{}", i % 5);
            t.push_str_row(&[Some(&s), Some(&format!("{i}"))]);
        }
        t
    }

    #[test]
    fn mcar_injects_requested_fraction() {
        let mut t = table(100);
        let mut rng = StdRng::seed_from_u64(1);
        let log = inject_mcar(&mut t, 0.2, &mut rng);
        assert_eq!(log.len(), 40); // 200 cells * 0.2
        assert_eq!(t.n_missing(), 40);
    }

    #[test]
    fn mcar_log_matches_blanked_cells_and_truth() {
        let clean = table(50);
        let mut dirty = clean.clone();
        let mut rng = StdRng::seed_from_u64(2);
        let log = inject_mcar(&mut dirty, 0.1, &mut rng);
        for cell in &log.cells {
            assert!(dirty.is_missing(cell.row, cell.col));
            assert_eq!(clean.get(cell.row, cell.col), cell.truth);
            assert!(!cell.truth.is_null());
        }
    }

    #[test]
    fn mcar_is_deterministic_per_seed() {
        let mut a = table(30);
        let mut b = table(30);
        let la = inject_mcar(&mut a, 0.3, &mut StdRng::seed_from_u64(9));
        let lb = inject_mcar(&mut b, 0.3, &mut StdRng::seed_from_u64(9));
        assert_eq!(la.cells, lb.cells);
        assert_eq!(a, b);
    }

    #[test]
    fn mcar_full_blanks_everything() {
        let mut t = table(10);
        inject_mcar(&mut t, 1.0, &mut StdRng::seed_from_u64(3));
        assert_eq!(t.n_missing(), 20);
    }

    #[test]
    fn typos_change_roughly_p_fraction_of_categorical_cells() {
        let mut t = table(1000);
        let clean = t.clone();
        let n = inject_typos(&mut t, 0.1, &mut StdRng::seed_from_u64(4));
        assert!((50..150).contains(&n), "modified {n} cells");
        let changed = (0..1000)
            .filter(|&i| t.display(i, 0) != clean.display(i, 0))
            .count();
        assert_eq!(changed, n);
        // the numerical column is untouched
        for i in 0..1000 {
            assert_eq!(t.get(i, 1), clean.get(i, 1));
        }
    }

    #[test]
    fn typo_inserts_exactly_one_char() {
        let mut rng = StdRng::seed_from_u64(5);
        let s = typo("abc", &mut rng);
        assert_eq!(s.chars().count(), 4);
    }

    fn skewed_table(n: usize) -> Table {
        let schema = Schema::from_pairs(&[("c", ColumnKind::Categorical)]);
        let mut t = Table::empty(schema);
        for i in 0..n {
            // value v0 85 %, v1 15 %
            t.push_str_row(&[Some(if i % 100 < 85 { "v0" } else { "v1" })]);
        }
        t
    }

    #[test]
    fn mnar_hits_rare_values_disproportionately() {
        let clean = skewed_table(2000);
        let mut dirty = clean.clone();
        let log = inject_mnar(&mut dirty, 0.2, &mut StdRng::seed_from_u64(6));
        let rare_hits = log
            .cells
            .iter()
            .filter(|c| clean.display(c.row, c.col) == "v1")
            .count();
        let rare_rate = rare_hits as f64 / 300.0; // 15 % of 2000 rows
        let freq_rate = (log.len() - rare_hits) as f64 / 1700.0;
        assert!(
            rare_rate > 1.5 * freq_rate,
            "MNAR must over-blank rare values: rare {rare_rate:.3} vs freq {freq_rate:.3}"
        );
        // overall rate near p
        let overall = log.len() as f64 / 2000.0;
        assert!((overall - 0.2).abs() < 0.05, "overall rate {overall}");
    }

    #[test]
    fn mnar_log_records_truths() {
        let clean = skewed_table(100);
        let mut dirty = clean.clone();
        let log = inject_mnar(&mut dirty, 0.3, &mut StdRng::seed_from_u64(7));
        for c in &log.cells {
            assert!(dirty.is_missing(c.row, c.col));
            assert_eq!(clean.get(c.row, c.col), c.truth);
        }
    }

    #[test]
    fn mar_blanks_only_the_target_column() {
        let mut t = table(500);
        let clean = t.clone();
        let log = inject_mar(&mut t, 1, 0, 0.2, 3.0, &mut StdRng::seed_from_u64(8));
        assert!(log.cells.iter().all(|c| c.col == 1));
        for i in 0..500 {
            assert_eq!(t.get(i, 0), clean.get(i, 0), "driver column untouched");
        }
        let overall = log.len() as f64 / 500.0;
        assert!((overall - 0.2).abs() < 0.06, "overall rate {overall}");
    }

    #[test]
    #[should_panic(expected = "driver must differ")]
    fn mar_rejects_self_driver() {
        let mut t = table(10);
        inject_mar(&mut t, 0, 0, 0.1, 2.0, &mut StdRng::seed_from_u64(9));
    }
}

//! Schemas of mixed-type relational tables.

use std::fmt;

/// The type of an attribute, following the paper's split of the schema `R`
/// into categorical attributes `C(R)` and numerical attributes `N(R)`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ColumnKind {
    /// Discrete attribute; imputation is multi-class classification.
    Categorical,
    /// Real-valued attribute; imputation is regression.
    Numerical,
}

/// Name and kind of a single attribute.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ColumnMeta {
    /// Attribute name.
    pub name: String,
    /// Categorical or numerical.
    pub kind: ColumnKind,
}

/// An ordered list of attributes.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct Schema {
    columns: Vec<ColumnMeta>,
}

impl Schema {
    /// Build a schema from `(name, kind)` pairs.
    pub fn new(columns: Vec<ColumnMeta>) -> Self {
        let mut names: Vec<&str> = columns.iter().map(|c| c.name.as_str()).collect();
        names.sort_unstable();
        assert!(
            names.windows(2).all(|w| w[0] != w[1]),
            "duplicate column name in schema"
        );
        Schema { columns }
    }

    /// Convenience constructor from `(name, kind)` tuples.
    pub fn from_pairs(pairs: &[(&str, ColumnKind)]) -> Self {
        Schema::new(
            pairs
                .iter()
                .map(|(name, kind)| ColumnMeta {
                    name: (*name).to_string(),
                    kind: *kind,
                })
                .collect(),
        )
    }

    /// Number of attributes.
    pub fn n_columns(&self) -> usize {
        self.columns.len()
    }

    /// Metadata of attribute `i`.
    pub fn column(&self, i: usize) -> &ColumnMeta {
        &self.columns[i]
    }

    /// All attribute metadata in order.
    pub fn columns(&self) -> &[ColumnMeta] {
        &self.columns
    }

    /// Index of the attribute with the given name.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|c| c.name == name)
    }

    /// Indices of categorical attributes (`C(R)`).
    pub fn categorical_indices(&self) -> Vec<usize> {
        self.indices_of(ColumnKind::Categorical)
    }

    /// Indices of numerical attributes (`N(R)`).
    pub fn numerical_indices(&self) -> Vec<usize> {
        self.indices_of(ColumnKind::Numerical)
    }

    fn indices_of(&self, kind: ColumnKind) -> Vec<usize> {
        self.columns
            .iter()
            .enumerate()
            .filter(|(_, c)| c.kind == kind)
            .map(|(i, _)| i)
            .collect()
    }
}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, c) in self.columns.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            let k = match c.kind {
                ColumnKind::Categorical => "cat",
                ColumnKind::Numerical => "num",
            };
            write!(f, "{}:{}", c.name, k)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_of_finds_columns() {
        let s = Schema::from_pairs(&[("a", ColumnKind::Categorical), ("b", ColumnKind::Numerical)]);
        assert_eq!(s.index_of("a"), Some(0));
        assert_eq!(s.index_of("b"), Some(1));
        assert_eq!(s.index_of("c"), None);
    }

    #[test]
    fn kind_partitions_are_disjoint_and_complete() {
        let s = Schema::from_pairs(&[
            ("a", ColumnKind::Categorical),
            ("b", ColumnKind::Numerical),
            ("c", ColumnKind::Categorical),
        ]);
        assert_eq!(s.categorical_indices(), vec![0, 2]);
        assert_eq!(s.numerical_indices(), vec![1]);
    }

    #[test]
    #[should_panic(expected = "duplicate column name")]
    fn duplicate_names_rejected() {
        Schema::from_pairs(&[("a", ColumnKind::Categorical), ("a", ColumnKind::Numerical)]);
    }

    #[test]
    fn display_is_compact() {
        let s = Schema::from_pairs(&[("x", ColumnKind::Numerical)]);
        assert_eq!(s.to_string(), "x:num");
    }
}

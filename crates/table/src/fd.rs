//! Functional dependencies over table attributes.
//!
//! FDs are the "external information" of the paper's §4.3: `X → A` states
//! that the values of the attribute set `X` determine the value of `A`.

use crate::table::Table;

/// A functional dependency `lhs → rhs`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FunctionalDependency {
    /// Determinant attribute indices (the premise).
    pub lhs: Vec<usize>,
    /// Dependent attribute index (the conclusion).
    pub rhs: usize,
}

impl FunctionalDependency {
    /// Construct `lhs → rhs`.
    ///
    /// # Panics
    /// Panics when `lhs` is empty or contains `rhs`.
    pub fn new(lhs: Vec<usize>, rhs: usize) -> Self {
        assert!(!lhs.is_empty(), "FD premise must be non-empty");
        assert!(
            !lhs.contains(&rhs),
            "FD conclusion cannot appear in its premise"
        );
        FunctionalDependency { lhs, rhs }
    }

    /// All attributes involved (premise ∪ conclusion).
    pub fn attributes(&self) -> Vec<usize> {
        let mut a = self.lhs.clone();
        a.push(self.rhs);
        a
    }

    /// Check whether the FD holds on the non-null rows of `table`:
    /// no two rows agreeing on `lhs` may disagree on `rhs`. Rows with a null
    /// in any involved attribute are skipped.
    pub fn holds_on(&self, table: &Table) -> bool {
        self.violations(table).is_empty()
    }

    /// Pairs of row groups that violate the FD: for each `lhs` group with
    /// more than one distinct `rhs` value, the group's row indices.
    pub fn violations(&self, table: &Table) -> Vec<Vec<usize>> {
        let groups = table.group_rows_by(&self.lhs);
        let mut bad = Vec::new();
        for rows in groups.values() {
            let mut seen: Option<crate::value::Value> = None;
            let mut violating = false;
            for &i in rows {
                let v = table.get(i, self.rhs);
                if v.is_null() {
                    continue;
                }
                match &seen {
                    None => seen = Some(v),
                    Some(s) if *s != v => {
                        violating = true;
                        break;
                    }
                    _ => {}
                }
            }
            if violating {
                let mut rows = rows.clone();
                rows.sort_unstable();
                bad.push(rows);
            }
        }
        bad.sort();
        bad
    }
}

/// A set of FDs with helpers used by FD-aware imputers.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FdSet {
    /// The dependencies.
    pub fds: Vec<FunctionalDependency>,
}

impl FdSet {
    /// An empty FD set.
    pub fn empty() -> Self {
        FdSet::default()
    }

    /// Construct from a list of `(lhs, rhs)` pairs.
    pub fn from_pairs(pairs: &[(&[usize], usize)]) -> Self {
        FdSet {
            fds: pairs
                .iter()
                .map(|(lhs, rhs)| FunctionalDependency::new(lhs.to_vec(), *rhs))
                .collect(),
        }
    }

    /// Number of FDs.
    pub fn len(&self) -> usize {
        self.fds.len()
    }

    /// True when no FDs are present.
    pub fn is_empty(&self) -> bool {
        self.fds.is_empty()
    }

    /// FDs whose conclusion is attribute `j`.
    pub fn with_rhs(&self, j: usize) -> Vec<&FunctionalDependency> {
        self.fds.iter().filter(|fd| fd.rhs == j).collect()
    }

    /// All attributes that co-occur with `j` in some FD (premise or
    /// conclusion), excluding `j` itself. Used by the Weak-diagonal+FD
    /// attention strategy and FUNFOREST.
    pub fn related_attributes(&self, j: usize) -> Vec<usize> {
        let mut related = Vec::new();
        for fd in &self.fds {
            let attrs = fd.attributes();
            if attrs.contains(&j) {
                for a in attrs {
                    if a != j && !related.contains(&a) {
                        related.push(a);
                    }
                }
            }
        }
        related.sort_unstable();
        related
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{ColumnKind, Schema};

    fn table() -> Table {
        // state -> areacode holds; state -> rate does not.
        let schema = Schema::from_pairs(&[
            ("state", ColumnKind::Categorical),
            ("areacode", ColumnKind::Categorical),
            ("rate", ColumnKind::Categorical),
        ]);
        Table::from_rows(
            schema,
            &[
                vec![Some("RI"), Some("401"), Some("a")],
                vec![Some("RI"), Some("401"), Some("b")],
                vec![Some("NH"), Some("603"), Some("a")],
                vec![Some("NH"), None, Some("a")],
            ],
        )
    }

    #[test]
    fn holds_detects_satisfied_fd() {
        let t = table();
        assert!(FunctionalDependency::new(vec![0], 1).holds_on(&t));
    }

    #[test]
    fn violations_found_for_broken_fd() {
        let t = table();
        let fd = FunctionalDependency::new(vec![0], 2);
        let v = fd.violations(&t);
        assert_eq!(v, vec![vec![0, 1]]);
    }

    #[test]
    fn nulls_do_not_count_as_violations() {
        let t = table();
        // row 3 has a null areacode — ignored.
        assert!(FunctionalDependency::new(vec![0], 1).holds_on(&t));
    }

    #[test]
    #[should_panic(expected = "premise must be non-empty")]
    fn empty_premise_rejected() {
        FunctionalDependency::new(vec![], 0);
    }

    #[test]
    fn related_attributes_cover_premise_and_conclusion() {
        let fds = FdSet::from_pairs(&[(&[0, 1], 2), (&[3], 0)]);
        assert_eq!(fds.related_attributes(0), vec![1, 2, 3]);
        assert_eq!(fds.related_attributes(2), vec![0, 1]);
        assert_eq!(fds.related_attributes(4), Vec::<usize>::new());
        assert_eq!(fds.with_rhs(2).len(), 1);
    }
}

//! Typed errors for fallible table mutation.
//!
//! The panicking mutators ([`crate::Table::push_str_row`],
//! [`crate::Table::push_value_row`], [`crate::Table::set`]) delegate to
//! `try_*` twins that return these errors instead; code handling
//! user-controlled data (the CSV reader, CLI entry points) uses the `try_*`
//! forms so malformed input surfaces as a descriptive `Err`, never a panic.

use std::error::Error;
use std::fmt;

use crate::schema::ColumnKind;

/// Why a row or cell could not be written to a [`crate::Table`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TableError {
    /// The row's cell count disagrees with the schema.
    RaggedRow {
        /// Columns in the schema.
        expected: usize,
        /// Cells in the offending row.
        got: usize,
    },
    /// A cell destined for a numerical column failed to parse as `f64`.
    NotNumeric {
        /// Column index.
        column: usize,
        /// The offending cell text.
        cell: String,
    },
    /// A [`crate::Value`] variant does not match the column's kind.
    KindMismatch {
        /// Column index.
        column: usize,
        /// The column's declared kind.
        kind: ColumnKind,
        /// Debug rendering of the offending value.
        value: String,
    },
    /// A categorical code points outside the column's dictionary.
    CodeOutOfDictionary {
        /// Column index.
        column: usize,
        /// The offending code.
        code: u32,
        /// Dictionary size of the column.
        dict_len: usize,
    },
}

impl fmt::Display for TableError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TableError::RaggedRow { expected, got } => {
                write!(
                    f,
                    "row has {got} cells but the schema has {expected} columns"
                )
            }
            TableError::NotNumeric { column, cell } => {
                write!(
                    f,
                    "cell {cell:?} in numerical column {column} is not numeric"
                )
            }
            TableError::KindMismatch {
                column,
                kind,
                value,
            } => write!(
                f,
                "value {value} does not match column {column} (kind {kind:?})"
            ),
            TableError::CodeOutOfDictionary {
                column,
                code,
                dict_len,
            } => write!(
                f,
                "categorical code {code} is outside the dictionary of column {column} \
                 (size {dict_len})"
            ),
        }
    }
}

impl Error for TableError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_name_the_problem() {
        let e = TableError::RaggedRow {
            expected: 3,
            got: 2,
        };
        assert!(e.to_string().contains("2 cells"));
        let e = TableError::NotNumeric {
            column: 1,
            cell: "abc".into(),
        };
        assert!(e.to_string().contains("abc"));
        let e = TableError::KindMismatch {
            column: 0,
            kind: ColumnKind::Categorical,
            value: "Num(1.0)".into(),
        };
        assert!(e.to_string().contains("does not match column"));
        let e = TableError::CodeOutOfDictionary {
            column: 2,
            code: 9,
            dict_len: 3,
        };
        assert!(e.to_string().contains("dictionary"));
    }
}

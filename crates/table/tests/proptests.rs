//! Property-based tests for the relational substrate.

use grimp_table::csv::{read_csv_str, to_csv_string};
use grimp_table::{inject_mcar, ColumnKind, Corpus, Normalizer, Schema, Table, Value};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Strategy for small random mixed tables.
fn arb_table() -> impl Strategy<Value = Table> {
    let cell = prop_oneof![
        3 => (0u32..5).prop_map(Some),
        1 => Just(None),
    ];
    let num = prop_oneof![
        3 => (-100i32..100).prop_map(|v| Some(v as f64 / 4.0)),
        1 => Just(None),
    ];
    (proptest::collection::vec((cell, num), 1..40)).prop_map(|rows| {
        let schema =
            Schema::from_pairs(&[("c", ColumnKind::Categorical), ("x", ColumnKind::Numerical)]);
        let mut t = Table::empty(schema);
        for (c, x) in rows {
            let cs = c.map(|v| format!("v{v}"));
            let xs = x.map(|v| format!("{v}"));
            t.push_str_row(&[cs.as_deref(), xs.as_deref()]);
        }
        t
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn csv_roundtrip_is_identity(t in arb_table()) {
        let csv = to_csv_string(&t);
        let back = read_csv_str(&csv).unwrap();
        prop_assert_eq!(back.n_rows(), t.n_rows());
        for i in 0..t.n_rows() {
            for j in 0..t.n_columns() {
                match (t.get(i, j), back.get(i, j)) {
                    (Value::Null, Value::Null) => {}
                    (Value::Num(a), Value::Num(b)) => prop_assert!((a - b).abs() < 1e-9),
                    _ => prop_assert_eq!(t.display(i, j), back.display(i, j)),
                }
            }
        }
    }

    #[test]
    fn normalizer_roundtrips(t in arb_table()) {
        let mut w = t.clone();
        let norm = Normalizer::fit(&w);
        norm.apply(&mut w);
        // all normalized values are finite
        for i in 0..w.n_rows() {
            if let Value::Num(v) = w.get(i, 1) {
                prop_assert!(v.is_finite());
            }
        }
        norm.unapply(&mut w);
        for i in 0..t.n_rows() {
            match (t.get(i, 1), w.get(i, 1)) {
                (Value::Num(a), Value::Num(b)) => prop_assert!((a - b).abs() < 1e-6),
                (Value::Null, Value::Null) => {}
                other => prop_assert!(false, "mismatch {:?}", other),
            }
        }
    }

    #[test]
    fn mcar_preserves_non_injected_cells(t in arb_table(), p in 0.0f64..0.9, seed in 0u64..100) {
        let mut dirty = t.clone();
        let log = inject_mcar(&mut dirty, p, &mut StdRng::seed_from_u64(seed));
        let injected: std::collections::HashSet<(usize, usize)> =
            log.cells.iter().map(|c| (c.row, c.col)).collect();
        prop_assert_eq!(injected.len(), log.cells.len(), "no duplicate injections");
        for i in 0..t.n_rows() {
            for j in 0..t.n_columns() {
                if injected.contains(&(i, j)) {
                    prop_assert!(dirty.is_missing(i, j));
                } else {
                    prop_assert_eq!(t.get(i, j), dirty.get(i, j));
                }
            }
        }
    }

    #[test]
    fn corpus_counts_match_non_missing_cells(t in arb_table(), seed in 0u64..100) {
        let c = Corpus::build(&t, 0.2, &mut StdRng::seed_from_u64(seed));
        let non_missing = t.n_rows() * t.n_columns() - t.n_missing();
        prop_assert_eq!(c.n_train() + c.n_validation(), non_missing);
        // samples are routed to the bucket matching their target column
        for (j, bucket) in c.train.iter().enumerate() {
            for s in bucket {
                prop_assert_eq!(s.target_col, j);
                prop_assert_eq!(s.label, t.get(s.row, j));
            }
        }
    }

    #[test]
    fn missing_fraction_matches_requested_p(t in arb_table(), p in 0.0f64..=0.5) {
        // On a table with no pre-existing nulls, injection hits the target
        // count exactly (rounded).
        let schema = Schema::from_pairs(&[("c", ColumnKind::Categorical)]);
        let rows: Vec<Vec<Option<&str>>> = (0..t.n_rows().max(1)).map(|_| vec![Some("x")]).collect();
        let mut clean = Table::from_rows(schema, &rows);
        let cells = clean.n_rows() * clean.n_columns();
        let log = inject_mcar(&mut clean, p, &mut StdRng::seed_from_u64(0));
        prop_assert_eq!(log.len(), ((cells as f64) * p).round() as usize);
    }
}

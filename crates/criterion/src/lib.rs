//! Vendored, dependency-free stand-in for the subset of the `criterion`
//! 0.5 API that the GRIMP workspace's micro-benchmarks use.
//!
//! The build environment has no access to crates.io, so the workspace
//! ships this shim as a path dependency under the same crate name. It
//! implements warm-up + timed measurement with median/mean reporting — no
//! statistical regression analysis, plots, or baselines. Measurement
//! budget per benchmark is tunable via `CRITERION_SHIM_MS` (default 300).

#![warn(missing_docs)]

use std::time::{Duration, Instant};

/// How per-iteration setup cost is amortized in `iter_batched`.
/// All variants behave identically in this shim (setup is always excluded
/// from timing; batches are of size one).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchSize {
    /// Small inputs: many iterations per batch upstream.
    SmallInput,
    /// Large inputs: few iterations per batch upstream.
    LargeInput,
    /// One setup per iteration.
    PerIteration,
}

/// Collects timing samples for one benchmark.
pub struct Bencher {
    samples: Vec<Duration>,
    budget: Duration,
}

impl Bencher {
    fn new(budget: Duration) -> Self {
        Bencher {
            samples: Vec::new(),
            budget,
        }
    }

    /// Measure `routine` repeatedly until the time budget is exhausted.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: a few unrecorded runs.
        for _ in 0..3 {
            std::hint::black_box(routine());
        }
        let deadline = Instant::now() + self.budget;
        while Instant::now() < deadline || self.samples.len() < 10 {
            let start = Instant::now();
            std::hint::black_box(routine());
            self.samples.push(start.elapsed());
            if self.samples.len() >= 100_000 {
                break;
            }
        }
    }

    /// Measure `routine` on inputs produced by `setup`; setup time is
    /// excluded from the recorded samples.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        for _ in 0..3 {
            std::hint::black_box(routine(setup()));
        }
        let deadline = Instant::now() + self.budget;
        while Instant::now() < deadline || self.samples.len() < 10 {
            let input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(input));
            self.samples.push(start.elapsed());
            if self.samples.len() >= 100_000 {
                break;
            }
        }
    }
}

/// Benchmark driver: runs registered functions and prints their timings.
pub struct Criterion {
    budget: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        let ms = std::env::var("CRITERION_SHIM_MS")
            .ok()
            .and_then(|v| v.parse::<u64>().ok())
            .unwrap_or(300);
        Criterion {
            budget: Duration::from_millis(ms),
        }
    }
}

impl Criterion {
    /// Run one benchmark and print `id  time: [median mean]`.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher::new(self.budget);
        f(&mut bencher);
        let mut sorted = bencher.samples.clone();
        sorted.sort_unstable();
        let median = sorted[sorted.len() / 2];
        let mean = sorted.iter().sum::<Duration>() / sorted.len() as u32;
        println!(
            "{id:<40} time: [median {} mean {}]  ({} samples)",
            fmt_duration(median),
            fmt_duration(mean),
            sorted.len()
        );
        self
    }
}

fn fmt_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.2} µs", nanos as f64 / 1_000.0)
    } else if nanos < 1_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1_000_000.0)
    } else {
        format!("{:.3} s", nanos as f64 / 1_000_000_000.0)
    }
}

/// Group benchmark functions into one callable group.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generate `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_collects_samples() {
        std::env::set_var("CRITERION_SHIM_MS", "5");
        let mut c = Criterion::default();
        c.bench_function("shim/self_test", |b| b.iter(|| 1 + 1));
        c.bench_function("shim/batched_self_test", |b| {
            b.iter_batched(|| 21, |x| x * 2, BatchSize::SmallInput)
        });
    }

    #[test]
    fn duration_formatting_scales() {
        assert!(fmt_duration(Duration::from_nanos(10)).contains("ns"));
        assert!(fmt_duration(Duration::from_micros(10)).contains("µs"));
        assert!(fmt_duration(Duration::from_millis(10)).contains("ms"));
        assert!(fmt_duration(Duration::from_secs(10)).contains("s"));
    }
}

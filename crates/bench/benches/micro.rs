//! Criterion micro-benchmarks of the hot components: graph construction,
//! pre-trained features, GNN forward/backward, task heads, the random
//! forest, and the raw tensor kernels they all sit on.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;

use grimp::{GrimpConfig, Task, TaskKind, VectorBatch};
use grimp_baselines::{ForestConfig, RandomForest, TreeLabels, TreeTarget};
use grimp_bench::{corrupt, prepare, Profile};
use grimp_datasets::DatasetId;
use grimp_gnn::{GnnConfig, HeteroSage};
use grimp_graph::{build_features, EmbdiConfig, FeatureSource, GraphConfig, TableGraph};
use grimp_table::FdSet;
use grimp_tensor::{Adjacency, Tape, Tensor};

fn bench_tensor_kernels(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(0);
    let a = grimp_tensor::init::xavier_uniform(256, 256, &mut rng);
    let b = grimp_tensor::init::xavier_uniform(256, 256, &mut rng);
    c.bench_function("tensor/matmul_256", |bench| {
        bench.iter(|| std::hint::black_box(a.matmul(&b)))
    });
    c.bench_function("tensor/matmul_256_ref", |bench| {
        bench.iter(|| std::hint::black_box(a.matmul_ref(&b)))
    });
    c.bench_function("tensor/matmul_tn_256", |bench| {
        bench.iter(|| std::hint::black_box(a.matmul_tn(&b)))
    });
    c.bench_function("tensor/matmul_tn_256_ref", |bench| {
        bench.iter(|| std::hint::black_box(a.matmul_tn_ref(&b)))
    });
    c.bench_function("tensor/softmax_rows_256", |bench| {
        bench.iter(|| std::hint::black_box(grimp_tensor::softmax_rows(&a)))
    });

    // Scatter-mean over a pseudo-random adjacency shaped like the cell→row
    // aggregation of a mid-sized table: 512 source rows, 64 dims, ~8
    // neighbors per output row.
    let src = grimp_tensor::init::xavier_uniform(512, 64, &mut rng);
    let lists: Vec<Vec<u32>> = (0..512u32)
        .map(|i| (0..8).map(|k| (i * 37 + k * 131 + 17) % 512).collect())
        .collect();
    let adj = Adjacency::from_lists(&lists);
    let mut out = Tensor::zeros(512, 64);
    c.bench_function("tensor/scatter_mean_512x64", |bench| {
        bench.iter(|| {
            grimp_tensor::scatter_mean_into(&src, &adj, &mut out);
            std::hint::black_box(out.get(0, 0))
        })
    });
}

fn bench_graph_construction(c: &mut Criterion) {
    let prepared = prepare(DatasetId::Adult, Profile::Standard, 0);
    let instance = corrupt(&prepared, 0.20, 1);
    c.bench_function("graph/build_adult_700", |bench| {
        bench.iter(|| {
            std::hint::black_box(TableGraph::build(
                &instance.dirty,
                GraphConfig::default(),
                &[],
            ))
        })
    });
}

fn bench_features(c: &mut Criterion) {
    let prepared = prepare(DatasetId::Mammogram, Profile::Standard, 0);
    let instance = corrupt(&prepared, 0.20, 1);
    let graph = TableGraph::build(&instance.dirty, GraphConfig::default(), &[]);
    for source in [FeatureSource::FastText, FeatureSource::Embdi] {
        c.bench_function(&format!("features/{}_mammogram", source.label()), |bench| {
            bench.iter_batched(
                || StdRng::seed_from_u64(3),
                |mut rng| {
                    std::hint::black_box(build_features(
                        &graph,
                        &instance.dirty,
                        source,
                        24,
                        &EmbdiConfig::default(),
                        &mut rng,
                    ))
                },
                BatchSize::SmallInput,
            )
        });
    }
}

fn bench_gnn(c: &mut Criterion) {
    let prepared = prepare(DatasetId::Mammogram, Profile::Standard, 0);
    let instance = corrupt(&prepared, 0.20, 1);
    let graph = TableGraph::build(&instance.dirty, GraphConfig::default(), &[]);
    let mut rng = StdRng::seed_from_u64(0);
    let mut tape = Tape::new();
    let sage = HeteroSage::new(
        &mut tape,
        &graph,
        24,
        GnnConfig {
            layers: 2,
            hidden: 32,
            ..Default::default()
        },
        &mut rng,
    );
    tape.freeze();
    let features = Tensor::full(graph.n_nodes(), 24, 0.1);
    c.bench_function("gnn/forward_backward_mammogram", |bench| {
        bench.iter(|| {
            let x = tape.input(features.clone());
            let h = sage.forward(&mut tape, x);
            let sq = tape.mul_elem(h, h);
            let loss = tape.sum_all(sq);
            tape.backward(loss);
            tape.reset();
        })
    });
}

fn bench_task_heads(c: &mut Criterion) {
    let prepared = prepare(DatasetId::Mammogram, Profile::Standard, 0);
    let instance = corrupt(&prepared, 0.20, 1);
    let graph = TableGraph::build(&instance.dirty, GraphConfig::default(), &[]);
    let dim = 32;
    let samples: Vec<(usize, usize)> = (0..200).map(|i| (i % instance.dirty.n_rows(), 0)).collect();
    let batch = VectorBatch::build(&graph, &instance.dirty, &samples, dim);
    let cfg = GrimpConfig::fast();
    for kind in [TaskKind::Linear, TaskKind::Attention] {
        let mut rng = StdRng::seed_from_u64(1);
        let mut tape = Tape::new();
        let task = Task::new(
            &mut tape,
            kind,
            instance.dirty.n_columns(),
            dim,
            cfg.merge_hidden,
            5,
            0,
            cfg.k_strategy,
            &FdSet::empty(),
            None,
            &mut rng,
        );
        tape.freeze();
        let h = Tensor::full(graph.n_nodes(), dim, 0.1);
        let label = format!("task/{kind:?}_forward_200").to_lowercase();
        c.bench_function(&label, |bench| {
            bench.iter(|| {
                let hv = tape.input(h.clone());
                let out = task.forward(&mut tape, hv, &batch);
                std::hint::black_box(tape.value(out).sum());
                tape.reset();
            })
        });
    }
}

fn bench_forest(c: &mut Criterion) {
    let prepared = prepare(DatasetId::Mammogram, Profile::Standard, 0);
    let filled = grimp_baselines::mean_mode_fill(&prepared.clean);
    let features = grimp_baselines::FeatureMatrix::from_complete_table(&filled);
    let rows: Vec<usize> = (0..features.n_rows()).collect();
    let labels = TreeLabels::Classes((0..features.n_rows()).map(|i| (i % 3) as u32).collect());
    c.bench_function("forest/fit_mammogram_12trees", |bench| {
        bench.iter_batched(
            || StdRng::seed_from_u64(5),
            |mut rng| {
                std::hint::black_box(RandomForest::fit(
                    &features,
                    &rows,
                    &labels,
                    TreeTarget::Classification(3),
                    &[1, 2, 3, 4, 5],
                    &[],
                    ForestConfig::default(),
                    &mut rng,
                ))
            },
            BatchSize::SmallInput,
        )
    });
}

criterion_group!(
    benches,
    bench_tensor_kernels,
    bench_graph_construction,
    bench_features,
    bench_gnn,
    bench_task_heads,
    bench_forest
);
criterion_main!(benches);

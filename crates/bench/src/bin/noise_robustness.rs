//! **§4.2 "Impact of Noise in the Dataset"**: 10 % of categorical cells get
//! a random character inserted (typos), then 5 % MCAR is injected; GRIMP-FT
//! is compared against the clean-table run.
//!
//! Expected shape (paper): thanks to the inductive subword features, the
//! accuracy drop is small (paper reports an absolute decrease of ~0.06 %
//! with 10 % typos; we report the measured delta).

use grimp::Grimp;
use grimp_bench::*;
use grimp_datasets::DatasetId;
use grimp_table::{inject_typos, Imputer};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let profile = Profile::from_env();
    banner("Noise robustness — 10% typos + 5% MCAR (GRIMP-FT)", profile);

    let mut table = TablePrinter::new(&["ds", "acc clean", "acc typos", "delta"]);
    let mut csv_rows = Vec::new();
    let mut deltas = Vec::new();
    for id in DatasetId::ALL {
        let prepared = prepare(id, profile, 0);

        // clean arm: 5 % MCAR on the original table
        let clean_instance = corrupt(&prepared, 0.05, 7000);
        let mut model = Grimp::new(profile.grimp_config().with_seed(0));
        let clean_cell = run_cell(
            &prepared,
            &clean_instance,
            &mut model as &mut dyn Imputer,
            0.05,
        );
        let acc_clean = clean_cell.eval.accuracy().unwrap_or(0.0);

        // noisy arm: typos first (ground truth for injected cells is still
        // drawn from the typo'd table: exactly the paper's protocol — the
        // 5 % blanks are removed from, and evaluated against, the noisy
        // table)
        let mut noisy = prepared.clean.clone();
        inject_typos(&mut noisy, 0.10, &mut StdRng::seed_from_u64(7100));
        let noisy_prepared = Prepared {
            id: prepared.id,
            abbr: prepared.abbr,
            clean: noisy,
            fds: prepared.fds.clone(),
        };
        let noisy_instance = corrupt(&noisy_prepared, 0.05, 7000);
        let mut model = Grimp::new(profile.grimp_config().with_seed(0));
        let noisy_cell = run_cell(
            &noisy_prepared,
            &noisy_instance,
            &mut model as &mut dyn Imputer,
            0.05,
        );
        let acc_noisy = noisy_cell.eval.accuracy().unwrap_or(0.0);

        let delta = acc_clean - acc_noisy;
        deltas.push(delta);
        table.row(vec![
            prepared.abbr.to_string(),
            format!("{acc_clean:.3}"),
            format!("{acc_noisy:.3}"),
            format!("{delta:+.3}"),
        ]);
        csv_rows.push(vec![
            prepared.abbr.to_string(),
            format!("{acc_clean:.4}"),
            format!("{acc_noisy:.4}"),
            format!("{delta:.4}"),
        ]);
        eprintln!("  done {}", prepared.abbr);
    }
    println!("{}", table.render());
    let mean_delta = deltas.iter().sum::<f64>() / deltas.len() as f64;
    println!("mean absolute accuracy drop with 10% typos: {mean_delta:+.3}");
    println!("paper: limited impact (≈0.06 % absolute decrease) thanks to inductive features.");
    let path = write_csv(
        "noise_robustness",
        &["dataset", "acc_clean", "acc_typos", "delta"],
        &csv_rows,
    );
    println!("\ncsv: {}", path.display());
}

//! **Table 4**: Pearson correlation between the §5 difficulty metrics
//! (S_avg, K_avg, F+_avg, N+_avg) and GRIMP's imputation accuracy at 50 %
//! missingness, over all ten datasets.
//!
//! Expected shape (paper): negative correlations for S_avg, K_avg and
//! N+_avg (strongest for K_avg ≈ −0.655 and N+_avg ≈ −0.660), positive for
//! F+_avg (≈ 0.536) — "better results when the distribution is skewed
//! towards few, very frequent values".

use grimp::Grimp;
use grimp_bench::*;
use grimp_datasets::DatasetId;
use grimp_metrics::{dataset_stats, pearson};
use grimp_table::Imputer;

fn main() {
    let profile = Profile::from_env();
    banner(
        "Table 4 — difficulty metrics vs GRIMP accuracy @50%",
        profile,
    );

    let mut s = Vec::new();
    let mut k = Vec::new();
    let mut f_plus = Vec::new();
    let mut n_plus = Vec::new();
    let mut acc = Vec::new();
    let mut detail = TablePrinter::new(&["ds", "S_avg", "K_avg", "F+_avg", "N+_avg", "accuracy"]);

    for id in DatasetId::ALL {
        let prepared = prepare(id, profile, 0);
        let stats = dataset_stats(&prepared.clean);
        let instance = corrupt(&prepared, 0.50, 5000);
        let mut model = Grimp::new(profile.grimp_config().with_seed(0));
        let cell = run_cell(&prepared, &instance, &mut model as &mut dyn Imputer, 0.50);
        let a = cell.eval.accuracy().unwrap_or(0.0);
        s.push(stats.s_avg);
        k.push(stats.k_avg);
        f_plus.push(stats.f_plus_avg);
        n_plus.push(stats.n_plus_avg);
        acc.push(a);
        detail.row(vec![
            prepared.abbr.to_string(),
            format!("{:.2}", stats.s_avg),
            format!("{:.2}", stats.k_avg),
            format!("{:.2}", stats.f_plus_avg),
            format!("{:.2}", stats.n_plus_avg),
            format!("{a:.3}"),
        ]);
        eprintln!("  done {}", prepared.abbr);
    }
    println!("{}", detail.render());

    let rho = [
        ("S_avg", pearson(&s, &acc)),
        ("K_avg", pearson(&k, &acc)),
        ("F+_avg", pearson(&f_plus, &acc)),
        ("N+_avg", pearson(&n_plus, &acc)),
    ];
    let paper = [
        ("S_avg", -0.467),
        ("K_avg", -0.655),
        ("F+_avg", 0.536),
        ("N+_avg", -0.660),
    ];
    let mut table = TablePrinter::new(&["metric", "ρ (measured)", "ρ (paper)"]);
    let mut csv_rows = Vec::new();
    for ((name, measured), (_, published)) in rho.iter().zip(paper.iter()) {
        table.row(vec![
            name.to_string(),
            format!("{measured:+.3}"),
            format!("{published:+.3}"),
        ]);
        csv_rows.push(vec![
            name.to_string(),
            format!("{measured:.4}"),
            format!("{published:.4}"),
        ]);
    }
    println!("{}", table.render());
    println!("expected shape: negative for S/K/N+, positive for F+.");
    let path = write_csv(
        "tab4_correlation",
        &["metric", "rho_measured", "rho_paper"],
        &csv_rows,
    );
    println!("\ncsv: {}", path.display());
}

//! Serving-throughput probe: fits a small model, binds an in-process
//! `grimp serve` [`Server`] on a loopback port, and drives it with
//! concurrent CSV impute requests over real sockets. Writes
//! `BENCH_serve.json` in the working directory with throughput
//! (requests/sec, imputed rows/sec) and latency percentiles (p50/p99).
//!
//! Deterministic load shape (fixed table, fixed request count, fixed
//! client fan-out); wall-clock numbers vary with the machine, the
//! contract checks (every response 200, nothing shed, clean drain) do
//! not.
//!
//! ```bash
//! cargo run --release -p grimp-bench --bin load_probe
//! ```

use std::fmt::Write as _;
use std::time::{Duration, Instant};

use grimp::{CheckpointPolicy, GrimpConfig, GrimpConfigBuilder, Pipeline, ShutdownFlag, TaskKind};
use grimp_graph::FeatureSource;
use grimp_obs::NullSink;
use grimp_serve::{client, ModelSource, ServeConfig, Server};
use grimp_table::{ColumnKind, Schema, Table};

/// Requests fired at the server, split across [`CLIENTS`] threads.
const REQUESTS: usize = 60;
/// Concurrent client threads.
const CLIENTS: usize = 3;
/// Server worker threads (each holds its own restored model replica).
const WORKERS: usize = 2;
/// Rows per request body; a fifth arrive missing and must be imputed.
const BATCH_ROWS: usize = 40;

/// The deterministic training table: mixed categorical/numerical columns.
fn train_table(rows: usize) -> Table {
    let schema = Schema::from_pairs(&[
        ("site", ColumnKind::Categorical),
        ("status", ColumnKind::Categorical),
        ("load", ColumnKind::Numerical),
    ]);
    let mut t = Table::empty(schema);
    for i in 0..rows {
        let site = format!("s{}", i % 7);
        let status = format!("st{}", i % 3);
        let load = format!("{:.2}", ((i * 13) % 97) as f64 / 9.7);
        t.push_str_row(&[Some(&site), Some(&status), Some(&load)]);
    }
    t
}

/// One request body: `BATCH_ROWS` rows with every fifth cell missing.
fn request_csv() -> String {
    let mut csv = String::from("site,status,load\n");
    for i in 0..BATCH_ROWS {
        let site = if i % 5 == 0 {
            String::new()
        } else {
            format!("s{}", i % 7)
        };
        let load = if i % 5 == 3 {
            String::new()
        } else {
            format!("{:.2}", ((i * 13) % 97) as f64 / 9.7)
        };
        let _ = writeln!(csv, "{site},st{},{load}", i % 3);
    }
    csv
}

fn probe_config(ckpt: Option<&std::path::Path>) -> GrimpConfig {
    let mut b = GrimpConfigBuilder::from_config(GrimpConfig::fast())
        .seed(11)
        .max_epochs(6)
        .patience(6);
    if let Some(dir) = ckpt {
        b = b.checkpointing(CheckpointPolicy {
            dir: Some(dir.to_path_buf()),
            ..Default::default()
        });
    }
    let mut cfg = b.build().expect("probe config is valid");
    cfg.task_kind = TaskKind::Attention;
    cfg.features = FeatureSource::FastText;
    cfg
}

/// The percentile (0..=100) of a sorted latency slice, in milliseconds.
fn percentile_ms(sorted: &[Duration], pct: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = ((pct / 100.0) * (sorted.len() - 1) as f64).round() as usize;
    sorted[rank.min(sorted.len() - 1)].as_secs_f64() * 1e3
}

fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.6}")
    } else {
        "null".to_string()
    }
}

fn main() {
    let train = train_table(120);
    let ckpt_dir = std::env::temp_dir().join(format!("grimp-load-probe-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&ckpt_dir);
    std::fs::create_dir_all(&ckpt_dir).expect("create checkpoint dir");
    let fit_start = Instant::now();
    Pipeline::new(probe_config(Some(&ckpt_dir)))
        .expect("probe config builds a pipeline")
        .fit(&train)
        .expect("probe fit succeeds");
    let fit_seconds = fit_start.elapsed().as_secs_f64();

    let cfg = ServeConfig {
        workers: WORKERS,
        queue_depth: REQUESTS, // nothing sheds: this probe measures latency
        request_deadline: Some(Duration::from_secs(60)),
        ..Default::default()
    };
    let source = ModelSource {
        pipeline: Pipeline::new(probe_config(None)).expect("serving pipeline builds"),
        train: train.clone(),
        checkpoint_dir: ckpt_dir.clone(),
    };
    let flag = ShutdownFlag::new();
    let server = Server::bind(cfg, source, flag.clone(), Box::new(NullSink))
        .expect("server binds and restores the checkpoint");
    let addr = server.local_addr().expect("bound address").to_string();
    let handle = std::thread::spawn(move || server.run());

    let body = request_csv();
    // Warm-up: every worker restores its replica on its first request.
    for _ in 0..WORKERS {
        let resp = client::impute(&addr, &body).expect("warm-up request");
        assert_eq!(resp.status, 200, "warm-up must impute");
    }

    let start = Instant::now();
    let mut clients = Vec::with_capacity(CLIENTS);
    for _ in 0..CLIENTS {
        let addr = addr.clone();
        let body = body.clone();
        // REQUESTS is a multiple of CLIENTS, so the split is exact.
        let n = REQUESTS / CLIENTS;
        clients.push(std::thread::spawn(move || {
            let mut latencies = Vec::with_capacity(n);
            for _ in 0..n {
                let t0 = Instant::now();
                let resp = client::impute(&addr, &body).expect("impute request");
                latencies.push(t0.elapsed());
                assert_eq!(resp.status, 200, "every probe request imputes");
                let out = String::from_utf8(resp.body).expect("CSV response is UTF-8");
                let imputed = grimp_table::csv::read_csv_str(&out).expect("response parses");
                assert_eq!(imputed.n_missing(), 0, "response is fully imputed");
            }
            latencies
        }));
    }
    let mut latencies: Vec<Duration> = Vec::with_capacity(REQUESTS);
    for c in clients {
        latencies.extend(c.join().expect("client thread finishes"));
    }
    let total_seconds = start.elapsed().as_secs_f64();

    flag.request();
    let report = handle
        .join()
        .expect("server thread finishes")
        .expect("server ran to a drain report");
    assert!(report.clean, "probe load drains clean");
    assert_eq!(report.shed, 0, "queue was sized to shed nothing");
    assert_eq!(report.panics, 0, "probe load panics no handler");
    let _ = std::fs::remove_dir_all(&ckpt_dir);

    latencies.sort();
    let p50 = percentile_ms(&latencies, 50.0);
    let p99 = percentile_ms(&latencies, 99.0);
    let requests_per_sec = REQUESTS as f64 / total_seconds;
    let rows_per_sec = (REQUESTS * BATCH_ROWS) as f64 / total_seconds;

    let mut json = String::from("{\n");
    let _ = write!(
        json,
        "  \"requests\": {REQUESTS},\n  \"client_threads\": {CLIENTS},\n  \
         \"workers\": {WORKERS},\n  \"batch_rows\": {BATCH_ROWS},\n  \
         \"fit_seconds\": {},\n  \"total_seconds\": {},\n  \
         \"requests_per_sec\": {},\n  \"rows_per_sec\": {},\n  \
         \"p50_ms\": {},\n  \"p99_ms\": {},\n  \"served\": {},\n  \
         \"shed\": {},\n  \"panics\": {},\n  \"workers_replaced\": {},\n  \
         \"respawns\": 0,\n  \"clean_drain\": true\n}}\n",
        json_f64(fit_seconds),
        json_f64(total_seconds),
        json_f64(requests_per_sec),
        json_f64(rows_per_sec),
        json_f64(p50),
        json_f64(p99),
        report.served,
        report.shed,
        report.panics,
        report.workers_replaced,
    );
    std::fs::write("BENCH_serve.json", &json).expect("write BENCH_serve.json");

    println!(
        "load   : {REQUESTS} requests x {BATCH_ROWS} rows from {CLIENTS} clients \
         against {WORKERS} workers in {total_seconds:.3}s"
    );
    println!("through: {requests_per_sec:.1} req/s, {rows_per_sec:.0} rows/s");
    println!("latency: p50 {p50:.1}ms, p99 {p99:.1}ms");
    println!(
        "drain  : clean, served {} (incl. warm-up), shed {}",
        report.served, report.shed
    );
}

//! **Table 1**: dataset statistics and GRIMP parameter counts.
//!
//! Prints, for every generated dataset: rows, columns, |C|, |N|, distinct
//! surface values, #FDs, the §5 difficulty metrics (S_avg, K_avg, F+_avg,
//! N+_avg) and the published parameter-count formulas (#P_s, ΣP_l, ΣP_a) —
//! next to the paper's values where it states them.

use grimp::ParamFormula;
use grimp_bench::{banner, write_csv, Profile, TablePrinter};
use grimp_datasets::{generate, DatasetId};
use grimp_metrics::dataset_stats;

/// One published Table 1 row: (abbr, rows, cols, |C|, |N|, distinct, #FD,
/// S, K, F+, N+).
type PaperRow = (
    &'static str,
    usize,
    usize,
    usize,
    usize,
    usize,
    usize,
    f64,
    f64,
    f64,
    f64,
);

const PAPER: [PaperRow; 10] = [
    ("AD", 3016, 14, 9, 5, 289, 2, 2.6, 13.3, 0.7, 2.9),
    ("AU", 690, 15, 9, 6, 957, 0, 2.7, 24.0, 0.6, 7.5),
    ("CO", 1473, 10, 8, 2, 65, 0, 0.0, -1.3, 0.5, 1.4),
    ("CR", 653, 16, 10, 6, 918, 0, 2.5, 20.9, 0.6, 7.0),
    ("FL", 1066, 13, 10, 3, 34, 0, 0.4, -1.1, 0.7, 0.9),
    ("IM", 4529, 11, 9, 2, 9829, 0, 7.2, 220.2, 0.5, 83.2),
    ("MM", 830, 6, 5, 1, 93, 0, 0.6, -1.2, 0.4, 1.8),
    ("TA", 5000, 12, 5, 7, 910, 6, 2.1, 12.1, 0.5, 7.5),
    ("TH", 470, 17, 14, 3, 255, 0, 0.3, -1.3, 0.7, 2.5),
    ("TT", 958, 9, 9, 0, 5, 0, -0.2, -1.6, 0.4, 1.0),
];

fn main() {
    // Table 1 always uses the full generated datasets (statistics are about
    // the data, not the training budget).
    banner(
        "Table 1 — dataset statistics and GRIMP parameter counts",
        Profile::Full,
    );
    let formula = ParamFormula::default();

    let mut table = TablePrinter::new(&[
        "ds", "rows", "cols", "|C|", "|N|", "distinct", "#FD", "S_avg", "K_avg", "F+_avg",
        "N+_avg", "#P_s", "ΣP_l", "ΣP_a",
    ]);
    let mut csv_rows = Vec::new();
    for (id, paper) in DatasetId::ALL.iter().zip(PAPER.iter()) {
        let d = generate(*id, 0);
        let s = dataset_stats(&d.table);
        let counts = formula.counts(s.cols);
        let row = vec![
            d.abbr.to_string(),
            s.rows.to_string(),
            s.cols.to_string(),
            s.n_cat.to_string(),
            s.n_num.to_string(),
            s.distinct.to_string(),
            d.fds.len().to_string(),
            format!("{:.1}", s.s_avg),
            format!("{:.1}", s.k_avg),
            format!("{:.1}", s.f_plus_avg),
            format!("{:.1}", s.n_plus_avg),
            counts.p_s.to_string(),
            counts.sigma_p_l.to_string(),
            counts.sigma_p_a.to_string(),
        ];
        csv_rows.push(row.clone());
        table.row(row);
        // the paper's row for eyeballing the shape match
        table.row(vec![
            format!("({})", paper.0),
            paper.1.to_string(),
            paper.2.to_string(),
            paper.3.to_string(),
            paper.4.to_string(),
            paper.5.to_string(),
            paper.6.to_string(),
            format!("{:.1}", paper.7),
            format!("{:.1}", paper.8),
            format!("{:.1}", paper.9),
            format!("{:.1}", paper.10),
            "=".into(),
            "=".into(),
            "=".into(),
        ]);
    }
    println!("{}", table.render());
    println!("rows in (parentheses) are the paper's published Table 1 values;");
    println!("'=' marks parameter counts that match the published formulas exactly.");
    let path = write_csv(
        "tab1_stats",
        &[
            "dataset",
            "rows",
            "cols",
            "cat",
            "num",
            "distinct",
            "fds",
            "s_avg",
            "k_avg",
            "f_plus",
            "n_plus",
            "p_s",
            "sigma_p_l",
            "sigma_p_a",
        ],
        &csv_rows,
    );
    println!("\ncsv: {}", path.display());
}

//! **Table 3**: imputation with input FDs on Adult (2 FDs) and Tax (6 FDs)
//! at 5/20/50 % missingness: FD-REPAIR, MissForest, FUNFOREST and GRIMP-A
//! (attention with the Weak-diagonal+FD `K` strategy).
//!
//! Expected shape (paper §4.3): FD-REPAIR worst (high precision, poor
//! recall — FDs cover only some attributes); FUNFOREST improves on
//! MissForest (up to +10 % accuracy) while converging faster; GRIMP-A best
//! on Adult, random forests competitive on Tax at high error rates.

use grimp_bench::*;
use grimp_datasets::DatasetId;

/// One published Table 3 row: (ds, error %, MISF t, FUNF t, GRIMP-A t,
/// FD acc, MISF acc, FUNF acc, GRIMP-A acc).
type PaperRow = (&'static str, u32, f64, f64, f64, f64, f64, f64, f64);

const PAPER: [PaperRow; 6] = [
    ("AD", 5, 13.03, 2.38, 496.60, 0.160, 0.733, 0.737, 0.766),
    ("AD", 20, 25.70, 6.05, 551.22, 0.115, 0.727, 0.732, 0.756),
    ("AD", 50, 22.50, 15.23, 537.90, 0.074, 0.657, 0.674, 0.693),
    ("TA", 5, 17.47, 6.00, 1117.54, 0.386, 0.689, 0.786, 0.808),
    ("TA", 20, 23.18, 7.62, 977.62, 0.309, 0.661, 0.757, 0.632),
    ("TA", 50, 27.94, 16.44, 751.93, 0.194, 0.571, 0.630, 0.586),
];

fn main() {
    let profile = Profile::from_env();
    banner("Table 3 — imputation with input FDs (Adult, Tax)", profile);

    let mut table = TablePrinter::new(&[
        "ds",
        "error %",
        "FD acc",
        "MISF acc",
        "FUNF acc",
        "GRI-A acc",
        "MISF t",
        "FUNF t",
        "GRI-A t",
    ]);
    let mut csv_rows = Vec::new();
    for id in [DatasetId::Adult, DatasetId::Tax] {
        let prepared = prepare(id, profile, 0);
        // For FD-REPAIR, accuracy is measured only through FD + fallback;
        // the paper computes accuracy over all injected cells — we do too.
        for &rate in &ERROR_RATES {
            let instance = corrupt(&prepared, rate, 4000 + (rate * 100.0) as u64);
            let mut accs = Vec::new();
            let mut times = Vec::new();
            for mut algo in tab3_algorithms(profile, 0, &prepared.fds) {
                let cell = run_cell(&prepared, &instance, algo.as_mut(), rate);
                accs.push(cell.eval.accuracy());
                times.push(cell.seconds);
                csv_rows.push(vec![
                    prepared.abbr.to_string(),
                    cell.algorithm.clone(),
                    format!("{rate:.2}"),
                    fmt_opt(cell.eval.accuracy(), 4),
                    fmt_opt(cell.eval.rmse(), 4),
                    format!("{:.2}", cell.seconds),
                ]);
            }
            table.row(vec![
                prepared.abbr.to_string(),
                format!("{:.0}", rate * 100.0),
                fmt_opt(accs[0], 3),
                fmt_opt(accs[1], 3),
                fmt_opt(accs[2], 3),
                fmt_opt(accs[3], 3),
                format!("{:.2}", times[1]),
                format!("{:.2}", times[2]),
                format!("{:.2}", times[3]),
            ]);
            eprintln!("  done {} @ {:.0}%", prepared.abbr, rate * 100.0);
        }
    }
    println!("{}", table.render());

    println!("-- paper's Table 3 for comparison --");
    let mut paper = TablePrinter::new(&[
        "ds",
        "error %",
        "FD acc",
        "MISF acc",
        "FUNF acc",
        "GRI-A acc",
        "MISF t",
        "FUNF t",
        "GRI-A t",
    ]);
    for (ds, e, t1, t2, t3, fd, misf, funf, gria) in PAPER {
        paper.row(vec![
            ds.to_string(),
            e.to_string(),
            format!("{fd:.3}"),
            format!("{misf:.3}"),
            format!("{funf:.3}"),
            format!("{gria:.3}"),
            format!("{t1:.2}"),
            format!("{t2:.2}"),
            format!("{t3:.2}"),
        ]);
    }
    println!("{}", paper.render());
    println!("expected shape: FD-REPAIR worst; FUNFOREST ≥ MissForest and faster;");
    println!("GRIMP-A strongest on Adult; forests competitive on Tax at high error.");

    let path = write_csv(
        "tab3_fd",
        &[
            "dataset",
            "algorithm",
            "rate",
            "accuracy",
            "rmse",
            "seconds",
        ],
        &csv_rows,
    );
    println!("\ncsv: {}", path.display());
}

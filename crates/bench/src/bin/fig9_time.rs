//! **Figure 9**: training time of every method over all datasets and
//! missingness levels.
//!
//! Reuses `target/experiments/fig8_accuracy.csv` when present (Figures 8
//! and 9 come from the same runs in the paper too); otherwise reruns the
//! grid. Reports the trends the paper highlights: GRIMP-attention among the
//! slowest, MissForest among the fastest, GRIMP/HOLO time *decreasing* with
//! more missingness while MissForest/DataWig train longer.

use std::fs;

use grimp_bench::*;
use grimp_datasets::DatasetId;

/// (dataset, algorithm, rate, seconds)
type TimeRow = (String, String, f64, f64);

fn load_from_fig8() -> Option<Vec<TimeRow>> {
    let text = fs::read_to_string("target/experiments/fig8_accuracy.csv").ok()?;
    let mut rows = Vec::new();
    for line in text.lines().skip(1) {
        let parts: Vec<&str> = line.split(',').collect();
        if parts.len() != 6 {
            return None;
        }
        rows.push((
            parts[0].to_string(),
            parts[1].to_string(),
            parts[2].parse().ok()?,
            parts[5].parse().ok()?,
        ));
    }
    (!rows.is_empty()).then_some(rows)
}

fn rerun(profile: Profile) -> Vec<TimeRow> {
    let mut rows = Vec::new();
    for &rate in &ERROR_RATES {
        for id in DatasetId::ALL {
            let prepared = prepare(id, profile, 0);
            let instance = corrupt(&prepared, rate, 1000 + (rate * 100.0) as u64);
            for mut algo in fig8_algorithms(profile, 0) {
                let cell = run_cell(&prepared, &instance, algo.as_mut(), rate);
                rows.push((cell.dataset.to_string(), cell.algorithm, rate, cell.seconds));
            }
            eprintln!("  done {} @ {:.0}%", prepared.abbr, rate * 100.0);
        }
    }
    rows
}

fn main() {
    let profile = Profile::from_env();
    banner("Figure 9 — training time (seconds)", profile);

    let rows = match load_from_fig8() {
        Some(rows) => {
            println!("(reusing timings from target/experiments/fig8_accuracy.csv)\n");
            rows
        }
        None => rerun(profile),
    };

    let algos: Vec<String> = {
        let mut seen = Vec::new();
        for (_, a, _, _) in &rows {
            if !seen.contains(a) {
                seen.push(a.clone());
            }
        }
        seen
    };

    for &rate in &ERROR_RATES {
        let mut table = TablePrinter::new(
            &std::iter::once("ds")
                .chain(algos.iter().map(|s| s.as_str()))
                .collect::<Vec<_>>(),
        );
        for id in DatasetId::ALL {
            let abbr = id.abbr();
            let mut out = vec![abbr.to_string()];
            for a in &algos {
                let t = rows
                    .iter()
                    .find(|(d, alg, r, _)| d == abbr && alg == a && (r - rate).abs() < 1e-9)
                    .map(|(_, _, _, t)| *t);
                out.push(fmt_opt(t, 2));
            }
            table.row(out);
        }
        println!("-- missingness {:.0} % --", rate * 100.0);
        println!("{}", table.render());
    }

    // Trend summary: per-method mean time at each rate.
    println!("-- mean seconds per method (trend check) --");
    let mut trend = TablePrinter::new(&["method", "5%", "20%", "50%", "trend"]);
    for a in &algos {
        let mean_at = |rate: f64| -> f64 {
            let ts: Vec<f64> = rows
                .iter()
                .filter(|(_, alg, r, _)| alg == a && (r - rate).abs() < 1e-9)
                .map(|(_, _, _, t)| *t)
                .collect();
            ts.iter().sum::<f64>() / ts.len().max(1) as f64
        };
        let (t5, t50) = (mean_at(0.05), mean_at(0.50));
        let trend_s = if t50 < t5 * 0.95 {
            "decreases with missingness"
        } else if t50 > t5 * 1.05 {
            "increases with missingness"
        } else {
            "flat"
        };
        trend.row(vec![
            a.clone(),
            format!("{t5:.2}"),
            format!("{:.2}", mean_at(0.20)),
            format!("{t50:.2}"),
            trend_s.to_string(),
        ]);
    }
    println!("{}", trend.render());
    println!("paper: GRIMP/HOLO terminate earlier with more missing data (less viable data),");
    println!("while MissForest/DataWig train longer in high-error configurations;");
    println!("GRIMP-attention often slowest, MissForest always among the fastest.");

    let csv_rows: Vec<Vec<String>> = rows
        .iter()
        .map(|(d, a, r, t)| vec![d.clone(), a.clone(), format!("{r:.2}"), format!("{t:.3}")])
        .collect();
    let path = write_csv(
        "fig9_time",
        &["dataset", "algorithm", "rate", "seconds"],
        &csv_rows,
    );
    println!("\ncsv: {}", path.display());
}

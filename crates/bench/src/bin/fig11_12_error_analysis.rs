//! **Figures 11–12**: distribution of wrong imputations per attribute value
//! on Thoracic (Fig. 11) and Contraceptive (Fig. 12), values sorted by
//! descending frequency, next to the expected wrong fraction
//! `E_v = 1 − f_v`.
//!
//! Expected shape (paper §5): every method imputes frequent values nearly
//! perfectly and fails on rare values — "all algorithms tend to have a very
//! high accuracy on frequent values, while failing frequently on rarer
//! values", tracking the expected curve.

use grimp::Grimp;
use grimp_baselines::{
    AimNetConfig, AimNetLike, DataWigConfig, DataWigLike, MissForest, MissForestConfig,
};
use grimp_bench::*;
use grimp_datasets::DatasetId;
use grimp_metrics::per_value_errors;
use grimp_table::{Imputer, Table};

fn main() {
    let profile = Profile::from_env();
    banner(
        "Figures 11–12 — per-value wrong-imputation distributions",
        profile,
    );

    let mut csv_rows = Vec::new();
    for (figure, id) in [(11, DatasetId::Thoracic), (12, DatasetId::Contraceptive)] {
        let prepared = prepare(id, profile, 0);
        // 50 % missingness maximises test coverage per value, as in §5
        let instance = corrupt(&prepared, 0.50, 6000);

        // run the method roster once
        let epochs = profile.baseline_epochs();
        let mut methods: Vec<(String, Table)> = Vec::new();
        let roster: Vec<Box<dyn Imputer>> = vec![
            Box::new(Grimp::new(profile.grimp_config().with_seed(0))),
            Box::new(MissForest::new(MissForestConfig::default())),
            Box::new(AimNetLike::new(AimNetConfig {
                epochs,
                ..Default::default()
            })),
            Box::new(DataWigLike::new(DataWigConfig {
                epochs,
                ..Default::default()
            })),
        ];
        for mut algo in roster {
            let imputed = algo.impute(&instance.dirty);
            methods.push((algo.name().to_string(), imputed));
            eprintln!("  {} done on {}", algo.name(), prepared.abbr);
        }
        let method_refs: Vec<(&str, &Table)> =
            methods.iter().map(|(n, t)| (n.as_str(), t)).collect();

        println!("-- Figure {figure}: {} --", prepared.abbr);
        // first four categorical attributes with a small active domain,
        // as in the paper's subplots
        let small_cols: Vec<usize> = (0..prepared.clean.n_columns())
            .filter(|&j| {
                prepared.clean.schema().column(j).kind == grimp_table::ColumnKind::Categorical
                    && (2..=4).contains(&prepared.clean.dictionary(j).len())
            })
            .take(4)
            .collect();
        for col in small_cols {
            let rows = per_value_errors(&prepared.clean, &instance.log, &method_refs, col);
            let mut table = TablePrinter::new(
                &["value", "freq", "expected"]
                    .into_iter()
                    .chain(methods.iter().map(|(n, _)| n.as_str()))
                    .collect::<Vec<_>>(),
            );
            for r in &rows {
                let mut cells = vec![
                    r.value.clone(),
                    format!("{:.2}", r.frequency),
                    format!("{:.2}", r.expected_wrong),
                ];
                for w in &r.wrong_fraction {
                    cells.push(fmt_opt(*w, 2));
                }
                table.row(cells);
                let mut csv = vec![
                    prepared.abbr.to_string(),
                    col.to_string(),
                    r.value.clone(),
                    format!("{:.4}", r.frequency),
                    format!("{:.4}", r.expected_wrong),
                ];
                for w in &r.wrong_fraction {
                    csv.push(fmt_opt(*w, 4));
                }
                csv_rows.push(csv);
            }
            println!(
                "attribute {} ({}): wrong-imputation fraction per value (freq-desc)",
                prepared.clean.schema().column(col).name,
                prepared.abbr
            );
            println!("{}", table.render());
        }
    }
    println!("expected shape: bars near 0 on the left (frequent values), near 1 on the");
    println!("right (rare values), across ALL methods, tracking expected = 1 - f_v.");

    let header: Vec<&str> = vec![
        "dataset",
        "column",
        "value",
        "frequency",
        "expected_wrong",
        "grimp",
        "missforest",
        "aimnet",
        "datawig",
    ];
    let path = write_csv("fig11_12_error_analysis", &header, &csv_rows);
    println!("\ncsv: {}", path.display());
}

//! Internal calibration probe (not a paper artifact): GRIMP hyperparameter
//! sweep on three representative datasets.
use grimp::{Grimp, GrimpConfig};
use grimp_bench::*;
use grimp_datasets::DatasetId;
use grimp_graph::{EmbdiConfig, FeatureSource};
use grimp_table::Imputer;

fn main() {
    let profile = Profile::Standard;
    let variants: Vec<(&str, GrimpConfig)> = vec![
        ("fast-base", GrimpConfig::fast()),
        (
            "ep120-p10",
            GrimpConfig {
                max_epochs: 120,
                patience: 10,
                ..GrimpConfig::fast()
            },
        ),
        (
            "lr5e3-ep150",
            GrimpConfig {
                lr: 5e-3,
                max_epochs: 150,
                patience: 12,
                ..GrimpConfig::fast()
            },
        ),
        (
            "wide",
            GrimpConfig {
                feature_dim: 32,
                gnn: grimp_gnn::GnnConfig {
                    layers: 2,
                    hidden: 48,
                    ..Default::default()
                },
                embed_dim: 48,
                merge_hidden: 96,
                max_epochs: 100,
                patience: 10,
                ..GrimpConfig::fast()
            },
        ),
    ];
    for id in [DatasetId::Mammogram, DatasetId::Adult, DatasetId::Flare] {
        let p = prepare(id, profile, 0);
        let inst = corrupt(&p, 0.2, 1);
        for (name, cfg) in &variants {
            let mut m = Grimp::new(cfg.clone().with_seed(0));
            let cell = run_cell(&p, &inst, &mut m as &mut dyn Imputer, 0.2);
            let rep = m.last_report().unwrap();
            println!(
                "{:>3} {:>12} acc={} rmse={} t={:.1}s epochs={} stopped={}",
                cell.dataset,
                name,
                fmt_opt(cell.eval.accuracy(), 3),
                fmt_opt(cell.eval.rmse(), 3),
                cell.seconds,
                rep.epochs_run,
                rep.early_stopped
            );
        }
        // EMBDI richer walks
        let mut cfg = GrimpConfig {
            max_epochs: 120,
            patience: 10,
            ..GrimpConfig::fast()
        }
        .with_features(FeatureSource::Embdi)
        .with_seed(0);
        cfg.embdi = EmbdiConfig {
            walks_per_node: 8,
            walk_length: 14,
            epochs: 3,
            ..Default::default()
        };
        let mut m = Grimp::new(cfg);
        let cell = run_cell(&p, &inst, &mut m as &mut dyn Imputer, 0.2);
        let rep = m.last_report().unwrap();
        println!(
            "{:>3} {:>12} acc={} rmse={} t={:.1}s epochs={}",
            cell.dataset,
            "embdi-rich",
            fmt_opt(cell.eval.accuracy(), 3),
            fmt_opt(cell.eval.rmse(), 3),
            cell.seconds,
            rep.epochs_run
        );
    }
}

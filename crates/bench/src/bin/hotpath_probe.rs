//! Hot-path benchmark probe: times GRIMP `fit_impute` on a 250-row Mammogram
//! instance with the optimized training hot path vs the legacy
//! pre-optimization path (reference GEMM kernels, fresh allocation per
//! ephemeral tensor, per-epoch feature clone) and writes `BENCH_hotpath.json`
//! in the working directory.
//!
//! Also measures the observability layer: the default (`NullSink`) path must
//! stay within 2% of the previously recorded fast time — instrumentation is
//! free when no sink is attached — and a fully traced (`MemorySink`) rep is
//! timed and cross-checked against `TrainReport::from_events`.
//!
//! Fully deterministic: fixed dataset seed, fixed corruption seed, fixed
//! model seed, early stopping disabled so both modes run the same epochs.
//!
//! ```bash
//! cargo run --release -p grimp-bench --bin hotpath_probe
//! ```

use std::fmt::Write as _;
use std::fs;

use grimp::{BackendKind, Grimp, GrimpConfig, Pipeline, ShutdownFlag, TaskKind, TrainReport};
use grimp_bench::{corrupt, prepare, Profile};
use grimp_datasets::DatasetId;
use grimp_gnn::GnnConfig;
use grimp_graph::FeatureSource;
use grimp_obs::{json, MemorySink};
use grimp_table::{inject_mcar, ColumnKind, Schema, Table, Value};
use rand::rngs::StdRng;
use rand::SeedableRng;

const ROWS: usize = 250;
const RATE: f64 = 0.2;
const REPS: usize = 5;
const EPOCHS: usize = 60;
/// The larger synthetic table for the serial-vs-parallel comparison: wide
/// enough that kernel time dominates, short-epoch so the probe stays fast.
const LARGE_ROWS: usize = 1000;
const LARGE_EPOCHS: usize = 12;
const LARGE_REPS: usize = 3;

/// First `n` rows of a table, dictionaries re-interned to stay minimal.
fn head(table: &Table, n: usize) -> Table {
    let schema: Schema = table.schema().clone();
    let mut out = Table::empty(schema);
    for i in 0..n.min(table.n_rows()) {
        let row: Vec<Value> = (0..table.n_columns())
            .map(|j| match table.get(i, j) {
                Value::Cat(_) => Value::Cat(out.intern(j, &table.display(i, j))),
                v => v,
            })
            .collect();
        out.push_value_row(&row);
    }
    out
}

/// A deterministic mixed-kind table with `rows` rows: three categorical
/// columns of varied cardinality plus two numericals.
fn large_synthetic(rows: usize) -> Table {
    let schema = Schema::from_pairs(&[
        ("site", ColumnKind::Categorical),
        ("device", ColumnKind::Categorical),
        ("status", ColumnKind::Categorical),
        ("load", ColumnKind::Numerical),
        ("temp", ColumnKind::Numerical),
    ]);
    let mut t = Table::empty(schema);
    for i in 0..rows {
        let site = format!("s{}", i % 23);
        let device = format!("d{}", (i * 7 + i / 11) % 31);
        let status = format!("st{}", i % 5);
        let load = format!("{:.2}", ((i * 13) % 97) as f64 / 9.7);
        let temp = format!("{:.2}", 15.0 + ((i * 29) % 53) as f64 / 5.3);
        t.push_str_row(&[
            Some(&site),
            Some(&device),
            Some(&status),
            Some(&load),
            Some(&temp),
        ]);
    }
    t
}

fn probe_config(legacy: bool) -> GrimpConfig {
    GrimpConfig {
        features: FeatureSource::FastText,
        feature_dim: 32,
        gnn: GnnConfig {
            layers: 2,
            hidden: 32,
            ..Default::default()
        },
        merge_hidden: 64,
        embed_dim: 32,
        task_kind: TaskKind::Attention,
        max_epochs: EPOCHS,
        patience: EPOCHS, // never early-stop: both modes run identical epochs
        lr: 2e-2,
        seed: 7,
        legacy_hot_path: legacy,
        ..GrimpConfig::paper()
    }
}

#[derive(Clone)]
struct ModeResult {
    seconds: f64,
    forward_s: f64,
    backward_s: f64,
    optim_s: f64,
    epochs_run: usize,
    first_epoch_allocs: u64,
    allocs_after_epoch1: u64,
    grad_norm_final: f64,
    grad_norm_max: f64,
    clip_activations: usize,
    anomalies_detected: usize,
    recoveries: usize,
    checkpoint_bytes: usize,
}

fn mode_result(report: &TrainReport) -> ModeResult {
    let allocs = report.epoch_allocs();
    let norms = report.grad_norms();
    ModeResult {
        seconds: report.seconds,
        forward_s: report.forward_s,
        backward_s: report.backward_s,
        optim_s: report.optim_s,
        epochs_run: report.epochs_run,
        first_epoch_allocs: allocs.first().copied().unwrap_or(0),
        allocs_after_epoch1: allocs.iter().skip(1).sum(),
        grad_norm_final: norms.last().copied().unwrap_or(0.0),
        grad_norm_max: norms.iter().copied().fold(0.0, f64::max),
        clip_activations: report.clip_activations,
        anomalies_detected: report.anomalies_detected(),
        recoveries: report.recoveries,
        checkpoint_bytes: report.checkpoint_bytes,
    }
}

/// The probe config with every governance feature armed but never firing:
/// an unreachable deadline, an unreachable memory budget, and an installed
/// (never requested) shutdown flag. Measures what governed *checks* cost
/// on the hot path when no limit is hit — the common production case.
fn governed_config() -> GrimpConfig {
    let mut cfg = probe_config(false);
    cfg.deadline_secs = Some(1e9);
    cfg.memory_budget_mb = Some(1 << 20);
    cfg.shutdown = Some(ShutdownFlag::new());
    cfg
}

fn run_config(dirty: &Table, cfg: &GrimpConfig) -> ModeResult {
    run_config_n(dirty, cfg, REPS)
}

fn run_config_n(dirty: &Table, cfg: &GrimpConfig, reps: usize) -> ModeResult {
    let mut best: Option<ModeResult> = None;
    for _ in 0..reps {
        let mut model = Grimp::new(cfg.clone());
        let _ = model.fit_impute(dirty);
        let report = model.last_report().expect("fit_impute sets a report");
        assert!(!report.deadline_hit && !report.interrupted && report.downscales.is_empty());
        let result = mode_result(report);
        if best.as_ref().is_none_or(|b| result.seconds < b.seconds) {
            best = Some(result);
        }
    }
    best.expect("at least one rep")
}

/// One fit + impute; returns per-epoch loss bits and the imputed cells for
/// bit-identity comparison across backends.
fn run_once_for_bits(dirty: &Table, cfg: GrimpConfig) -> (Vec<u32>, Vec<u32>, Vec<String>) {
    let mut model = Grimp::new(cfg);
    let imputed = model.fit_impute(dirty);
    let report = model.last_report().expect("fit_impute sets a report");
    let bits = |v: Vec<f32>| v.into_iter().map(f32::to_bits).collect::<Vec<u32>>();
    let mut cells = Vec::with_capacity(imputed.n_rows() * imputed.n_columns());
    for i in 0..imputed.n_rows() {
        for j in 0..imputed.n_columns() {
            cells.push(imputed.display(i, j));
        }
    }
    (
        bits(report.train_losses()),
        bits(report.val_losses()),
        cells,
    )
}

/// The parallel backend's core contract: its run must be **bit-identical**
/// to the serial one — same per-epoch losses, same imputed table. Holds on
/// any machine and any thread count; this is what makes the recorded
/// speedup a pure win rather than a numerical trade.
fn assert_backend_parity(dirty: &Table, label: &str, serial: GrimpConfig, parallel: GrimpConfig) {
    let s = run_once_for_bits(dirty, serial);
    let p = run_once_for_bits(dirty, parallel);
    assert_eq!(s.0, p.0, "{label}: train losses diverged across backends");
    assert_eq!(s.1, p.1, "{label}: val losses diverged across backends");
    assert_eq!(s.2, p.2, "{label}: imputed cells diverged across backends");
}

fn run_mode(dirty: &Table, legacy: bool) -> ModeResult {
    let mut best: Option<ModeResult> = None;
    for _ in 0..REPS {
        let mut model = Grimp::new(probe_config(legacy));
        let _ = model.fit_impute(dirty);
        let report = model.last_report().expect("fit_impute sets a report");
        let result = mode_result(report);
        if best.as_ref().is_none_or(|b| result.seconds < b.seconds) {
            best = Some(result);
        }
    }
    best.expect("at least one rep")
}

/// Best-of-REPS fully traced run (every event recorded in a `MemorySink`),
/// cross-checked against the event-stream replay. Returns the mode result
/// plus the event count of one run.
fn run_traced(dirty: &Table) -> (ModeResult, usize) {
    let pipeline = Pipeline::new(probe_config(false)).expect("probe config is valid");
    let mut best: Option<ModeResult> = None;
    let mut events = 0usize;
    for _ in 0..REPS {
        let mut sink = MemorySink::new();
        let fitted = pipeline
            .fit_traced(dirty, &mut sink)
            .expect("probe table has columns");
        let report = fitted.report();
        let replayed = TrainReport::from_events(sink.events());
        assert_eq!(
            replayed.train_losses(),
            report.train_losses(),
            "event-stream replay diverged from the live report"
        );
        assert_eq!(replayed.epochs_run, report.epochs_run);
        events = sink.len();
        let result = mode_result(report);
        if best.as_ref().is_none_or(|b| result.seconds < b.seconds) {
            best = Some(result);
        }
    }
    (best.expect("at least one rep"), events)
}

/// Allowed wall-clock excess over the recorded baseline: 2% relative, with
/// an absolute floor of 0.15 ms/epoch. The instrumentation + per-column
/// guard work under test costs microseconds per epoch, so any genuine
/// regression (anything that rescans data inside the epoch loop) clears
/// both bounds by orders of magnitude; the floor only absorbs cross-process
/// scheduler/cache noise on an otherwise-loaded machine.
fn overhead_budget(baseline_seconds: f64, epochs: usize) -> f64 {
    (0.02 * baseline_seconds).max(1.5e-4 * epochs as f64)
}

/// `fast.seconds` from a previously written BENCH_hotpath.json, if any.
fn previous_fast_seconds() -> Option<f64> {
    let text = fs::read_to_string("BENCH_hotpath.json").ok()?;
    json::parse(&text)
        .ok()?
        .get("fast")?
        .get("seconds")?
        .as_f64()
}

/// A JSON number literal for `v` — `null` when non-finite, because a
/// diverged run's NaN loss or inf gradient norm must still produce a file
/// any strict JSON parser (e.g. Python's) accepts.
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.6}")
    } else {
        "null".to_string()
    }
}

fn mode_json(out: &mut String, label: &str, r: &ModeResult) {
    let _ = write!(
        out,
        "  \"{label}\": {{\n    \"seconds\": {},\n    \"forward_s\": {},\n    \
         \"backward_s\": {},\n    \"optim_s\": {},\n    \"epochs_run\": {},\n    \
         \"first_epoch_allocs\": {},\n    \"allocs_after_epoch1\": {},\n    \
         \"grad_norm_final\": {},\n    \"grad_norm_max\": {},\n    \
         \"clip_activations\": {},\n    \"anomalies_detected\": {},\n    \
         \"recoveries\": {},\n    \"checkpoint_bytes\": {}\n  }}",
        json_f64(r.seconds),
        json_f64(r.forward_s),
        json_f64(r.backward_s),
        json_f64(r.optim_s),
        r.epochs_run,
        r.first_epoch_allocs,
        r.allocs_after_epoch1,
        json_f64(r.grad_norm_final),
        json_f64(r.grad_norm_max),
        r.clip_activations,
        r.anomalies_detected,
        r.recoveries,
        r.checkpoint_bytes
    );
}

/// `--threads N` from argv; defaults to the machine's core count.
fn threads_arg() -> usize {
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == "--threads" {
            let raw = args.next().unwrap_or_default();
            return raw
                .parse()
                .ok()
                .filter(|&n| n >= 1)
                .unwrap_or_else(|| panic!("--threads {raw}: expected a positive integer"));
        }
    }
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

fn main() {
    let threads = threads_arg();
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let prepared = prepare(DatasetId::Mammogram, Profile::Standard, 0);
    let clean = head(&prepared.clean, ROWS);
    let capped = grimp_bench::Prepared { clean, ..prepared };
    let instance = corrupt(&capped, RATE, 1);

    let baseline_fast_seconds = previous_fast_seconds();
    let mut fast = run_mode(&instance.dirty, false);
    // The overhead budget compares against a baseline recorded by a
    // previous process, so transient machine load shows up as phantom
    // overhead. Best-of-REPS noise runs ±3% on a busy box; when the first
    // batch lands over budget, re-measure up to twice and keep the minimum
    // — a real regression stays over budget on every retry.
    if let Some(b) = baseline_fast_seconds {
        for _ in 0..2 {
            if fast.seconds - b < overhead_budget(b, fast.epochs_run) {
                break;
            }
            let retry = run_mode(&instance.dirty, false);
            if retry.seconds < fast.seconds {
                fast = retry;
            }
        }
    }
    let legacy = run_mode(&instance.dirty, true);
    let (traced, trace_events) = run_traced(&instance.dirty);
    // Governed mode (deadline + budget + shutdown flag armed, never firing)
    // is compared against the fast run measured in this same process, with
    // the same noise-retry policy as the cross-process baseline check.
    let mut governed = run_config(&instance.dirty, &governed_config());
    for _ in 0..2 {
        if governed.seconds - fast.seconds < overhead_budget(fast.seconds, fast.epochs_run) {
            break;
        }
        let retry = run_config(&instance.dirty, &governed_config());
        if retry.seconds < governed.seconds {
            governed = retry;
        }
    }
    // Parallel kernel backend: timed on Mammogram-250 and on the larger
    // synthetic table, with bit-identity to serial asserted on both.
    let mut par_cfg = probe_config(false);
    par_cfg.backend = BackendKind::Parallel { threads };
    let parallel = run_config(&instance.dirty, &par_cfg);
    assert_backend_parity(
        &instance.dirty,
        "mammogram-250",
        probe_config(false),
        par_cfg.clone(),
    );

    let mut large_dirty = large_synthetic(LARGE_ROWS);
    inject_mcar(&mut large_dirty, RATE, &mut StdRng::seed_from_u64(2));
    let large_config = |backend: BackendKind| {
        let mut cfg = probe_config(false);
        cfg.max_epochs = LARGE_EPOCHS;
        cfg.patience = LARGE_EPOCHS;
        cfg.backend = backend;
        cfg
    };
    let large_serial = run_config_n(&large_dirty, &large_config(BackendKind::Serial), LARGE_REPS);
    let large_parallel = run_config_n(
        &large_dirty,
        &large_config(BackendKind::Parallel { threads }),
        LARGE_REPS,
    );
    assert_backend_parity(
        &large_dirty,
        "large-synthetic",
        large_config(BackendKind::Serial),
        large_config(BackendKind::Parallel { threads }),
    );

    let speedup = legacy.seconds / fast.seconds;
    let parallel_speedup = large_serial.seconds / large_parallel.seconds;
    let null_sink_overhead = baseline_fast_seconds.map(|b| (fast.seconds - b) / b);
    let trace_overhead = (traced.seconds - fast.seconds) / fast.seconds;
    let governance_overhead = (governed.seconds - fast.seconds) / fast.seconds;

    let mut json = String::from("{\n");
    let _ = write!(
        json,
        "  \"dataset\": \"mammogram\",\n  \"rows\": {ROWS},\n  \
         \"corruption_rate\": {RATE},\n  \"reps\": {REPS},\n  \
         \"config\": {{\"feature_dim\": 32, \"gnn_hidden\": 32, \"gnn_layers\": 2, \
         \"merge_hidden\": 64, \"embed_dim\": 32, \"max_epochs\": {EPOCHS}, \
         \"lr\": 0.02, \"seed\": 7}},\n"
    );
    mode_json(&mut json, "fast", &fast);
    json.push_str(",\n");
    mode_json(&mut json, "legacy", &legacy);
    json.push_str(",\n");
    mode_json(&mut json, "traced", &traced);
    json.push_str(",\n");
    mode_json(&mut json, "governed", &governed);
    json.push_str(",\n");
    mode_json(&mut json, "parallel", &parallel);
    json.push_str(",\n");
    mode_json(&mut json, "large_serial", &large_serial);
    json.push_str(",\n");
    mode_json(&mut json, "large_parallel", &large_parallel);
    let _ = write!(json, ",\n  \"cores\": {cores}");
    let _ = write!(json, ",\n  \"threads\": {threads}");
    let _ = write!(json, ",\n  \"large_rows\": {LARGE_ROWS}");
    let _ = write!(json, ",\n  \"large_epochs\": {LARGE_EPOCHS}");
    let _ = write!(
        json,
        ",\n  \"parallel_speedup\": {}",
        json_f64(parallel_speedup)
    );
    json.push_str(",\n  \"parallel_bit_identical\": true");
    let _ = write!(json, ",\n  \"trace_events\": {trace_events}");
    let _ = write!(json, ",\n  \"trace_overhead\": {trace_overhead:.4}");
    let _ = write!(
        json,
        ",\n  \"governance_overhead\": {governance_overhead:.4}"
    );
    match baseline_fast_seconds {
        Some(b) => {
            let _ = write!(json, ",\n  \"baseline_fast_seconds\": {b:.6}");
            let _ = write!(
                json,
                ",\n  \"null_sink_overhead\": {:.4}",
                null_sink_overhead.unwrap_or(0.0)
            );
        }
        None => {
            json.push_str(",\n  \"baseline_fast_seconds\": null");
            json.push_str(",\n  \"null_sink_overhead\": null");
        }
    }
    let _ = write!(json, ",\n  \"speedup\": {speedup:.3}\n}}\n");
    fs::write("BENCH_hotpath.json", &json).expect("write BENCH_hotpath.json");

    println!(
        "fast   : {:.3}s (fwd {:.3} bwd {:.3} opt {:.3}), allocs after epoch 1: {}",
        fast.seconds, fast.forward_s, fast.backward_s, fast.optim_s, fast.allocs_after_epoch1
    );
    println!(
        "legacy : {:.3}s (fwd {:.3} bwd {:.3} opt {:.3}), allocs after epoch 1: {}",
        legacy.seconds,
        legacy.forward_s,
        legacy.backward_s,
        legacy.optim_s,
        legacy.allocs_after_epoch1
    );
    println!("speedup: {speedup:.2}x over {} epochs", fast.epochs_run);
    println!(
        "traced : {:.3}s with {} events recorded ({:+.1}% vs null sink)",
        traced.seconds,
        trace_events,
        100.0 * trace_overhead
    );
    if let (Some(b), Some(overhead)) = (baseline_fast_seconds, null_sink_overhead) {
        println!(
            "nullsink overhead vs recorded baseline {b:.3}s: {:+.2}%",
            100.0 * overhead
        );
        let budget = overhead_budget(b, fast.epochs_run);
        assert!(
            fast.seconds - b < budget,
            "NullSink instrumentation + per-column divergence guard overhead \
             {:.2}% exceeds the budget of {budget:.3}s (baseline {b:.3}s, \
             now {:.3}s)",
            100.0 * overhead,
            fast.seconds
        );
    }
    println!(
        "governed: {:.3}s with deadline + budget + shutdown flag armed ({:+.1}% vs fast)",
        governed.seconds,
        100.0 * governance_overhead
    );
    let governance_budget = overhead_budget(fast.seconds, fast.epochs_run);
    assert!(
        governed.seconds - fast.seconds < governance_budget,
        "resource-governance checks cost {:.2}% — over the {governance_budget:.3}s \
         budget (fast {:.3}s, governed {:.3}s)",
        100.0 * governance_overhead,
        fast.seconds,
        governed.seconds
    );
    println!(
        "guards : grad norm final {:.3} / max {:.3}, {} clips, {} anomalies, {} recoveries",
        fast.grad_norm_final,
        fast.grad_norm_max,
        fast.clip_activations,
        fast.anomalies_detected,
        fast.recoveries
    );
    println!(
        "parallel: {:.3}s on mammogram with {threads} thread(s) ({cores} core(s)), \
         bit-identical to serial",
        parallel.seconds
    );
    println!(
        "large  : serial {:.3}s vs parallel {:.3}s over {} rows x {} epochs \
         ({parallel_speedup:.2}x), bit-identical",
        large_serial.seconds, large_parallel.seconds, LARGE_ROWS, LARGE_EPOCHS
    );
    // The 0-allocs-after-epoch-1 invariant must survive the backend swap:
    // the thread pool and its reduction scratch are allocated once at pool
    // creation, never per epoch.
    for (label, r) in [
        ("fast", &fast),
        ("parallel", &parallel),
        ("large_serial", &large_serial),
        ("large_parallel", &large_parallel),
    ] {
        assert_eq!(
            r.allocs_after_epoch1, 0,
            "{label}: workspace allocations after epoch 1 must stay at zero"
        );
    }
    // The end-to-end speedup gate only means something with real cores to
    // spread over; on narrow boxes the parity asserts above still ran.
    if cores >= 4 && threads >= 2 {
        assert!(
            parallel_speedup > 1.0,
            "parallel backend must beat serial end-to-end on {cores} cores \
             (serial {:.3}s, parallel {:.3}s)",
            large_serial.seconds,
            large_parallel.seconds
        );
    } else {
        println!(
            "speedup gate skipped: {cores} core(s) available, {threads} thread(s) requested \
             (needs >= 4 cores and >= 2 threads)"
        );
    }
}

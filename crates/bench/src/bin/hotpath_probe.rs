//! Hot-path benchmark probe: times GRIMP `fit_impute` on a 250-row Mammogram
//! instance with the optimized training hot path vs the legacy
//! pre-optimization path (reference GEMM kernels, fresh allocation per
//! ephemeral tensor, per-epoch feature clone) and writes `BENCH_hotpath.json`
//! in the working directory.
//!
//! Also measures the observability layer: the default (`NullSink`) path must
//! stay within 2% of the previously recorded fast time — instrumentation is
//! free when no sink is attached — and a fully traced (`MemorySink`) rep is
//! timed and cross-checked against `TrainReport::from_events`.
//!
//! Fully deterministic: fixed dataset seed, fixed corruption seed, fixed
//! model seed, early stopping disabled so both modes run the same epochs.
//!
//! ```bash
//! cargo run --release -p grimp-bench --bin hotpath_probe
//! ```

use std::fmt::Write as _;
use std::fs;

use grimp::{Grimp, GrimpConfig, Pipeline, ShutdownFlag, TaskKind, TrainReport};
use grimp_bench::{corrupt, prepare, Profile};
use grimp_datasets::DatasetId;
use grimp_gnn::GnnConfig;
use grimp_graph::FeatureSource;
use grimp_obs::{json, MemorySink};
use grimp_table::{Schema, Table, Value};

const ROWS: usize = 250;
const RATE: f64 = 0.2;
const REPS: usize = 5;
const EPOCHS: usize = 60;

/// First `n` rows of a table, dictionaries re-interned to stay minimal.
fn head(table: &Table, n: usize) -> Table {
    let schema: Schema = table.schema().clone();
    let mut out = Table::empty(schema);
    for i in 0..n.min(table.n_rows()) {
        let row: Vec<Value> = (0..table.n_columns())
            .map(|j| match table.get(i, j) {
                Value::Cat(_) => Value::Cat(out.intern(j, &table.display(i, j))),
                v => v,
            })
            .collect();
        out.push_value_row(&row);
    }
    out
}

fn probe_config(legacy: bool) -> GrimpConfig {
    GrimpConfig {
        features: FeatureSource::FastText,
        feature_dim: 32,
        gnn: GnnConfig {
            layers: 2,
            hidden: 32,
            ..Default::default()
        },
        merge_hidden: 64,
        embed_dim: 32,
        task_kind: TaskKind::Attention,
        max_epochs: EPOCHS,
        patience: EPOCHS, // never early-stop: both modes run identical epochs
        lr: 2e-2,
        seed: 7,
        legacy_hot_path: legacy,
        ..GrimpConfig::paper()
    }
}

#[derive(Clone)]
struct ModeResult {
    seconds: f64,
    forward_s: f64,
    backward_s: f64,
    optim_s: f64,
    epochs_run: usize,
    first_epoch_allocs: u64,
    allocs_after_epoch1: u64,
    grad_norm_final: f64,
    grad_norm_max: f64,
    clip_activations: usize,
    anomalies_detected: usize,
    recoveries: usize,
    checkpoint_bytes: usize,
}

fn mode_result(report: &TrainReport) -> ModeResult {
    let allocs = report.epoch_allocs();
    let norms = report.grad_norms();
    ModeResult {
        seconds: report.seconds,
        forward_s: report.forward_s,
        backward_s: report.backward_s,
        optim_s: report.optim_s,
        epochs_run: report.epochs_run,
        first_epoch_allocs: allocs.first().copied().unwrap_or(0),
        allocs_after_epoch1: allocs.iter().skip(1).sum(),
        grad_norm_final: norms.last().copied().unwrap_or(0.0),
        grad_norm_max: norms.iter().copied().fold(0.0, f64::max),
        clip_activations: report.clip_activations,
        anomalies_detected: report.anomalies_detected(),
        recoveries: report.recoveries,
        checkpoint_bytes: report.checkpoint_bytes,
    }
}

/// The probe config with every governance feature armed but never firing:
/// an unreachable deadline, an unreachable memory budget, and an installed
/// (never requested) shutdown flag. Measures what governed *checks* cost
/// on the hot path when no limit is hit — the common production case.
fn governed_config() -> GrimpConfig {
    let mut cfg = probe_config(false);
    cfg.deadline_secs = Some(1e9);
    cfg.memory_budget_mb = Some(1 << 20);
    cfg.shutdown = Some(ShutdownFlag::new());
    cfg
}

fn run_config(dirty: &Table, cfg: &GrimpConfig) -> ModeResult {
    let mut best: Option<ModeResult> = None;
    for _ in 0..REPS {
        let mut model = Grimp::new(cfg.clone());
        let _ = model.fit_impute(dirty);
        let report = model.last_report().expect("fit_impute sets a report");
        assert!(!report.deadline_hit && !report.interrupted && report.downscales.is_empty());
        let result = mode_result(report);
        if best.as_ref().is_none_or(|b| result.seconds < b.seconds) {
            best = Some(result);
        }
    }
    best.expect("at least one rep")
}

fn run_mode(dirty: &Table, legacy: bool) -> ModeResult {
    let mut best: Option<ModeResult> = None;
    for _ in 0..REPS {
        let mut model = Grimp::new(probe_config(legacy));
        let _ = model.fit_impute(dirty);
        let report = model.last_report().expect("fit_impute sets a report");
        let result = mode_result(report);
        if best.as_ref().is_none_or(|b| result.seconds < b.seconds) {
            best = Some(result);
        }
    }
    best.expect("at least one rep")
}

/// Best-of-REPS fully traced run (every event recorded in a `MemorySink`),
/// cross-checked against the event-stream replay. Returns the mode result
/// plus the event count of one run.
fn run_traced(dirty: &Table) -> (ModeResult, usize) {
    let pipeline = Pipeline::new(probe_config(false)).expect("probe config is valid");
    let mut best: Option<ModeResult> = None;
    let mut events = 0usize;
    for _ in 0..REPS {
        let mut sink = MemorySink::new();
        let fitted = pipeline
            .fit_traced(dirty, &mut sink)
            .expect("probe table has columns");
        let report = fitted.report();
        let replayed = TrainReport::from_events(sink.events());
        assert_eq!(
            replayed.train_losses(),
            report.train_losses(),
            "event-stream replay diverged from the live report"
        );
        assert_eq!(replayed.epochs_run, report.epochs_run);
        events = sink.len();
        let result = mode_result(report);
        if best.as_ref().is_none_or(|b| result.seconds < b.seconds) {
            best = Some(result);
        }
    }
    (best.expect("at least one rep"), events)
}

/// Allowed wall-clock excess over the recorded baseline: 2% relative, with
/// an absolute floor of 0.15 ms/epoch. The instrumentation + per-column
/// guard work under test costs microseconds per epoch, so any genuine
/// regression (anything that rescans data inside the epoch loop) clears
/// both bounds by orders of magnitude; the floor only absorbs cross-process
/// scheduler/cache noise on an otherwise-loaded machine.
fn overhead_budget(baseline_seconds: f64, epochs: usize) -> f64 {
    (0.02 * baseline_seconds).max(1.5e-4 * epochs as f64)
}

/// `fast.seconds` from a previously written BENCH_hotpath.json, if any.
fn previous_fast_seconds() -> Option<f64> {
    let text = fs::read_to_string("BENCH_hotpath.json").ok()?;
    json::parse(&text)
        .ok()?
        .get("fast")?
        .get("seconds")?
        .as_f64()
}

fn mode_json(out: &mut String, label: &str, r: &ModeResult) {
    let _ = write!(
        out,
        "  \"{label}\": {{\n    \"seconds\": {:.6},\n    \"forward_s\": {:.6},\n    \
         \"backward_s\": {:.6},\n    \"optim_s\": {:.6},\n    \"epochs_run\": {},\n    \
         \"first_epoch_allocs\": {},\n    \"allocs_after_epoch1\": {},\n    \
         \"grad_norm_final\": {:.6},\n    \"grad_norm_max\": {:.6},\n    \
         \"clip_activations\": {},\n    \"anomalies_detected\": {},\n    \
         \"recoveries\": {},\n    \"checkpoint_bytes\": {}\n  }}",
        r.seconds,
        r.forward_s,
        r.backward_s,
        r.optim_s,
        r.epochs_run,
        r.first_epoch_allocs,
        r.allocs_after_epoch1,
        r.grad_norm_final,
        r.grad_norm_max,
        r.clip_activations,
        r.anomalies_detected,
        r.recoveries,
        r.checkpoint_bytes
    );
}

fn main() {
    let prepared = prepare(DatasetId::Mammogram, Profile::Standard, 0);
    let clean = head(&prepared.clean, ROWS);
    let capped = grimp_bench::Prepared { clean, ..prepared };
    let instance = corrupt(&capped, RATE, 1);

    let baseline_fast_seconds = previous_fast_seconds();
    let mut fast = run_mode(&instance.dirty, false);
    // The overhead budget compares against a baseline recorded by a
    // previous process, so transient machine load shows up as phantom
    // overhead. Best-of-REPS noise runs ±3% on a busy box; when the first
    // batch lands over budget, re-measure up to twice and keep the minimum
    // — a real regression stays over budget on every retry.
    if let Some(b) = baseline_fast_seconds {
        for _ in 0..2 {
            if fast.seconds - b < overhead_budget(b, fast.epochs_run) {
                break;
            }
            let retry = run_mode(&instance.dirty, false);
            if retry.seconds < fast.seconds {
                fast = retry;
            }
        }
    }
    let legacy = run_mode(&instance.dirty, true);
    let (traced, trace_events) = run_traced(&instance.dirty);
    // Governed mode (deadline + budget + shutdown flag armed, never firing)
    // is compared against the fast run measured in this same process, with
    // the same noise-retry policy as the cross-process baseline check.
    let mut governed = run_config(&instance.dirty, &governed_config());
    for _ in 0..2 {
        if governed.seconds - fast.seconds < overhead_budget(fast.seconds, fast.epochs_run) {
            break;
        }
        let retry = run_config(&instance.dirty, &governed_config());
        if retry.seconds < governed.seconds {
            governed = retry;
        }
    }
    let speedup = legacy.seconds / fast.seconds;
    let null_sink_overhead = baseline_fast_seconds.map(|b| (fast.seconds - b) / b);
    let trace_overhead = (traced.seconds - fast.seconds) / fast.seconds;
    let governance_overhead = (governed.seconds - fast.seconds) / fast.seconds;

    let mut json = String::from("{\n");
    let _ = write!(
        json,
        "  \"dataset\": \"mammogram\",\n  \"rows\": {ROWS},\n  \
         \"corruption_rate\": {RATE},\n  \"reps\": {REPS},\n  \
         \"config\": {{\"feature_dim\": 32, \"gnn_hidden\": 32, \"gnn_layers\": 2, \
         \"merge_hidden\": 64, \"embed_dim\": 32, \"max_epochs\": {EPOCHS}, \
         \"lr\": 0.02, \"seed\": 7}},\n"
    );
    mode_json(&mut json, "fast", &fast);
    json.push_str(",\n");
    mode_json(&mut json, "legacy", &legacy);
    json.push_str(",\n");
    mode_json(&mut json, "traced", &traced);
    json.push_str(",\n");
    mode_json(&mut json, "governed", &governed);
    let _ = write!(json, ",\n  \"trace_events\": {trace_events}");
    let _ = write!(json, ",\n  \"trace_overhead\": {trace_overhead:.4}");
    let _ = write!(
        json,
        ",\n  \"governance_overhead\": {governance_overhead:.4}"
    );
    match baseline_fast_seconds {
        Some(b) => {
            let _ = write!(json, ",\n  \"baseline_fast_seconds\": {b:.6}");
            let _ = write!(
                json,
                ",\n  \"null_sink_overhead\": {:.4}",
                null_sink_overhead.unwrap_or(0.0)
            );
        }
        None => {
            json.push_str(",\n  \"baseline_fast_seconds\": null");
            json.push_str(",\n  \"null_sink_overhead\": null");
        }
    }
    let _ = write!(json, ",\n  \"speedup\": {speedup:.3}\n}}\n");
    fs::write("BENCH_hotpath.json", &json).expect("write BENCH_hotpath.json");

    println!(
        "fast   : {:.3}s (fwd {:.3} bwd {:.3} opt {:.3}), allocs after epoch 1: {}",
        fast.seconds, fast.forward_s, fast.backward_s, fast.optim_s, fast.allocs_after_epoch1
    );
    println!(
        "legacy : {:.3}s (fwd {:.3} bwd {:.3} opt {:.3}), allocs after epoch 1: {}",
        legacy.seconds,
        legacy.forward_s,
        legacy.backward_s,
        legacy.optim_s,
        legacy.allocs_after_epoch1
    );
    println!("speedup: {speedup:.2}x over {} epochs", fast.epochs_run);
    println!(
        "traced : {:.3}s with {} events recorded ({:+.1}% vs null sink)",
        traced.seconds,
        trace_events,
        100.0 * trace_overhead
    );
    if let (Some(b), Some(overhead)) = (baseline_fast_seconds, null_sink_overhead) {
        println!(
            "nullsink overhead vs recorded baseline {b:.3}s: {:+.2}%",
            100.0 * overhead
        );
        let budget = overhead_budget(b, fast.epochs_run);
        assert!(
            fast.seconds - b < budget,
            "NullSink instrumentation + per-column divergence guard overhead \
             {:.2}% exceeds the budget of {budget:.3}s (baseline {b:.3}s, \
             now {:.3}s)",
            100.0 * overhead,
            fast.seconds
        );
    }
    println!(
        "governed: {:.3}s with deadline + budget + shutdown flag armed ({:+.1}% vs fast)",
        governed.seconds,
        100.0 * governance_overhead
    );
    let governance_budget = overhead_budget(fast.seconds, fast.epochs_run);
    assert!(
        governed.seconds - fast.seconds < governance_budget,
        "resource-governance checks cost {:.2}% — over the {governance_budget:.3}s \
         budget (fast {:.3}s, governed {:.3}s)",
        100.0 * governance_overhead,
        fast.seconds,
        governed.seconds
    );
    println!(
        "guards : grad norm final {:.3} / max {:.3}, {} clips, {} anomalies, {} recoveries",
        fast.grad_norm_final,
        fast.grad_norm_max,
        fast.clip_activations,
        fast.anomalies_detected,
        fast.recoveries
    );
}

//! **Table 2**: attention vs linear task heads — average accuracy and total
//! training time over all datasets at 5/20/50 % missingness.
//!
//! Expected shape (paper): attention slightly more accurate at every level
//! (0.707/0.679/0.637 vs 0.700/0.671/0.618), linear roughly an order of
//! magnitude faster.

use grimp::{Grimp, TaskKind};
use grimp_bench::*;
use grimp_datasets::DatasetId;
use grimp_table::Imputer;

fn main() {
    let profile = Profile::from_env();
    banner("Table 2 — attention vs linear task heads", profile);

    /// Paper values: (error %, strategy, accuracy, seconds).
    const PAPER: [(u32, &str, f64, u32); 6] = [
        (5, "Attention", 0.707, 307),
        (5, "Linear", 0.700, 26),
        (20, "Attention", 0.679, 294),
        (20, "Linear", 0.671, 28),
        (50, "Attention", 0.637, 258),
        (50, "Linear", 0.618, 27),
    ];

    let mut table = TablePrinter::new(&[
        "error %",
        "strategy",
        "accuracy",
        "time (s)",
        "paper acc",
        "paper t",
    ]);
    let mut csv_rows = Vec::new();
    for &rate in &ERROR_RATES {
        for kind in [TaskKind::Attention, TaskKind::Linear] {
            let mut acc_sum = 0.0;
            let mut acc_n = 0usize;
            let mut time_sum = 0.0;
            for id in DatasetId::ALL {
                let prepared = prepare(id, profile, 0);
                let instance = corrupt(&prepared, rate, 3000 + (rate * 100.0) as u64);
                let mut cfg = profile.grimp_config().with_seed(0);
                cfg.task_kind = kind;
                let mut model = Grimp::new(cfg);
                let cell = run_cell(&prepared, &instance, &mut model as &mut dyn Imputer, rate);
                if let Some(a) = cell.eval.accuracy() {
                    acc_sum += a;
                    acc_n += 1;
                }
                time_sum += cell.seconds;
            }
            let strategy = match kind {
                TaskKind::Attention => "Attention",
                TaskKind::Linear => "Linear",
            };
            let acc = acc_sum / acc_n.max(1) as f64;
            let paper = PAPER
                .iter()
                .find(|(e, s, _, _)| *e == (rate * 100.0) as u32 && *s == strategy)
                .expect("paper row");
            table.row(vec![
                format!("{:.0}", rate * 100.0),
                strategy.to_string(),
                format!("{acc:.3}"),
                format!("{time_sum:.0}"),
                format!("{:.3}", paper.2),
                paper.3.to_string(),
            ]);
            csv_rows.push(vec![
                format!("{:.2}", rate),
                strategy.to_string(),
                format!("{acc:.4}"),
                format!("{time_sum:.1}"),
            ]);
            eprintln!("  done {strategy} @ {:.0}%", rate * 100.0);
        }
    }
    println!("{}", table.render());
    println!("expected shape: attention > linear accuracy at every level, linear much faster.");
    let path = write_csv(
        "tab2_attention_linear",
        &["rate", "strategy", "accuracy", "seconds"],
        &csv_rows,
    );
    println!("\ncsv: {}", path.display());
}

//! **Figure 10**: the ablation of GRIMP's two core components —
//! GRIMP-MT (full model) vs GNN-MC (GNN, no multi-task learning) vs
//! EmbDI-MC (neither GNN nor MTL).
//!
//! Expected shape (paper §4.2): GRIMP-MT ≥ GNN-MC ≥ EmbDI-MC on average —
//! "the proposed modules have a significant impact on the accuracy".

use grimp_bench::*;
use grimp_datasets::DatasetId;

fn main() {
    let profile = Profile::from_env();
    banner(
        "Figure 10 — ablation (GRIMP-MT vs GNN-MC vs EmbDI-MC)",
        profile,
    );

    let variant_names: Vec<String> = fig10_algorithms(profile, 0)
        .iter()
        .map(|(n, _)| n.clone())
        .collect();
    let mut csv_rows = Vec::new();
    let mut sums = vec![0.0f64; variant_names.len()];
    let mut counts = vec![0usize; variant_names.len()];

    for &rate in &ERROR_RATES {
        let mut table = TablePrinter::new(
            &std::iter::once("ds")
                .chain(variant_names.iter().map(|s| s.as_str()))
                .collect::<Vec<_>>(),
        );
        for id in DatasetId::ALL {
            let prepared = prepare(id, profile, 0);
            let instance = corrupt(&prepared, rate, 2000 + (rate * 100.0) as u64);
            let mut row = vec![prepared.abbr.to_string()];
            for (v, (name, mut algo)) in fig10_algorithms(profile, 0).into_iter().enumerate() {
                let cell = run_cell(&prepared, &instance, algo.as_mut(), rate);
                let acc = cell.eval.accuracy();
                row.push(fmt_opt(acc, 3));
                if let Some(a) = acc {
                    sums[v] += a;
                    counts[v] += 1;
                }
                csv_rows.push(vec![
                    prepared.abbr.to_string(),
                    name,
                    format!("{rate:.2}"),
                    fmt_opt(acc, 4),
                    fmt_opt(cell.eval.rmse(), 4),
                ]);
            }
            table.row(row);
            eprintln!("  done {} @ {:.0}%", prepared.abbr, rate * 100.0);
        }
        println!(
            "-- missingness {:.0} % -- categorical accuracy",
            rate * 100.0
        );
        println!("{}", table.render());
    }

    println!("-- overall averages --");
    let mut avg = TablePrinter::new(&["variant", "mean accuracy"]);
    for (v, name) in variant_names.iter().enumerate() {
        avg.row(vec![
            name.clone(),
            format!("{:.3}", sums[v] / counts[v].max(1) as f64),
        ]);
    }
    println!("{}", avg.render());
    println!("paper: each disabled module costs accuracy (GRIMP-MT > GNN-MC > EmbDI-MC).");

    let path = write_csv(
        "fig10_ablation",
        &["dataset", "variant", "rate", "accuracy", "rmse"],
        &csv_rows,
    );
    println!("\ncsv: {}", path.display());
}

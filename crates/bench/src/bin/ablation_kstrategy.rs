//! **Extension ablation**: the four `K`-matrix strategies of Fig. 7
//! (Diagonal, Target column, Weak diagonal, Weak diagonal + FD) compared on
//! the two FD datasets. The paper fixes Weak diagonal as default and uses
//! +FD for GRIMP-A; this bin measures all four side by side.

use grimp::{Grimp, KStrategy};
use grimp_bench::*;
use grimp_datasets::DatasetId;
use grimp_table::Imputer;

fn main() {
    let profile = Profile::from_env();
    banner(
        "Ablation — attention K-matrix strategies (Fig. 7 variants)",
        profile,
    );

    let strategies = [
        ("Diagonal", KStrategy::Diagonal),
        ("TargetColumn", KStrategy::TargetColumn),
        ("WeakDiagonal", KStrategy::WeakDiagonal),
        ("WeakDiagonal+FD", KStrategy::WeakDiagonalFd),
    ];
    let mut table = TablePrinter::new(&["ds", "rate", "strategy", "accuracy", "rmse"]);
    let mut csv_rows = Vec::new();
    for id in [DatasetId::Adult, DatasetId::Tax] {
        let prepared = prepare(id, profile, 0);
        for &rate in &[0.20] {
            let instance = corrupt(&prepared, rate, 8000);
            for (name, strategy) in strategies {
                let cfg = profile
                    .grimp_config()
                    .with_seed(0)
                    .with_k_strategy(strategy);
                let mut model = Grimp::with_fds(cfg, prepared.fds.clone());
                let cell = run_cell(&prepared, &instance, &mut model as &mut dyn Imputer, rate);
                table.row(vec![
                    prepared.abbr.to_string(),
                    format!("{:.0}%", rate * 100.0),
                    name.to_string(),
                    fmt_opt(cell.eval.accuracy(), 3),
                    fmt_opt(cell.eval.rmse(), 3),
                ]);
                csv_rows.push(vec![
                    prepared.abbr.to_string(),
                    format!("{rate:.2}"),
                    name.to_string(),
                    fmt_opt(cell.eval.accuracy(), 4),
                    fmt_opt(cell.eval.rmse(), 4),
                ]);
                eprintln!("  done {} {}", prepared.abbr, name);
            }
        }
    }
    println!("{}", table.render());
    println!("expected shape: WeakDiagonal ≥ Diagonal ≥ TargetColumn (context matters);");
    println!("+FD helps most on the FD-rich Tax dataset.");
    let path = write_csv(
        "ablation_kstrategy",
        &["dataset", "rate", "strategy", "accuracy", "rmse"],
        &csv_rows,
    );
    println!("\ncsv: {}", path.display());
}

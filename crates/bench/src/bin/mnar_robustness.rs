//! **Extension experiment** (paper §7: "GRIMP's data-driven solution can
//! handle systematic errors (MNAR) … we plan to evaluate this scenario in
//! follow-up work"): MCAR vs MNAR missingness at 20 % for GRIMP-FT,
//! MissForest and mode/mean.
//!
//! Under MNAR (rare values preferentially hidden) every method loses
//! accuracy — rare values are both harder (§5) and over-represented in the
//! test set — but learned models should degrade less than the mode floor.

use grimp::Grimp;
use grimp_baselines::{MeanMode, MissForest, MissForestConfig};
use grimp_bench::*;
use grimp_datasets::DatasetId;
use grimp_table::{inject_mnar, Imputer};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let profile = Profile::from_env();
    banner(
        "MNAR robustness — systematic vs random missingness @20%",
        profile,
    );

    let mut table = TablePrinter::new(&["ds", "method", "acc MCAR", "acc MNAR", "delta"]);
    let mut csv_rows = Vec::new();
    for id in [DatasetId::Thoracic, DatasetId::Flare, DatasetId::Mammogram] {
        let prepared = prepare(id, profile, 0);
        let mcar = corrupt(&prepared, 0.20, 8300);
        let mnar = {
            let mut dirty = prepared.clean.clone();
            let log = inject_mnar(&mut dirty, 0.20, &mut StdRng::seed_from_u64(8300));
            Instance { dirty, log }
        };
        let methods: Vec<Box<dyn Imputer>> = vec![
            Box::new(Grimp::new(profile.grimp_config().with_seed(0))),
            Box::new(MissForest::new(MissForestConfig::default())),
            Box::new(MeanMode),
        ];
        for mut algo in methods {
            let name = algo.name().to_string();
            let a_mcar = run_cell(&prepared, &mcar, algo.as_mut(), 0.20)
                .eval
                .accuracy()
                .unwrap_or(0.0);
            let a_mnar = run_cell(&prepared, &mnar, algo.as_mut(), 0.20)
                .eval
                .accuracy()
                .unwrap_or(0.0);
            table.row(vec![
                prepared.abbr.to_string(),
                name.clone(),
                format!("{a_mcar:.3}"),
                format!("{a_mnar:.3}"),
                format!("{:+.3}", a_mnar - a_mcar),
            ]);
            csv_rows.push(vec![
                prepared.abbr.to_string(),
                name,
                format!("{a_mcar:.4}"),
                format!("{a_mnar:.4}"),
            ]);
        }
        eprintln!("  done {}", prepared.abbr);
    }
    println!("{}", table.render());
    println!("expected shape: everyone drops under MNAR; the mode floor drops hardest");
    println!("(its frequent-value bet is exactly what MNAR removes from the test set).");
    let path = write_csv(
        "mnar_robustness",
        &["dataset", "method", "acc_mcar", "acc_mnar"],
        &csv_rows,
    );
    println!("\ncsv: {}", path.display());
}

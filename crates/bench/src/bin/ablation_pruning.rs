//! **Extension ablation** (paper §7 efficiency direction): GraphSAGE
//! neighbor-sampling caps. High-degree cell nodes (frequent values touch
//! thousands of rows) dominate aggregation cost; capping the sampled
//! neighborhood trades a little accuracy for time.

use grimp::Grimp;
use grimp_bench::*;
use grimp_datasets::DatasetId;
use grimp_table::Imputer;

fn main() {
    let profile = Profile::from_env();
    banner(
        "Ablation — GraphSAGE neighbor-sampling cap (graph pruning)",
        profile,
    );

    let caps: [(&str, Option<usize>); 4] = [
        ("full", None),
        ("cap 16", Some(16)),
        ("cap 8", Some(8)),
        ("cap 3", Some(3)),
    ];
    let mut table = TablePrinter::new(&["ds", "cap", "accuracy", "rmse", "seconds"]);
    let mut csv_rows = Vec::new();
    for id in [DatasetId::Adult, DatasetId::TicTacToe] {
        let prepared = prepare(id, profile, 0);
        let instance = corrupt(&prepared, 0.20, 8200);
        for (name, cap) in caps {
            let mut cfg = profile.grimp_config().with_seed(0);
            cfg.gnn.neighbor_cap = cap;
            let mut model = Grimp::new(cfg);
            let cell = run_cell(&prepared, &instance, &mut model as &mut dyn Imputer, 0.20);
            table.row(vec![
                prepared.abbr.to_string(),
                name.to_string(),
                fmt_opt(cell.eval.accuracy(), 3),
                fmt_opt(cell.eval.rmse(), 3),
                format!("{:.2}", cell.seconds),
            ]);
            csv_rows.push(vec![
                prepared.abbr.to_string(),
                name.to_string(),
                fmt_opt(cell.eval.accuracy(), 4),
                fmt_opt(cell.eval.rmse(), 4),
                format!("{:.3}", cell.seconds),
            ]);
            eprintln!("  done {} {}", prepared.abbr, name);
        }
    }
    println!("{}", table.render());
    println!("expected shape: small caps reduce time with bounded accuracy cost;");
    println!("Tic-Tac-Toe (tiny domains → huge cell-node degrees) benefits most.");
    let path = write_csv(
        "ablation_pruning",
        &["dataset", "cap", "accuracy", "rmse", "seconds"],
        &csv_rows,
    );
    println!("\ncsv: {}", path.display());
}

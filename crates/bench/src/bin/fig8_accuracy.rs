//! **Figure 8** (and the timing data for **Figure 9**): imputation accuracy
//! of GRIMP-FT, GRIMP-E and the five baselines over all ten datasets at
//! 5/20/50 % MCAR missingness.
//!
//! Prints one table per missingness level (categorical accuracy; normalized
//! RMSE for numerical cells in parentheses), the overall average accuracy
//! per method (the paper's "GRIMP with EMBDI obtains 0.684 …" comparison)
//! and the average rank (paper: GRIMP ranks 1.6, always in the top 3).

use grimp_bench::*;
use grimp_datasets::DatasetId;
use grimp_metrics::average_ranks;

fn main() {
    let profile = Profile::from_env();
    banner(
        "Figure 8 — imputation accuracy vs baselines (+ Figure 9 timing data)",
        profile,
    );

    let mut all_cells: Vec<CellResult> = Vec::new();
    let algo_names: Vec<String> = fig8_algorithms(profile, 0)
        .iter()
        .map(|a| a.name().to_string())
        .collect();

    for &rate in &ERROR_RATES {
        let mut table = TablePrinter::new(
            &std::iter::once("ds")
                .chain(algo_names.iter().map(|s| s.as_str()))
                .collect::<Vec<_>>(),
        );
        for id in DatasetId::ALL {
            let prepared = prepare(id, profile, 0);
            let instance = corrupt(&prepared, rate, 1000 + (rate * 100.0) as u64);
            let mut row = vec![prepared.abbr.to_string()];
            for mut algo in fig8_algorithms(profile, 0) {
                let cell = run_cell(&prepared, &instance, algo.as_mut(), rate);
                row.push(format!(
                    "{} ({})",
                    fmt_opt(cell.eval.accuracy(), 3),
                    fmt_opt(cell.eval.rmse(), 2)
                ));
                all_cells.push(cell);
            }
            table.row(row);
            eprintln!(
                "  done {abbr} @ {rate:.0}%",
                abbr = prepared.abbr,
                rate = rate * 100.0
            );
        }
        println!("-- missingness {:.0} % --  accuracy (rmse)", rate * 100.0);
        println!("{}", table.render());
    }

    // Overall averages (the paper's §4.2 headline numbers at 5 %).
    println!("-- overall average categorical accuracy per method --");
    let mut avg_table = TablePrinter::new(&["method", "5%", "20%", "50%", "avg rank@5%"]);
    // rank matrix at 5 %: datasets × methods
    let rank_scores: Vec<Vec<f64>> = DatasetId::ALL
        .iter()
        .map(|id| {
            let abbr = id.abbr();
            algo_names
                .iter()
                .map(|name| {
                    all_cells
                        .iter()
                        .find(|c| {
                            c.dataset == abbr
                                && &c.algorithm == name
                                && (c.rate - 0.05).abs() < 1e-9
                        })
                        .and_then(|c| c.eval.accuracy())
                        .unwrap_or(0.0)
                })
                .collect()
        })
        .collect();
    let ranks = average_ranks(&rank_scores);
    for (m, name) in algo_names.iter().enumerate() {
        let avg_at = |rate: f64| -> f64 {
            let cells: Vec<f64> = all_cells
                .iter()
                .filter(|c| &c.algorithm == name && (c.rate - rate).abs() < 1e-9)
                .filter_map(|c| c.eval.accuracy())
                .collect();
            cells.iter().sum::<f64>() / cells.len().max(1) as f64
        };
        avg_table.row(vec![
            name.clone(),
            format!("{:.3}", avg_at(0.05)),
            format!("{:.3}", avg_at(0.20)),
            format!("{:.3}", avg_at(0.50)),
            format!("{:.1}", ranks[m]),
        ]);
    }
    println!("{}", avg_table.render());
    println!("paper (full-size datasets): GRIMP-E 0.684, HOLO 0.665, MISF 0.648, TURL 0.608 @5%;");
    println!("GRIMP always top-3 with average rank 1.6; EmbDI-MC worst overall.");

    let csv_rows: Vec<Vec<String>> = all_cells
        .iter()
        .map(|c| {
            vec![
                c.dataset.to_string(),
                c.algorithm.clone(),
                format!("{:.2}", c.rate),
                fmt_opt(c.eval.accuracy(), 4),
                fmt_opt(c.eval.rmse(), 4),
                format!("{:.3}", c.seconds),
            ]
        })
        .collect();
    let path = write_csv(
        "fig8_accuracy",
        &[
            "dataset",
            "algorithm",
            "rate",
            "accuracy",
            "rmse",
            "seconds",
        ],
        &csv_rows,
    );
    println!("\ncsv: {}", path.display());
}

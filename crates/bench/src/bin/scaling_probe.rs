//! Scaling benchmark probe: trains GRIMP with neighbor-sampled mini-batches
//! on the large synthetic table at 5k / 50k / 250k rows, records throughput
//! (rows/sec) and the estimated peak footprint of the sampled vs full-graph
//! path at each size, and writes `BENCH_scaling.json` in the working
//! directory.
//!
//! The probe also proves the governor's third downscale rung end-to-end: the
//! 250k-row table is fitted under a memory budget the full-graph path cannot
//! admit (its estimated footprint exceeds the budget even at the dimension
//! floor), and the run must complete by degrading to sampled training — the
//! report's downscale ladder must end on the `sample` rung.
//!
//! Fully deterministic: fixed dataset seed, fixed corruption seed, fixed
//! model seed, early stopping disabled.
//!
//! ```bash
//! cargo run --release -p grimp-bench --bin scaling_probe
//! ```

use std::fmt::Write as _;
use std::fs;
use std::time::Instant;

use grimp::{
    estimate_footprint, table_to_wal_rows, BackendKind, DownscaleRung, FinetuneConfig, Grimp,
    GrimpConfig, Pipeline, SamplerConfig, TaskKind,
};
use grimp_datasets::generate_large;
use grimp_gnn::GnnConfig;
use grimp_graph::FeatureSource;
use grimp_table::{inject_mcar, Table};
use rand::rngs::StdRng;
use rand::SeedableRng;

const SIZES: [usize; 3] = [5_000, 50_000, 250_000];
const RATE: f64 = 0.05;
const EPOCHS: usize = 3;
/// Budget for the governed 250k-row run: far below the full-graph footprint
/// (which stays over budget even after the cap and dimension rungs bottom
/// out) yet comfortably above the sampled one, so admission *must* take the
/// sampling rung to proceed.
const BUDGET_MB: usize = 256;

fn probe_config() -> GrimpConfig {
    GrimpConfig {
        features: FeatureSource::FastText,
        feature_dim: 16,
        gnn: GnnConfig {
            layers: 1,
            hidden: 16,
            ..Default::default()
        },
        merge_hidden: 32,
        embed_dim: 16,
        task_kind: TaskKind::Linear,
        max_epochs: EPOCHS,
        patience: EPOCHS, // never early-stop: every size runs the same epochs
        // No per-task sample cap: the full-graph path must genuinely scale
        // with the table so the sampled-vs-full footprint gap is real.
        max_train_samples_per_task: None,
        seed: 7,
        backend: BackendKind::Parallel {
            threads: std::thread::available_parallelism().map_or(1, |n| n.get()),
        },
        ..GrimpConfig::fast()
    }
}

fn dirty_large(rows: usize) -> Table {
    let mut table = generate_large(rows, 0).table;
    inject_mcar(&mut table, RATE, &mut StdRng::seed_from_u64(1));
    table
}

struct SizeResult {
    rows: usize,
    seconds: f64,
    rows_per_sec: f64,
    epochs_run: usize,
    sampled_footprint_mb: f64,
    full_footprint_mb: f64,
    allocs_after_epoch1: u64,
    missing_filled: usize,
}

fn mb(bytes: u64) -> f64 {
    bytes as f64 / (1024.0 * 1024.0)
}

fn run_size(rows: usize) -> SizeResult {
    let dirty = dirty_large(rows);
    let mut cfg = probe_config();
    let full_footprint = estimate_footprint(&dirty, &cfg).total_bytes();
    cfg.sampler = Some(SamplerConfig {
        batch_rows: 4096,
        fanout: 8,
    });
    let sampled_footprint = estimate_footprint(&dirty, &cfg).total_bytes();
    let missing = dirty.n_missing();

    let start = Instant::now();
    let mut model = Grimp::new(cfg);
    let imputed = model.fit_impute(&dirty);
    let seconds = start.elapsed().as_secs_f64();
    assert_eq!(
        imputed.n_missing(),
        0,
        "{rows} rows: missing cells survived"
    );
    let report = model.last_report().expect("fit_impute sets a report");
    assert_eq!(report.sampler_batch_rows, Some(4096.min(rows)));
    let allocs_after_epoch1: u64 = report.epoch_allocs().iter().skip(1).sum();

    SizeResult {
        rows,
        seconds,
        rows_per_sec: rows as f64 / seconds,
        epochs_run: report.epochs_run,
        sampled_footprint_mb: mb(sampled_footprint),
        full_footprint_mb: mb(full_footprint),
        allocs_after_epoch1,
        missing_filled: missing,
    }
}

struct GovernedResult {
    seconds: f64,
    ladder: Vec<String>,
    batch_rows: usize,
    full_floor_over_budget: bool,
}

/// Fit the largest table under `BUDGET_MB` with *no* sampler configured:
/// admission has to walk the downscale ladder and land on the sampling rung,
/// or the run would be rejected — the full-graph activation footprint stays
/// over budget even at the ladder's cap and dimension floors.
fn run_governed(rows: usize) -> GovernedResult {
    let dirty = dirty_large(rows);
    let mut cfg = probe_config();
    cfg.memory_budget_mb = Some(BUDGET_MB);

    // The full-graph path truly cannot admit this table: even with the cap
    // and dimension rungs bottomed out, the footprint exceeds the budget.
    let mut floor = cfg.clone();
    floor.graph.max_cells_per_column = Some(16);
    floor.gnn.hidden = 4;
    floor.merge_hidden = 4;
    floor.embed_dim = 4;
    let floor_bytes = estimate_footprint(&dirty, &floor).total_bytes();
    let budget_bytes = BUDGET_MB as u64 * 1024 * 1024;
    let full_floor_over_budget = floor_bytes > budget_bytes;
    assert!(
        full_floor_over_budget,
        "probe premise broken: full-graph floor footprint {:.0} MB fits the \
         {BUDGET_MB} MB budget, so the sampling rung is not required",
        mb(floor_bytes)
    );

    let start = Instant::now();
    let mut model = Grimp::new(cfg);
    let imputed = model.fit_impute(&dirty);
    let seconds = start.elapsed().as_secs_f64();
    assert_eq!(
        imputed.n_missing(),
        0,
        "governed run: missing cells survived"
    );
    let report = model.last_report().expect("fit_impute sets a report");
    assert!(
        report
            .downscales
            .iter()
            .any(|d| d.rung == DownscaleRung::Sample),
        "governed run must take the sampling rung, got ladder {:?}",
        report.downscales
    );
    let batch_rows = report
        .sampler_batch_rows
        .expect("sampled training reports its batch size");
    GovernedResult {
        seconds,
        ladder: report.downscales.iter().map(|d| d.to_string()).collect(),
        batch_rows,
        full_floor_over_budget,
    }
}

struct AppendResult {
    base_rows: usize,
    base_fit_seconds: f64,
    appended_rows: usize,
    finetune_seconds: f64,
    rows_per_sec: f64,
    finetune_epochs: usize,
    path: String,
}

const APPEND_BASE_ROWS: usize = 20_000;
const APPEND_DELTA_ROWS: usize = 64;

/// Append throughput: fit a base model once, then measure the warm-start
/// fine-tune path for a small delta. The delta reuses rows from the base
/// table so no dictionary grows and the append must stay on the fine-tune
/// path — the whole point of incremental imputation is that this is far
/// cheaper than the base fit.
fn run_append() -> AppendResult {
    let dirty = dirty_large(APPEND_BASE_ROWS);
    let dir = std::env::temp_dir().join(format!("grimp-scaling-append-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).expect("append probe dir");

    let mut cfg = probe_config();
    cfg.checkpoint_dir = Some(dir.clone());
    cfg.checkpoint_every = 1;
    cfg.finetune = FinetuneConfig {
        epochs: 2,
        drift_band: 0.25,
    };
    let pipeline = Pipeline::new(cfg).expect("append probe config");

    let fit_start = Instant::now();
    pipeline.fit(&dirty).expect("append probe base fit");
    let base_fit_seconds = fit_start.elapsed().as_secs_f64();

    let mut rows = table_to_wal_rows(&dirty);
    rows.truncate(APPEND_DELTA_ROWS);

    let start = Instant::now();
    let outcome = pipeline.append(&dirty, &rows).expect("append probe append");
    let finetune_seconds = start.elapsed().as_secs_f64();
    assert_eq!(
        outcome.imputed.n_missing(),
        0,
        "append probe: missing cells survived"
    );
    assert_eq!(
        outcome.path.label(),
        "finetune",
        "append probe: delta with no dictionary growth must fine-tune"
    );
    let _ = fs::remove_dir_all(&dir);
    AppendResult {
        base_rows: APPEND_BASE_ROWS,
        base_fit_seconds,
        appended_rows: outcome.appended_rows,
        finetune_seconds,
        rows_per_sec: outcome.appended_rows as f64 / finetune_seconds,
        finetune_epochs: outcome.report.epochs_run,
        path: outcome.path.label().to_string(),
    }
}

fn main() {
    let mut results = Vec::new();
    for rows in SIZES {
        let r = run_size(rows);
        println!(
            "{:>7} rows: {:.2}s ({:.0} rows/sec), footprint sampled {:.1} MB vs \
             full {:.1} MB, {} missing filled, allocs after epoch 1: {}",
            r.rows,
            r.seconds,
            r.rows_per_sec,
            r.sampled_footprint_mb,
            r.full_footprint_mb,
            r.missing_filled,
            r.allocs_after_epoch1
        );
        results.push(r);
    }
    // The 0-allocs-after-epoch-1 invariant holds in sampled mode at every
    // size: batch workspaces are grown once and refilled in place.
    for r in &results {
        assert_eq!(
            r.allocs_after_epoch1, 0,
            "{} rows: workspace allocations after epoch 1 must stay at zero",
            r.rows
        );
        assert_eq!(r.epochs_run, EPOCHS, "{} rows: epoch count drifted", r.rows);
    }
    // Throughput must not collapse with size: sampled training keeps the
    // per-epoch training-vector work constant, so rows/sec should *grow*
    // with the table (amortizing fixed cost); require at least no worse
    // than a 4x drop from 5k to 250k to stay robust to machine noise.
    let (small, large) = (&results[0], &results[results.len() - 1]);
    assert!(
        large.rows_per_sec > small.rows_per_sec / 4.0,
        "throughput collapsed with size: {:.0} rows/sec at {} rows vs {:.0} at {}",
        small.rows_per_sec,
        small.rows,
        large.rows_per_sec,
        large.rows
    );

    let append = run_append();
    println!(
        "append: {} rows onto {} in {:.2}s ({:.0} rows/sec, {} fine-tune epoch(s)) \
         vs {:.2}s base fit",
        append.appended_rows,
        append.base_rows,
        append.finetune_seconds,
        append.rows_per_sec,
        append.finetune_epochs,
        append.base_fit_seconds
    );
    // The warm-start path must actually be incremental: appending a small
    // delta cannot cost as much as refitting the base from scratch.
    assert!(
        append.finetune_seconds < append.base_fit_seconds,
        "append probe: fine-tune ({:.2}s) is not cheaper than the base fit ({:.2}s)",
        append.finetune_seconds,
        append.base_fit_seconds
    );

    let governed = run_governed(SIZES[SIZES.len() - 1]);
    println!(
        "governed: 250k rows under {BUDGET_MB} MB in {:.2}s via ladder [{}] \
         (batch_rows {})",
        governed.seconds,
        governed.ladder.join(", "),
        governed.batch_rows
    );

    let mut json = String::from("{\n");
    let _ = write!(
        json,
        "  \"dataset\": \"scaling-synthetic\",\n  \"corruption_rate\": {RATE},\n  \
         \"epochs\": {EPOCHS},\n  \"config\": {{\"feature_dim\": 16, \
         \"gnn_hidden\": 16, \"gnn_layers\": 1, \"merge_hidden\": 32, \
         \"embed_dim\": 16, \"batch_rows\": 4096, \"fanout\": 8, \"seed\": 7}},\n  \
         \"sizes\": [\n"
    );
    for (i, r) in results.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"rows\": {}, \"seconds\": {:.3}, \"rows_per_sec\": {:.1}, \
             \"epochs_run\": {}, \"sampled_footprint_mb\": {:.1}, \
             \"full_footprint_mb\": {:.1}, \"missing_filled\": {}, \
             \"allocs_after_epoch1\": {}}}{}",
            r.rows,
            r.seconds,
            r.rows_per_sec,
            r.epochs_run,
            r.sampled_footprint_mb,
            r.full_footprint_mb,
            r.missing_filled,
            r.allocs_after_epoch1,
            if i + 1 < results.len() { "," } else { "" }
        );
    }
    json.push_str("  ],\n");
    let _ = writeln!(
        json,
        "  \"append\": {{\"base_rows\": {}, \"base_fit_seconds\": {:.3}, \
         \"appended_rows\": {}, \"finetune_epochs\": {}, \
         \"finetune_seconds\": {:.3}, \"rows_per_sec\": {:.1}, \
         \"path\": \"{}\"}},",
        append.base_rows,
        append.base_fit_seconds,
        append.appended_rows,
        append.finetune_epochs,
        append.finetune_seconds,
        append.rows_per_sec,
        append.path
    );
    let ladder = governed
        .ladder
        .iter()
        .map(|d| format!("\"{d}\""))
        .collect::<Vec<_>>()
        .join(", ");
    let _ = write!(
        json,
        "  \"governed_250k\": {{\"budget_mb\": {BUDGET_MB}, \"seconds\": {:.3}, \
         \"batch_rows\": {}, \"full_graph_floor_over_budget\": {}, \
         \"ladder\": [{ladder}]}}\n}}\n",
        governed.seconds, governed.batch_rows, governed.full_floor_over_budget
    );
    fs::write("BENCH_scaling.json", &json).expect("write BENCH_scaling.json");
    println!("wrote BENCH_scaling.json");
}

//! **Extension ablation**: GNN operator choice per sub-module — the paper's
//! §3.5 notes "each sub-module can use a different GNN architecture (e.g.,
//! l11 using GCN, l12 uses GraphSAGE…)" but evaluates only GraphSAGE.
//! This bin measures all-SAGE vs all-GCN vs the alternating mix.

use grimp::Grimp;
use grimp_bench::*;
use grimp_datasets::DatasetId;
use grimp_gnn::OperatorAssignment;
use grimp_table::Imputer;

fn main() {
    let profile = Profile::from_env();
    banner(
        "Ablation — GNN operator per sub-module (SAGE / GCN / mixed)",
        profile,
    );

    let operators = [
        ("all-SAGE", OperatorAssignment::AllSage),
        ("all-GCN", OperatorAssignment::AllGcn),
        ("alternating", OperatorAssignment::Alternating),
    ];
    let mut table = TablePrinter::new(&["ds", "operator", "accuracy", "rmse", "seconds"]);
    let mut csv_rows = Vec::new();
    for id in [
        DatasetId::Mammogram,
        DatasetId::Contraceptive,
        DatasetId::Flare,
    ] {
        let prepared = prepare(id, profile, 0);
        let instance = corrupt(&prepared, 0.20, 8400);
        for (name, op) in operators {
            let mut cfg = profile.grimp_config().with_seed(0);
            cfg.gnn.operator = op;
            let mut model = Grimp::new(cfg);
            let cell = run_cell(&prepared, &instance, &mut model as &mut dyn Imputer, 0.20);
            table.row(vec![
                prepared.abbr.to_string(),
                name.to_string(),
                fmt_opt(cell.eval.accuracy(), 3),
                fmt_opt(cell.eval.rmse(), 3),
                format!("{:.2}", cell.seconds),
            ]);
            csv_rows.push(vec![
                prepared.abbr.to_string(),
                name.to_string(),
                fmt_opt(cell.eval.accuracy(), 4),
                fmt_opt(cell.eval.rmse(), 4),
                format!("{:.3}", cell.seconds),
            ]);
            eprintln!("  done {} {}", prepared.abbr, name);
        }
    }
    println!("{}", table.render());
    println!("expected shape: operators within a few points of each other — the paper's");
    println!("claim that GRIMP is agnostic to the specific GNN model.");
    let path = write_csv(
        "ablation_operator",
        &["dataset", "operator", "accuracy", "rmse", "seconds"],
        &csv_rows,
    );
    println!("\ncsv: {}", path.display());
}

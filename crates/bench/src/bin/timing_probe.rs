//! Internal calibration probe (not a paper artifact): times one GRIMP cell.
use grimp_bench::*;
use grimp_datasets::DatasetId;

fn main() {
    let profile = Profile::from_env();
    for id in [DatasetId::Mammogram, DatasetId::Adult] {
        let p = prepare(id, profile, 0);
        let inst = corrupt(&p, 0.2, 1);
        for mut algo in fig8_algorithms(profile, 0) {
            let cell = run_cell(&p, &inst, algo.as_mut(), 0.2);
            println!(
                "{:>10} {:>18} acc={} rmse={} t={:.2}s",
                cell.dataset,
                cell.algorithm,
                fmt_opt(cell.eval.accuracy(), 3),
                fmt_opt(cell.eval.rmse(), 3),
                cell.seconds
            );
        }
    }
}

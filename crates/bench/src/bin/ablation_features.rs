//! **Extension ablation**: pre-trained feature sources (§3.4) — random
//! initialization vs FastText-substitute hashed n-grams (GRIMP-FT) vs EMBDI
//! local embeddings (GRIMP-E).
//!
//! Paper: "executions based on EMBDI features perform best on average,
//! neither of the two pre-trained features clearly surpasses the other in
//! all settings. Both solutions slightly outperform the random
//! initialization."

use grimp::Grimp;
use grimp_bench::*;
use grimp_datasets::DatasetId;
use grimp_graph::FeatureSource;
use grimp_table::Imputer;

fn main() {
    let profile = Profile::from_env();
    banner(
        "Ablation — pre-trained feature sources (rand / FT / EMBDI)",
        profile,
    );

    let sources = [
        FeatureSource::Random,
        FeatureSource::FastText,
        FeatureSource::Embdi,
    ];
    let datasets = [
        DatasetId::Mammogram,
        DatasetId::Flare,
        DatasetId::Contraceptive,
        DatasetId::Adult,
        DatasetId::TicTacToe,
    ];
    let mut table = TablePrinter::new(&["ds", "rand", "ft", "embdi"]);
    let mut csv_rows = Vec::new();
    let mut sums = [0.0f64; 3];
    for id in datasets {
        let prepared = prepare(id, profile, 0);
        let instance = corrupt(&prepared, 0.20, 8100);
        let mut row = vec![prepared.abbr.to_string()];
        for (k, source) in sources.into_iter().enumerate() {
            let cfg = profile.grimp_config().with_seed(0).with_features(source);
            let mut model = Grimp::new(cfg);
            let cell = run_cell(&prepared, &instance, &mut model as &mut dyn Imputer, 0.20);
            let acc = cell.eval.accuracy().unwrap_or(0.0);
            sums[k] += acc;
            row.push(format!("{acc:.3}"));
            csv_rows.push(vec![
                prepared.abbr.to_string(),
                source.label().to_string(),
                format!("{acc:.4}"),
                fmt_opt(cell.eval.rmse(), 4),
            ]);
            eprintln!("  done {} {}", prepared.abbr, source.label());
        }
        table.row(row);
    }
    table.row(vec![
        "mean".into(),
        format!("{:.3}", sums[0] / datasets.len() as f64),
        format!("{:.3}", sums[1] / datasets.len() as f64),
        format!("{:.3}", sums[2] / datasets.len() as f64),
    ]);
    println!("{}", table.render());
    println!("expected shape: both pre-trained sources ≥ random on average.");
    let path = write_csv(
        "ablation_features",
        &["dataset", "source", "accuracy", "rmse"],
        &csv_rows,
    );
    println!("\ncsv: {}", path.display());
}

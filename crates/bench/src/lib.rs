//! # grimp-bench
//!
//! The experiment harness regenerating every table and figure of the GRIMP
//! paper. Each `src/bin/*` binary reproduces one artifact (see DESIGN.md §4
//! for the full index); this library holds the shared machinery: dataset
//! preparation, the algorithm roster, per-cell experiment execution, result
//! accumulation and table/CSV rendering.
//!
//! ## Profiles
//!
//! The full published grid (10 datasets up to 5 000 rows × 3 missingness
//! levels × 8+ algorithms, 300-epoch GRIMP) is sized for a multi-day
//! campaign. Binaries therefore run a **standard** profile by default
//! (row-capped datasets, `GrimpConfig::fast()`), switchable via env vars:
//!
//! - `GRIMP_PROFILE=quick` — smoke profile (tiny row caps, few epochs);
//! - `GRIMP_PROFILE=full`  — the paper's full sizes and epoch budget.
//!
//! Every binary prints its active profile so recorded results are
//! self-describing, and writes machine-readable CSV under
//! `target/experiments/`.

#![warn(missing_docs)]

use std::fmt::Write as _;
use std::fs;
use std::path::PathBuf;
use std::time::Instant;

use rand::rngs::StdRng;
use rand::SeedableRng;

use grimp::{GnnMc, Grimp, GrimpConfig, KStrategy};
use grimp_baselines::{
    AimNetConfig, AimNetLike, DataWigConfig, DataWigLike, EmbdiMc, EmbdiMcConfig, FdRepair, Gain,
    GainConfig, KnnImputer, MeanMode, Mice, MiceConfig, Mida, MidaConfig, MissForest,
    MissForestConfig, TurlConfig, TurlSub,
};
use grimp_datasets::{generate, Dataset, DatasetId};
use grimp_graph::FeatureSource;
use grimp_metrics::{evaluate, EvalResult};
use grimp_table::{inject_mcar, CorruptionLog, FdSet, Imputer, Schema, Table};

/// The paper's three missingness proportions.
pub const ERROR_RATES: [f64; 3] = [0.05, 0.20, 0.50];

/// Execution profile controlling dataset sizes and training budgets.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Profile {
    /// Smoke test: tiny row caps, minimal epochs.
    Quick,
    /// Default: row-capped datasets with `GrimpConfig::fast()` shapes.
    Standard,
    /// The paper's full sizes and `GrimpConfig::paper()` budgets.
    Full,
}

impl Profile {
    /// Read the profile from `GRIMP_PROFILE` (default: standard).
    pub fn from_env() -> Profile {
        match std::env::var("GRIMP_PROFILE").as_deref() {
            Ok("quick") => Profile::Quick,
            Ok("full") => Profile::Full,
            _ => Profile::Standard,
        }
    }

    /// Row cap applied to generated datasets (`None` = full size).
    pub fn row_cap(self) -> Option<usize> {
        match self {
            Profile::Quick => Some(160),
            Profile::Standard => Some(500),
            Profile::Full => None,
        }
    }

    /// GRIMP configuration for this profile.
    pub fn grimp_config(self) -> GrimpConfig {
        match self {
            Profile::Quick => GrimpConfig {
                feature_dim: 16,
                gnn: grimp_gnn::GnnConfig {
                    layers: 2,
                    hidden: 16,
                    ..Default::default()
                },
                merge_hidden: 32,
                embed_dim: 16,
                max_epochs: 15,
                patience: 5,
                max_train_samples_per_task: Some(300),
                ..GrimpConfig::fast()
            },
            Profile::Standard => GrimpConfig {
                max_epochs: 80,
                ..GrimpConfig::fast()
            },
            Profile::Full => GrimpConfig::paper(),
        }
    }

    /// Label for output headers.
    pub fn label(self) -> &'static str {
        match self {
            Profile::Quick => "quick",
            Profile::Standard => "standard",
            Profile::Full => "full",
        }
    }

    /// Epoch budgets for the neural baselines.
    pub fn baseline_epochs(self) -> usize {
        match self {
            Profile::Quick => 20,
            Profile::Standard => 50,
            Profile::Full => 150,
        }
    }
}

/// A dataset prepared for one experiment run.
pub struct Prepared {
    /// Dataset identity.
    pub id: DatasetId,
    /// Abbreviation for table rows.
    pub abbr: &'static str,
    /// The (possibly row-capped) clean table.
    pub clean: Table,
    /// Declared FDs.
    pub fds: FdSet,
}

/// Generate and row-cap a dataset for the given profile.
pub fn prepare(id: DatasetId, profile: Profile, seed: u64) -> Prepared {
    let Dataset {
        abbr, table, fds, ..
    } = generate(id, seed);
    let clean = match profile.row_cap() {
        Some(cap) if cap < table.n_rows() => truncate_rows(&table, cap),
        _ => table,
    };
    Prepared {
        id,
        abbr,
        clean,
        fds,
    }
}

fn truncate_rows(table: &Table, cap: usize) -> Table {
    let schema: Schema = table.schema().clone();
    let mut out = Table::empty(schema);
    for i in 0..cap {
        let row: Vec<grimp_table::Value> = (0..table.n_columns())
            .map(|j| match table.get(i, j) {
                grimp_table::Value::Cat(_) => {
                    // re-intern to keep dictionaries minimal after the cut
                    let code = out.intern(j, &table.display(i, j));
                    grimp_table::Value::Cat(code)
                }
                v => v,
            })
            .collect();
        out.push_value_row(&row);
    }
    out
}

/// One corrupted instance: the dirty table and its ground-truth log.
pub struct Instance {
    /// The dirty table handed to every algorithm.
    pub dirty: Table,
    /// Ground truth of the injected cells.
    pub log: CorruptionLog,
}

/// Corrupt a prepared dataset at `rate` MCAR (deterministic per seed).
pub fn corrupt(prepared: &Prepared, rate: f64, seed: u64) -> Instance {
    let mut dirty = prepared.clean.clone();
    let log = inject_mcar(&mut dirty, rate, &mut StdRng::seed_from_u64(seed));
    Instance { dirty, log }
}

/// The algorithm roster of Figures 8–9 (GRIMP variants + published
/// baselines).
pub fn fig8_algorithms(profile: Profile, seed: u64) -> Vec<Box<dyn Imputer>> {
    let epochs = profile.baseline_epochs();
    let base = profile.grimp_config().with_seed(seed);
    vec![
        Box::new(Grimp::new(
            base.clone().with_features(FeatureSource::FastText),
        )),
        Box::new(Grimp::new(base.with_features(FeatureSource::Embdi))),
        Box::new(MissForest::new(MissForestConfig {
            seed,
            ..Default::default()
        })),
        Box::new(AimNetLike::new(AimNetConfig {
            epochs,
            seed,
            ..Default::default()
        })),
        Box::new(TurlSub::new(TurlConfig {
            epochs,
            seed,
            ..Default::default()
        })),
        Box::new(EmbdiMc::new(EmbdiMcConfig {
            epochs,
            seed,
            ..Default::default()
        })),
        Box::new(DataWigLike::new(DataWigConfig {
            epochs,
            seed,
            ..Default::default()
        })),
    ]
}

/// Extra classical references (not plotted in the paper's figures but part
/// of this reproduction's wider roster).
pub fn reference_algorithms(seed: u64) -> Vec<Box<dyn Imputer>> {
    vec![
        Box::new(MeanMode),
        Box::new(KnnImputer::new(5)),
        Box::new(Mice::new(MiceConfig {
            seed,
            ..Default::default()
        })),
        Box::new(Mida::new(MidaConfig {
            seed,
            ..Default::default()
        })),
        Box::new(Gain::new(GainConfig {
            seed,
            ..Default::default()
        })),
    ]
}

/// The Table 3 roster: FD-REPAIR, MissForest, FUNFOREST, GRIMP-A.
pub fn tab3_algorithms(profile: Profile, seed: u64, fds: &FdSet) -> Vec<Box<dyn Imputer>> {
    let grimp_a = profile
        .grimp_config()
        .with_seed(seed)
        .with_k_strategy(KStrategy::WeakDiagonalFd);
    vec![
        Box::new(FdRepair::new(fds.clone())),
        Box::new(MissForest::new(MissForestConfig {
            seed,
            ..Default::default()
        })),
        Box::new(MissForest::funforest(
            MissForestConfig {
                seed,
                ..Default::default()
            },
            fds.clone(),
        )),
        Box::new(Grimp::with_fds(grimp_a, fds.clone())),
    ]
}

/// The Fig. 10 ablation roster: GRIMP-MT (full), GNN-MC, EmbDI-MC.
pub fn fig10_algorithms(profile: Profile, seed: u64) -> Vec<(String, Box<dyn Imputer>)> {
    let base = profile
        .grimp_config()
        .with_seed(seed)
        .with_features(FeatureSource::Embdi);
    let epochs = profile.baseline_epochs();
    vec![
        (
            "GRIMP-MT".to_string(),
            Box::new(Grimp::new(base.clone())) as Box<dyn Imputer>,
        ),
        ("GNN-MC".to_string(), Box::new(GnnMc::new(base))),
        (
            "EmbDI-MC".to_string(),
            Box::new(EmbdiMc::new(EmbdiMcConfig {
                epochs,
                seed,
                ..Default::default()
            })),
        ),
    ]
}

/// Result of one (dataset, algorithm, rate) cell.
#[derive(Clone, Debug)]
pub struct CellResult {
    /// Algorithm name.
    pub algorithm: String,
    /// Dataset abbreviation.
    pub dataset: &'static str,
    /// Missingness rate.
    pub rate: f64,
    /// Quality metrics.
    pub eval: EvalResult,
    /// Wall-clock seconds of the `impute` call.
    pub seconds: f64,
}

/// Run one algorithm on one corrupted instance.
pub fn run_cell(
    prepared: &Prepared,
    instance: &Instance,
    algorithm: &mut dyn Imputer,
    rate: f64,
) -> CellResult {
    let start = Instant::now();
    let imputed = algorithm.impute(&instance.dirty);
    let seconds = start.elapsed().as_secs_f64();
    let eval = evaluate(&prepared.clean, &imputed, &instance.log);
    CellResult {
        algorithm: algorithm.name().to_string(),
        dataset: prepared.abbr,
        rate,
        eval,
        seconds,
    }
}

/// Fixed-width table printer for experiment output.
pub struct TablePrinter {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TablePrinter {
    /// New table with the given column headers.
    pub fn new(header: &[&str]) -> Self {
        TablePrinter {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append one row (must match the header width).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Render with aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.chars().count());
            }
        }
        let fmt_row = |cells: &[String]| -> String {
            cells
                .iter()
                .zip(&widths)
                .map(|(c, &w)| format!("{c:>w$}"))
                .collect::<Vec<_>>()
                .join("  ")
        };
        let mut out = String::new();
        let _ = writeln!(out, "{}", fmt_row(&self.header));
        let total: usize = widths.iter().sum::<usize>() + 2 * widths.len().saturating_sub(1);
        let _ = writeln!(out, "{}", "-".repeat(total));
        for row in &self.rows {
            let _ = writeln!(out, "{}", fmt_row(row));
        }
        out
    }
}

/// Write experiment results as CSV under `target/experiments/<name>.csv`.
pub fn write_csv(name: &str, header: &[&str], rows: &[Vec<String>]) -> PathBuf {
    let dir = PathBuf::from("target/experiments");
    fs::create_dir_all(&dir).expect("create experiments dir");
    let path = dir.join(format!("{name}.csv"));
    let mut text = String::new();
    let _ = writeln!(text, "{}", header.join(","));
    for row in rows {
        let _ = writeln!(text, "{}", row.join(","));
    }
    fs::write(&path, text).expect("write experiment csv");
    path
}

/// Format an optional metric.
pub fn fmt_opt(v: Option<f64>, digits: usize) -> String {
    match v {
        Some(v) => format!("{v:.digits$}"),
        None => "-".to_string(),
    }
}

/// Standard experiment banner.
pub fn banner(what: &str, profile: Profile) {
    println!("== {what} ==");
    println!(
        "profile: {} (row cap {:?}); set GRIMP_PROFILE=quick|standard|full to change",
        profile.label(),
        profile.row_cap()
    );
    println!();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profile_from_env_defaults_to_standard() {
        // no env manipulation (tests run in parallel): default path only
        if std::env::var("GRIMP_PROFILE").is_err() {
            assert_eq!(Profile::from_env(), Profile::Standard);
        }
    }

    #[test]
    fn prepare_respects_row_cap() {
        let p = prepare(DatasetId::Tax, Profile::Quick, 0);
        assert_eq!(p.clean.n_rows(), 160);
        assert_eq!(p.clean.n_columns(), 12);
        // FDs still hold on the truncated table
        for fd in &p.fds.fds {
            assert!(fd.holds_on(&p.clean));
        }
    }

    #[test]
    fn corrupt_is_deterministic() {
        let p = prepare(DatasetId::Mammogram, Profile::Quick, 1);
        let a = corrupt(&p, 0.2, 7);
        let b = corrupt(&p, 0.2, 7);
        assert_eq!(a.dirty, b.dirty);
        assert_eq!(a.log.cells, b.log.cells);
    }

    #[test]
    fn run_cell_produces_complete_metrics() {
        let p = prepare(DatasetId::Mammogram, Profile::Quick, 2);
        let inst = corrupt(&p, 0.2, 3);
        let mut algo = MeanMode;
        let cell = run_cell(&p, &inst, &mut algo, 0.2);
        assert_eq!(cell.algorithm, "Mean/Mode");
        assert!(cell.eval.accuracy().is_some());
        assert!(cell.eval.rmse().is_some());
        assert!(cell.seconds >= 0.0);
    }

    #[test]
    fn table_printer_aligns_columns() {
        let mut t = TablePrinter::new(&["a", "long-header"]);
        t.row(vec!["x".into(), "1".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].contains("long-header"));
    }

    #[test]
    fn rosters_have_expected_sizes() {
        let fds = FdSet::empty();
        assert_eq!(fig8_algorithms(Profile::Quick, 0).len(), 7);
        assert_eq!(reference_algorithms(0).len(), 5);
        assert_eq!(tab3_algorithms(Profile::Quick, 0, &fds).len(), 4);
        assert_eq!(fig10_algorithms(Profile::Quick, 0).len(), 3);
    }
}

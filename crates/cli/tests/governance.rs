//! Real-binary acceptance tests for resource-governed execution: a
//! deadline-bounded run, a run under each injected IO-fault kind, and a
//! SIGINT-at-epoch-boundary run must all exit with their documented codes,
//! fill every missing cell, and leave a parseable JSONL trace.

use std::path::{Path, PathBuf};
use std::process::Command;

fn workdir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("grimp-governance-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// A k/v/x CSV with deterministic gaps (~1 in 7 cells missing).
fn write_dirty_csv(path: &Path, rows: usize) {
    let mut csv = String::from("k,v,x\n");
    for i in 0..rows {
        let k = if i % 7 == 3 {
            String::new()
        } else {
            format!("k{}", i % 5)
        };
        let v = if i % 7 == 5 {
            String::new()
        } else {
            format!("v{}", i % 5)
        };
        let x = if i % 7 == 1 {
            String::new()
        } else {
            format!("{}", (i % 5) * 10)
        };
        csv.push_str(&format!("{k},{v},{x}\n"));
    }
    std::fs::write(path, csv).unwrap();
}

fn assert_fully_filled(path: &Path) {
    let csv = std::fs::read_to_string(path).unwrap();
    for (i, line) in csv.lines().enumerate() {
        assert!(
            !line.split(',').any(str::is_empty),
            "row {i} has an empty cell: {line:?}"
        );
    }
}

fn assert_parseable_trace(path: &Path) -> String {
    let trace = std::fs::read_to_string(path).unwrap();
    assert!(!trace.is_empty(), "trace must not be empty");
    for line in trace.lines() {
        assert!(
            line.starts_with('{') && line.ends_with('}'),
            "trace line is not a JSON object: {line:?}"
        );
    }
    trace
}

#[test]
fn deadline_bounded_run_exits_6_with_full_imputation_and_trace() {
    let dir = workdir("deadline");
    let dirty = dir.join("dirty.csv");
    let out_path = dir.join("imputed.csv");
    let trace_path = dir.join("trace.jsonl");
    write_dirty_csv(&dirty, 60);

    let out = Command::new(env!("CARGO_BIN_EXE_grimp"))
        .args([
            "impute",
            dirty.to_str().unwrap(),
            "--algo",
            "grimp",
            "--seed",
            "7",
            "--deadline",
            "1e-9",
            "-o",
            out_path.to_str().unwrap(),
            "--trace-out",
            trace_path.to_str().unwrap(),
        ])
        .output()
        .expect("grimp binary runs");

    assert_eq!(out.status.code(), Some(6), "{out:?}");
    assert!(out.stderr.is_empty(), "governed stop is a success");
    assert_fully_filled(&out_path);
    let trace = assert_parseable_trace(&trace_path);
    assert!(
        trace.contains("deadline_hit"),
        "trace must record the deadline event"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn every_injected_fault_kind_exits_0_and_fills_every_cell() {
    for kind in ["enospc", "perm", "torn", "transient"] {
        let dir = workdir(&format!("fault-{kind}"));
        let dirty = dir.join("dirty.csv");
        let out_path = dir.join("imputed.csv");
        let trace_path = dir.join("trace.jsonl");
        let ckpt_dir = dir.join("ckpt");
        write_dirty_csv(&dirty, 40);

        let out = Command::new(env!("CARGO_BIN_EXE_grimp"))
            .env("GRIMP_FAULT_FS", kind)
            .args([
                "impute",
                dirty.to_str().unwrap(),
                "--algo",
                "grimp",
                "--seed",
                "7",
                "--checkpoint-dir",
                ckpt_dir.to_str().unwrap(),
                "-o",
                out_path.to_str().unwrap(),
                "--trace-out",
                trace_path.to_str().unwrap(),
            ])
            .output()
            .expect("grimp binary runs");

        assert_eq!(out.status.code(), Some(0), "{kind}: {out:?}");
        assert_fully_filled(&out_path);
        assert_parseable_trace(&trace_path);
        let stdout = String::from_utf8(out.stdout.clone()).unwrap();
        if kind != "transient" {
            assert!(
                stdout.contains("warning:"),
                "{kind}: persistent faults must surface a warning, got: {stdout}"
            );
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// SIGINT at an epoch boundary: the run checkpoints what it has, imputes
/// from the current state, and exits 130 with the output written. The
/// table size escalates until the signal lands while training is still in
/// flight (a too-fast run exits 0 and we retry bigger).
#[test]
#[cfg(unix)]
fn sigint_at_epoch_boundary_exits_130_with_full_imputation() {
    for (attempt, rows) in [400usize, 1600, 6400].into_iter().enumerate() {
        let dir = workdir(&format!("sigint-{attempt}"));
        let dirty = dir.join("dirty.csv");
        let out_path = dir.join("imputed.csv");
        write_dirty_csv(&dirty, rows);

        let child = Command::new(env!("CARGO_BIN_EXE_grimp"))
            .args([
                "impute",
                dirty.to_str().unwrap(),
                "--algo",
                "grimp",
                "--seed",
                "7",
                "-o",
                out_path.to_str().unwrap(),
            ])
            .stdout(std::process::Stdio::piped())
            .stderr(std::process::Stdio::piped())
            .spawn()
            .expect("grimp binary spawns");

        std::thread::sleep(std::time::Duration::from_millis(300));
        let _ = Command::new("kill")
            .args(["-INT", &child.id().to_string()])
            .status()
            .expect("kill runs");
        let out = child.wait_with_output().expect("grimp exits");

        match out.status.code() {
            Some(130) => {
                let stdout = String::from_utf8(out.stdout.clone()).unwrap();
                assert!(
                    stdout.contains("interrupted at epoch"),
                    "stdout must explain the stop: {stdout}"
                );
                assert_fully_filled(&out_path);
                let _ = std::fs::remove_dir_all(&dir);
                return;
            }
            Some(0) => {
                // The run beat the signal; retry with a bigger table.
                let _ = std::fs::remove_dir_all(&dir);
            }
            other => panic!("unexpected exit code {other:?}: {out:?}"),
        }
    }
    panic!("the run finished before SIGINT landed at every table size");
}

//! Integration tests for `grimp serve`, driving the real binary over real
//! sockets: a fitted checkpoint is served over HTTP, overload and socket
//! faults get their contracted statuses, checkpoint rotation hot-reloads,
//! and SIGTERM/SIGINT drain the server onto the right exit codes.

#![cfg(unix)]

use std::io::{BufRead, BufReader};
use std::path::{Path, PathBuf};
use std::process::{Child, ChildStdout, Command, Stdio};
use std::time::{Duration, Instant};

use grimp::{CheckpointPolicy, GrimpConfig, GrimpConfigBuilder, Pipeline};
use grimp_serve::client;

/// Fit a small model into a fresh temp dir; returns the training CSV path
/// and the checkpoint directory the server will watch.
fn fit_checkpoint(name: &str, seed: u64) -> (PathBuf, PathBuf) {
    let root = std::env::temp_dir().join(format!("grimp-serve-it-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    std::fs::create_dir_all(&root).unwrap();
    let csv = "city,country\nParis,France\nRome,Italy\nParis,\nRome,\nParis,France\nMadrid,Spain\nMadrid,\nRome,Italy\n";
    let train_csv = root.join("train.csv");
    std::fs::write(&train_csv, csv).unwrap();
    let ckpt_dir = root.join("ckpt");
    std::fs::create_dir_all(&ckpt_dir).unwrap();
    fit_into(&train_csv, &ckpt_dir, seed);
    (train_csv, ckpt_dir)
}

/// One quick in-process fit writing `grimp.ckpt` into `dir`.
fn fit_into(train_csv: &Path, dir: &Path, seed: u64) {
    let table =
        grimp_table::csv::read_csv_str(&std::fs::read_to_string(train_csv).unwrap()).unwrap();
    let config = GrimpConfigBuilder::from_config(GrimpConfig::fast())
        .seed(seed)
        .max_epochs(3)
        .patience(3)
        .checkpointing(CheckpointPolicy {
            dir: Some(dir.to_path_buf()),
            ..Default::default()
        })
        .build()
        .unwrap();
    Pipeline::new(config).unwrap().fit(&table).unwrap();
}

/// A running `grimp serve` child with its bound address parsed from the
/// announcement line.
struct ServeChild {
    child: Child,
    stdout: BufReader<ChildStdout>,
    addr: String,
}

impl ServeChild {
    fn spawn(
        train_csv: &PathBuf,
        ckpt_dir: &PathBuf,
        extra: &[&str],
        env: &[(&str, &str)],
    ) -> ServeChild {
        let mut cmd = Command::new(env!("CARGO_BIN_EXE_grimp"));
        cmd.arg("serve")
            .arg(train_csv)
            .arg("--checkpoint-dir")
            .arg(ckpt_dir)
            .args(["--addr", "127.0.0.1:0", "--reload-poll-ms", "50"])
            .args(extra)
            .stdout(Stdio::piped())
            .stderr(Stdio::piped());
        for (k, v) in env {
            cmd.env(k, v);
        }
        let mut child = cmd.spawn().expect("grimp serve spawns");
        let mut stdout = BufReader::new(child.stdout.take().unwrap());
        let mut line = String::new();
        stdout.read_line(&mut line).unwrap();
        let addr = line
            .strip_prefix("grimp serve listening on ")
            .unwrap_or_else(|| panic!("unexpected announcement: {line:?}"))
            .split_whitespace()
            .next()
            .unwrap()
            .to_string();
        ServeChild {
            child,
            stdout,
            addr,
        }
    }

    /// Send `sig` (e.g. "TERM"), then collect the exit code and the rest
    /// of stdout.
    fn stop(mut self, sig: &str) -> (i32, String) {
        let pid = self.child.id().to_string();
        Command::new("kill")
            .args([format!("-{sig}"), pid])
            .status()
            .unwrap();
        let mut rest = String::new();
        let mut line = String::new();
        while self.stdout.read_line(&mut line).unwrap_or(0) > 0 {
            rest.push_str(&line);
            line.clear();
        }
        let status = self.child.wait().unwrap();
        (status.code().unwrap_or(-1), rest)
    }
}

/// Poll `f` until it returns true or the deadline passes.
fn wait_for(deadline: Duration, mut f: impl FnMut() -> bool) -> bool {
    let start = Instant::now();
    while start.elapsed() < deadline {
        if f() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(50));
    }
    false
}

/// A running `grimp serve --supervise` tree. Unlike [`ServeChild`], the
/// supervisor interleaves its own `grimp supervise: …` lines with the
/// child's echoed output, so callers scan for what they need.
struct Supervised {
    child: Child,
    stdout: BufReader<ChildStdout>,
    log: String,
}

impl Supervised {
    fn spawn(
        train_csv: &PathBuf,
        ckpt_dir: &PathBuf,
        extra: &[&str],
        env: &[(&str, &str)],
    ) -> Supervised {
        let mut cmd = Command::new(env!("CARGO_BIN_EXE_grimp"));
        cmd.arg("serve")
            .arg(train_csv)
            .arg("--checkpoint-dir")
            .arg(ckpt_dir)
            .args(["--addr", "127.0.0.1:0", "--reload-poll-ms", "50"])
            .args(["--supervise", "--backoff-base-ms", "50"])
            .args(extra)
            .stdin(Stdio::null())
            .stdout(Stdio::piped())
            .stderr(Stdio::piped());
        for (k, v) in env {
            cmd.env(k, v);
        }
        let mut child = cmd.spawn().expect("grimp serve --supervise spawns");
        let stdout = BufReader::new(child.stdout.take().unwrap());
        Supervised {
            child,
            stdout,
            log: String::new(),
        }
    }

    /// Read (and record) lines until one starts with `prefix`; returns the
    /// remainder of that line. Panics with the log so far on EOF.
    fn scan_for(&mut self, prefix: &str) -> String {
        let mut line = String::new();
        loop {
            line.clear();
            let n = self.stdout.read_line(&mut line).unwrap_or(0);
            assert!(
                n > 0,
                "stdout closed while scanning for {prefix:?}; log so far:\n{}",
                self.log
            );
            self.log.push_str(&line);
            if let Some(rest) = line.strip_prefix(prefix) {
                return rest.trim().to_string();
            }
        }
    }

    /// The serve child's pid, from the next supervisor spawn line.
    fn next_child_pid(&mut self) -> i32 {
        let rest = self.scan_for("grimp supervise: child pid ");
        rest.split_whitespace()
            .next()
            .unwrap()
            .parse()
            .expect("pid parses")
    }

    /// The bound address from the next readiness announcement.
    fn next_addr(&mut self) -> String {
        let rest = self.scan_for("grimp serve listening on ");
        rest.split_whitespace().next().unwrap().to_string()
    }

    /// Send `sig` to the *supervisor*, drain stdout, and collect the exit
    /// code plus the full log.
    fn stop(mut self, sig: &str) -> (i32, String) {
        kill(self.child.id() as i32, sig);
        let mut line = String::new();
        while self.stdout.read_line(&mut line).unwrap_or(0) > 0 {
            self.log.push_str(&line);
            line.clear();
        }
        let status = self.child.wait().unwrap();
        (status.code().unwrap_or(-1), self.log)
    }
}

fn kill(pid: i32, sig: &str) {
    Command::new("kill")
        .args([format!("-{sig}"), pid.to_string()])
        .status()
        .unwrap();
}

#[test]
fn supervised_sigterm_drains_the_child_and_exits_0() {
    let (train_csv, ckpt_dir) = fit_checkpoint("sup-term", 11);
    let mut sup = Supervised::spawn(&train_csv, &ckpt_dir, &[], &[]);
    let _pid = sup.next_child_pid();
    let addr = sup.next_addr();

    let resp = client::impute(&addr, "city,country\nParis,\n").unwrap();
    assert_eq!(resp.status, 200, "{resp:?}");

    let (code, log) = sup.stop("TERM");
    assert_eq!(
        code, 0,
        "TERM through the supervisor is a clean stop:\n{log}"
    );
    assert!(log.contains("drained clean"), "child drain echoed:\n{log}");
    assert!(log.contains("child drained"), "supervisor verdict:\n{log}");
}

#[test]
fn supervised_respawn_after_kill9_then_crash_loop_breaker_exits_8() {
    let (train_csv, ckpt_dir) = fit_checkpoint("sup-loop", 12);
    let mut sup = Supervised::spawn(&train_csv, &ckpt_dir, &["--restart-limit", "2"], &[]);

    // First life, then two respawns: each SIGKILLed child is replaced and
    // the replacement actually serves.
    for round in 0..3 {
        let pid = sup.next_child_pid();
        let addr = sup.next_addr();
        let healthy = wait_for(
            Duration::from_secs(10),
            || matches!(client::request(&addr, "GET", "/readyz", b""), Ok(r) if r.status == 200),
        );
        assert!(healthy, "life {round} never became ready:\n{}", sup.log);
        kill(pid, "KILL");
    }

    // The third kill is the third crash inside the window: limit 2 trips
    // the breaker instead of a fourth respawn.
    let mut line = String::new();
    while sup.stdout.read_line(&mut line).unwrap_or(0) > 0 {
        sup.log.push_str(&line);
        line.clear();
    }
    let status = sup.child.wait().unwrap();
    assert_eq!(
        status.code(),
        Some(8),
        "crash-loop breaker has its own exit code:\n{}",
        sup.log
    );
    assert!(
        sup.log.contains("respawn 1/2") && sup.log.contains("respawn 2/2"),
        "both respawns announced:\n{}",
        sup.log
    );
}

#[test]
fn supervised_second_sigterm_escalates_to_143() {
    let (train_csv, ckpt_dir) = fit_checkpoint("sup-esc", 13);
    let mut sup = Supervised::spawn(
        &train_csv,
        &ckpt_dir,
        &["--workers", "1", "--read-timeout-ms", "8000"],
        &[],
    );
    let _pid = sup.next_child_pid();
    let addr = sup.next_addr();

    // Wedge the only worker with a half-sent request so the drain cannot
    // finish before the second signal lands.
    use std::io::Write as _;
    let mut held = std::net::TcpStream::connect(&addr).unwrap();
    held.write_all(b"POST /impute HTTP/1.1\r\nContent-Length: 500\r\n\r\nstuck")
        .unwrap();
    held.flush().unwrap();
    std::thread::sleep(Duration::from_millis(300));

    kill(sup.child.id() as i32, "TERM");
    std::thread::sleep(Duration::from_millis(300));
    let (code, log) = sup.stop("TERM");
    assert_eq!(code, 143, "second TERM hard-exits 143:\n{log}");
}

#[test]
fn supervised_crashpoint_kill_between_wal_publish_and_response_is_idempotent() {
    let (train_csv, ckpt_dir) = fit_checkpoint("sup-cp", 14);
    // Arm a one-shot abort after the append's outcome is journaled but
    // before the served generation swaps — the classic "applied but never
    // acknowledged" crash. The arm file is consumed by the abort, so the
    // respawned child (same environment) runs clean.
    let arm = ckpt_dir.with_file_name("arm");
    std::fs::write(&arm, b"armed").unwrap();
    let mut sup = Supervised::spawn(
        &train_csv,
        &ckpt_dir,
        &["--workers", "1", "--restart-limit", "3"],
        &[(
            "GRIMP_CRASHPOINT",
            &format!("generation-swap@{}", arm.display()),
        )],
    );
    let _pid = sup.next_child_pid();
    let addr = sup.next_addr();
    let delta = b"city,country\nParis,\n,Italy\n";
    let headers: &[(&str, &str)] = &[("Idempotency-Key", "sup-cp-1")];

    // The armed append dies without a response.
    let first = client::request_with_headers(&addr, "POST", "/append", headers, delta);
    assert!(
        first.is_err(),
        "the abort must cut the connection: {first:?}"
    );

    // Supervisor respawns; the same key converges to exactly one
    // application of the rows, answered from the idempotency journal.
    let addr2 = sup.next_addr();
    assert!(!arm.exists(), "the crashpoint consumed its arm file");
    let ready = wait_for(
        Duration::from_secs(20),
        || matches!(client::request(&addr2, "GET", "/readyz", b""), Ok(r) if r.status == 200),
    );
    assert!(ready, "respawned server is ready:\n{}", sup.log);
    let replay = client::request_with_headers(&addr2, "POST", "/append", headers, delta).unwrap();
    assert_eq!(
        replay.status,
        200,
        "{:?}",
        String::from_utf8_lossy(&replay.body)
    );
    assert_eq!(replay.header("Idempotency-Replay"), Some("true"));
    let grown = grimp_table::csv::read_csv_str(std::str::from_utf8(&replay.body).unwrap()).unwrap();
    assert_eq!(grown.n_rows(), 10, "8 base + 2 delta, applied exactly once");
    assert_eq!(grown.n_missing(), 0);

    let (code, log) = sup.stop("TERM");
    assert_eq!(code, 0, "{log}");
}

#[test]
fn serves_http_imputation_and_drains_clean_on_sigterm() {
    let (train_csv, ckpt_dir) = fit_checkpoint("sigterm", 3);
    let trace = ckpt_dir.with_file_name("trace.jsonl");
    let server = ServeChild::spawn(
        &train_csv,
        &ckpt_dir,
        &["--workers", "2", "--trace-out", trace.to_str().unwrap()],
        &[],
    );

    let resp = client::impute(&server.addr, "city,country\nParis,\nMadrid,\n").unwrap();
    assert_eq!(resp.status, 200, "{resp:?}");
    let body = String::from_utf8(resp.body).unwrap();
    let imputed = grimp_table::csv::read_csv_str(&body).unwrap();
    assert_eq!(imputed.n_missing(), 0, "response CSV fully imputed: {body}");

    let health = client::request(&server.addr, "GET", "/healthz", b"").unwrap();
    assert_eq!(health.status, 200);
    let stats = client::request(&server.addr, "GET", "/stats", b"").unwrap();
    assert_eq!(stats.status, 200);
    // Both 200s so far (impute + healthz) count as served.
    let stats_body = String::from_utf8(stats.body).unwrap();
    assert!(stats_body.contains("\"served\":2"), "{stats_body}");

    let (code, rest) = server.stop("TERM");
    assert_eq!(code, 0, "SIGTERM drain is a success: {rest}");
    assert!(rest.contains("drained clean"), "{rest}");

    // The request-scoped trace is parseable JSONL with no torn lines.
    let replay = grimp_obs::read_jsonl(&std::fs::read_to_string(&trace).unwrap()).unwrap();
    assert!(!replay.events.is_empty(), "trace recorded events");
    assert_eq!(replay.torn_lines, 0, "no torn trace lines");
    let names: Vec<&str> = replay.events.iter().map(|e| e.name).collect();
    for expected in ["request", "request_outcome", "drain_begin", "drain_end"] {
        assert!(names.contains(&expected), "missing {expected}: {names:?}");
    }
}

#[test]
fn sigint_drains_and_exits_130() {
    let (train_csv, ckpt_dir) = fit_checkpoint("sigint", 4);
    let server = ServeChild::spawn(&train_csv, &ckpt_dir, &[], &[]);
    assert_eq!(
        client::request(&server.addr, "GET", "/healthz", b"")
            .unwrap()
            .status,
        200
    );
    let (code, _) = server.stop("INT");
    assert_eq!(code, 130, "SIGINT keeps the interrupted-run exit code");
}

#[test]
fn injected_socket_fault_via_env_yields_408_and_the_server_survives() {
    let (train_csv, ckpt_dir) = fit_checkpoint("fault-env", 5);
    let server = ServeChild::spawn(
        &train_csv,
        &ckpt_dir,
        &[],
        &[("GRIMP_FAULT_SOCKET", "stalled:1")],
    );
    // A body bigger than one socket read so the stall hits mid-request.
    let mut big = String::from("city,country\n");
    while big.len() <= 8 * 1024 {
        big.push_str("Paris,\n");
    }
    let resp = client::impute(&server.addr, &big).unwrap();
    assert_eq!(resp.status, 408, "stalled body times out: {resp:?}");
    // Connection 1 is past the fault budget: the server still works.
    let resp = client::impute(&server.addr, "city,country\nRome,\n").unwrap();
    assert_eq!(resp.status, 200, "{resp:?}");
    let (code, _) = server.stop("TERM");
    assert_eq!(code, 0);
}

#[test]
fn checkpoint_rotation_hot_reloads_the_model() {
    let (train_csv, ckpt_dir) = fit_checkpoint("reload", 6);
    let server = ServeChild::spawn(&train_csv, &ckpt_dir, &[], &[]);
    assert_eq!(
        client::impute(&server.addr, "city,country\nParis,\n")
            .unwrap()
            .status,
        200
    );
    // Rotate the checkpoint under the running server (a different seed
    // changes the weights, so the bytes differ and the watcher swaps).
    fit_into(&train_csv, &ckpt_dir, 7);
    let reloaded = wait_for(Duration::from_secs(20), || {
        let stats = client::request(&server.addr, "GET", "/stats", b"").unwrap();
        let body = String::from_utf8(stats.body).unwrap();
        !body.contains("\"reloads\":0")
    });
    assert!(reloaded, "watcher observed the rotated checkpoint");
    // Requests keep working on the new generation.
    assert_eq!(
        client::impute(&server.addr, "city,country\nMadrid,\n")
            .unwrap()
            .status,
        200
    );
    let (code, rest) = server.stop("TERM");
    assert_eq!(code, 0);
    assert!(
        !rest.contains("reloads 0"),
        "summary counts the reload: {rest}"
    );
}

#[test]
fn serve_flag_validation_exits_2() {
    let (train_csv, ckpt_dir) = fit_checkpoint("flags", 8);
    let run = |args: &[&str]| {
        Command::new(env!("CARGO_BIN_EXE_grimp"))
            .args(args)
            .output()
            .unwrap()
    };
    let train = train_csv.to_str().unwrap();
    let ckpt = ckpt_dir.to_str().unwrap();

    let out = run(&["serve", train]);
    assert_eq!(out.status.code(), Some(2), "--checkpoint-dir is required");

    let out = run(&[
        "serve",
        train,
        "--checkpoint-dir",
        ckpt,
        "--fault-socket",
        "bogus",
    ]);
    assert_eq!(out.status.code(), Some(2), "{out:?}");
    assert!(String::from_utf8(out.stderr)
        .unwrap()
        .contains("torn-request|disconnect|malformed|stalled"));

    let out = run(&[
        "serve",
        train,
        "--checkpoint-dir",
        ckpt,
        "--memory-budget-mb",
        "0",
    ]);
    assert_eq!(out.status.code(), Some(2), "{out:?}");

    let out = run(&[
        "serve",
        train,
        "--checkpoint-dir",
        ckpt,
        "--request-deadline",
        "0",
    ]);
    assert_eq!(out.status.code(), Some(2), "{out:?}");
}

#[test]
fn serving_an_empty_checkpoint_dir_is_a_startup_io_error() {
    let (train_csv, ckpt_dir) = fit_checkpoint("no-ckpt", 9);
    let empty = ckpt_dir.with_file_name("empty");
    std::fs::create_dir_all(&empty).unwrap();
    let out = Command::new(env!("CARGO_BIN_EXE_grimp"))
        .args([
            "serve",
            train_csv.to_str().unwrap(),
            "--checkpoint-dir",
            empty.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(4), "{out:?}");
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(
        stderr.contains("grimp.ckpt"),
        "names the missing file: {stderr}"
    );
}

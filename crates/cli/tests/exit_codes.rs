//! Integration tests for the CLI exit-code contract, driving the real
//! `grimp` binary: configuration errors exit 2, malformed input data 3,
//! IO failures 4 — each with a single-line `error: …` message on stderr
//! and nothing error-shaped on stdout.

use std::process::Command;

fn grimp(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_grimp"))
        .args(args)
        .output()
        .expect("grimp binary runs")
}

fn tmpfile(name: &str, contents: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("grimp-exit-codes-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(name);
    std::fs::write(&path, contents).unwrap();
    path
}

fn stderr_line(out: &std::process::Output) -> String {
    let stderr = String::from_utf8(out.stderr.clone()).unwrap();
    assert_eq!(
        stderr.lines().count(),
        1,
        "stderr must be a single line, got: {stderr:?}"
    );
    stderr.trim_end().to_string()
}

#[test]
fn unknown_command_is_a_config_error() {
    let out = grimp(&["frobnicate"]);
    assert_eq!(out.status.code(), Some(2));
    let line = stderr_line(&out);
    assert!(line.starts_with("error: "), "{line}");
    assert!(line.contains("unknown command"), "{line}");
}

#[test]
fn bad_flag_combination_is_a_config_error() {
    let dirty = tmpfile("resume-only.csv", "a,b\nx,1\ny,\n");
    let out = grimp(&["impute", dirty.to_str().unwrap(), "--resume"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(
        stderr_line(&out).contains("--resume requires --checkpoint-dir"),
        "wrong message"
    );
}

#[test]
fn malformed_csv_is_a_data_error() {
    let dup = tmpfile("dup-headers.csv", "a,a\n1,2\n");
    let out = grimp(&["stats", dup.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(3));
    let line = stderr_line(&out);
    assert!(line.starts_with("error: "), "{line}");
    assert!(line.contains("duplicate column name"), "{line}");
}

#[test]
fn ragged_csv_is_a_data_error() {
    let ragged = tmpfile("ragged.csv", "a,b\n1\n");
    let out = grimp(&["stats", ragged.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(3));
    assert!(stderr_line(&out).contains("fields"), "wrong message");
}

#[test]
fn missing_input_file_is_an_io_error() {
    let out = grimp(&["stats", "/nonexistent/never/nope.csv"]);
    assert_eq!(out.status.code(), Some(4));
    let line = stderr_line(&out);
    assert!(line.starts_with("error: "), "{line}");
    assert!(line.contains("nope.csv"), "{line}");
}

#[test]
fn unwritable_output_path_is_an_io_error() {
    let out = grimp(&["generate", "MM", "-o", "/nonexistent/never/out.csv"]);
    assert_eq!(out.status.code(), Some(4));
    assert!(stderr_line(&out).starts_with("error: "));
}

#[test]
fn zero_deadline_is_a_config_error() {
    let dirty = tmpfile("zero-deadline.csv", "a,b\nx,1\ny,\n");
    let out = grimp(&[
        "impute",
        dirty.to_str().unwrap(),
        "--algo",
        "grimp",
        "--deadline",
        "0",
    ]);
    assert_eq!(out.status.code(), Some(2), "{out:?}");
    let line = stderr_line(&out);
    assert!(line.starts_with("error: "), "{line}");
    assert!(
        line.contains("--deadline must be finite and positive"),
        "{line}"
    );
}

#[test]
fn zero_memory_budget_is_a_config_error() {
    let dirty = tmpfile("zero-budget.csv", "a,b\nx,1\ny,\n");
    let out = grimp(&[
        "impute",
        dirty.to_str().unwrap(),
        "--algo",
        "grimp",
        "--memory-budget-mb",
        "0",
    ]);
    assert_eq!(out.status.code(), Some(2), "{out:?}");
    let line = stderr_line(&out);
    assert!(line.starts_with("error: "), "{line}");
    assert!(
        line.contains("--memory-budget-mb must be at least 1"),
        "{line}"
    );
}

#[test]
fn deadline_hit_is_a_distinct_success_code() {
    let dirty = tmpfile("deadline.csv", "a,b\nx,1\ny,\nx,\nz,3\nx,1\ny,2\n");
    let out_path = dirty.with_file_name("deadline-out.csv");
    let out = grimp(&[
        "impute",
        dirty.to_str().unwrap(),
        "--algo",
        "grimp",
        "--deadline",
        "1e-9",
        "-o",
        out_path.to_str().unwrap(),
    ]);
    assert_eq!(out.status.code(), Some(6), "{out:?}");
    assert!(out.stderr.is_empty(), "a governed stop is not an error");
    let stdout = String::from_utf8(out.stdout.clone()).unwrap();
    assert!(stdout.contains("deadline hit at epoch"), "{stdout}");
    // The imputation is complete despite the early stop.
    let written = std::fs::read_to_string(&out_path).unwrap();
    assert!(!written.lines().any(|l| l.split(',').any(str::is_empty)));
}

#[test]
fn held_checkpoint_lock_is_a_busy_error() {
    let dirty = tmpfile("locked.csv", "a,b\nx,1\ny,\n");
    let dir = std::env::temp_dir().join(format!("grimp-exit-lock-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    // The lock must name a *live* process — this very test — because a
    // stale lock from a dead PID is reclaimed instead of erroring.
    let live_pid = std::process::id().to_string();
    std::fs::write(dir.join("grimp.lock"), &live_pid).unwrap();
    let out = grimp(&[
        "impute",
        dirty.to_str().unwrap(),
        "--algo",
        "grimp",
        "--checkpoint-dir",
        dir.to_str().unwrap(),
    ]);
    assert_eq!(out.status.code(), Some(7), "{out:?}");
    let line = stderr_line(&out);
    assert!(line.starts_with("error: "), "{line}");
    assert!(line.contains("locked by another run"), "{line}");
    assert!(line.contains(&live_pid), "owner pid surfaced: {line}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[cfg(target_os = "linux")]
#[test]
fn stale_lock_from_a_dead_process_is_reclaimed_by_the_cli() {
    let dirty = tmpfile("stale-locked.csv", "a,b\nx,1\ny,\nx,1\ny,2\n");
    let dir = std::env::temp_dir().join(format!("grimp-exit-stale-lock-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    // u32::MAX exceeds the kernel's pid_max, so the recorded holder is
    // provably dead and the run must reclaim the lock and succeed.
    std::fs::write(dir.join("grimp.lock"), u32::MAX.to_string()).unwrap();
    let out = grimp(&[
        "impute",
        dirty.to_str().unwrap(),
        "--algo",
        "grimp",
        "--checkpoint-dir",
        dir.to_str().unwrap(),
    ]);
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    assert!(
        !dir.join("grimp.lock").exists(),
        "reclaimed lock released after the run"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn zero_batch_rows_is_a_config_error() {
    let dirty = tmpfile("zero-batch.csv", "a,b\nx,1\ny,\n");
    let out = grimp(&[
        "impute",
        dirty.to_str().unwrap(),
        "--algo",
        "grimp",
        "--batch-rows",
        "0",
    ]);
    assert_eq!(out.status.code(), Some(2), "{out:?}");
    let line = stderr_line(&out);
    assert!(line.starts_with("error: "), "{line}");
    assert!(line.contains("batch"), "{line}");
}

#[test]
fn zero_fanout_is_a_config_error() {
    let dirty = tmpfile("zero-fanout.csv", "a,b\nx,1\ny,\n");
    let out = grimp(&[
        "impute",
        dirty.to_str().unwrap(),
        "--algo",
        "grimp",
        "--fanout",
        "0",
    ]);
    assert_eq!(out.status.code(), Some(2), "{out:?}");
    let line = stderr_line(&out);
    assert!(line.starts_with("error: "), "{line}");
    assert!(line.contains("fanout"), "{line}");
}

#[test]
fn sampler_combined_with_resume_is_a_config_error() {
    let dirty = tmpfile("sampler-resume.csv", "a,b\nx,1\ny,\n");
    let dir = std::env::temp_dir().join(format!("grimp-exit-sampler-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let out = grimp(&[
        "impute",
        dirty.to_str().unwrap(),
        "--algo",
        "grimp",
        "--batch-rows",
        "64",
        "--checkpoint-dir",
        dir.to_str().unwrap(),
        "--resume",
    ]);
    assert_eq!(out.status.code(), Some(2), "{out:?}");
    let line = stderr_line(&out);
    assert!(line.starts_with("error: "), "{line}");
    assert!(line.contains("--resume"), "{line}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn sampler_flags_are_rejected_for_non_grimp_algorithms() {
    let dirty = tmpfile("sampler-knn.csv", "a,b\nx,1\ny,\n");
    let out = grimp(&[
        "impute",
        dirty.to_str().unwrap(),
        "--algo",
        "knn",
        "--batch-rows",
        "64",
    ]);
    assert_eq!(out.status.code(), Some(2), "{out:?}");
    assert!(
        stderr_line(&out).contains("only supported by the grimp variants"),
        "wrong message"
    );
}

#[test]
fn serve_rejects_sampler_flags_at_startup() {
    let train = tmpfile("serve-sampler.csv", "a,b\nx,1\ny,2\n");
    let dir = std::env::temp_dir().join(format!("grimp-exit-serve-smpl-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    for flag in ["--batch-rows", "--fanout"] {
        let out = grimp(&[
            "serve",
            train.to_str().unwrap(),
            "--checkpoint-dir",
            dir.to_str().unwrap(),
            flag,
            "64",
        ]);
        assert_eq!(out.status.code(), Some(2), "{flag}: {out:?}");
        let line = stderr_line(&out);
        assert!(line.starts_with("error: "), "{line}");
        assert!(line.contains("training-time option"), "{line}");
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn success_leaves_stderr_empty() {
    let clean = tmpfile("ok.csv", "a,b\nx,1\ny,2\nx,1\n");
    let out = grimp(&["stats", clean.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(0));
    assert!(out.stderr.is_empty(), "stderr not empty");
}

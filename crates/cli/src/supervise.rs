//! `grimp serve --supervise`: crash-only process supervision.
//!
//! The supervisor re-execs its own binary as a plain `grimp serve` child
//! (supervisor-only flags stripped), echoes the child's stdout — including
//! the `grimp serve listening on …` readiness line, so anything that
//! parses the unsupervised announcement keeps working — and respawns the
//! child when it dies abnormally. The serving process itself stays
//! crash-only: it never traps its own faults beyond per-request panic
//! isolation; a hard crash is recovered by respawn + WAL/idempotency
//! replay, not by in-process heroics.
//!
//! Three behaviours make this safe rather than a crash *loop*:
//!
//! - **Deterministic backoff**: consecutive crashes double the respawn
//!   delay from `--backoff-base-ms` (default 100ms), capped at 5s. No
//!   jitter — restart timing stays reproducible under test. A quiet
//!   period long enough to empty the restart window resets the doubling,
//!   so an isolated crash after hours of healthy serving respawns at the
//!   base delay again instead of inheriting stale backoff.
//! - **Crash-loop breaker**: more than `--restart-limit` crashes (default
//!   5) within `--restart-window` seconds (default 30) stop the respawning
//!   and exit with [`EXIT_CRASH_LOOP`], a code no other grimp failure
//!   uses, so an orchestrator can distinguish "this will not heal" from a
//!   one-off crash.
//! - **Startup failures propagate**: a child that exits nonzero *before*
//!   announcing readiness (bad flags, unreadable checkpoint dir) was never
//!   going to serve; its exit code passes straight through instead of
//!   being retried into the breaker.
//!
//! Signals: SIGTERM/SIGINT are forwarded to the child from inside the
//! handler (see [`crate::signal::forward_signals_to`]) — the child owns
//! the graceful drain; the supervisor just waits for it and propagates the
//! child's exit code. A second signal SIGKILLs the child and hard-exits.

use std::collections::VecDeque;
use std::io::{BufRead, BufReader, Write};
use std::process::{Child, Command, ExitStatus, Stdio};
use std::time::{Duration, Instant};

use crate::args::Args;
use crate::commands::CliError;

/// Exit code when the crash-loop breaker trips: the child kept crashing
/// faster than the restart budget allows. Distinct from every
/// [`grimp::ErrorCategory`] code and from the signal-derived 130/143.
pub const EXIT_CRASH_LOOP: i32 = 8;

/// Cap on the doubling respawn backoff.
const BACKOFF_CAP: Duration = Duration::from_secs(5);

/// Supervisor-only flags, stripped from the child's argument vector.
/// `true` marks flags that take a value.
const SUPERVISOR_FLAGS: &[(&str, bool)] = &[
    ("--supervise", false),
    ("--restart-limit", true),
    ("--restart-window", true),
    ("--backoff-base-ms", true),
];

/// Run `grimp serve --supervise …`: spawn, watch, respawn, break.
///
/// `rest` is the raw argument vector after `serve` (still containing the
/// supervisor flags).
///
/// # Errors
/// Configuration errors from the supervisor flags themselves, IO errors
/// spawning the child, and [`CliError::crash_loop`] when the breaker
/// trips.
pub fn cmd_supervise(rest: &[String], out: &mut dyn Write) -> Result<i32, CliError> {
    // Parse only to read the supervisor flags; the child validates the
    // serve flags itself (and a bad flag propagates as its exit 2).
    let args = Args::parse(rest, &["paper", "supervise"])?;
    let restart_limit = args.opt_parse("restart-limit", 5u32)?;
    let restart_window = Duration::from_secs(args.opt_parse("restart-window", 30u64)?.max(1));
    let backoff_base = Duration::from_millis(args.opt_parse("backoff-base-ms", 100u64)?.max(1));
    let child_args = strip_supervisor_flags(rest);

    let exe = std::env::current_exe()
        .map_err(|e| CliError::io(format!("resolving the grimp binary for respawn: {e}")))?;

    crate::signal::install();
    crate::signal::install_sigterm();
    let shutdown = crate::signal::shutdown_flag();

    let mut tracker = CrashTracker::new(restart_window);
    loop {
        let mut child = Command::new(&exe)
            .arg("serve")
            .args(&child_args)
            .stdin(Stdio::null())
            .stdout(Stdio::piped())
            .spawn()
            .map_err(|e| CliError::io(format!("spawning serve child: {e}")))?;
        let pid = child.id() as i32;
        crate::signal::forward_signals_to(pid);
        if shutdown.requests() > 0 {
            // A signal that landed between spawn and the forwarding
            // registration was recorded in the flag but never reached the
            // child (FORWARD_PID was still 0); deliver it now so the
            // child drains instead of serving on while we wait for it.
            crate::signal::send_signal(pid, crate::signal::last_signal());
        }
        writeln!(out, "grimp supervise: child pid {pid} up")?;
        out.flush()?;

        let announced = echo_child_stdout(&mut child, out)?;
        let status = child
            .wait()
            .map_err(|e| CliError::io(format!("waiting for serve child: {e}")))?;
        // Clear before the pid can be reused by an unrelated process.
        crate::signal::forward_signals_to(0);

        if shutdown.requests() > 0 {
            // The child was handed our shutdown signal and has finished its
            // drain; its exit code is the verdict (0 on a TERM drain, 130
            // on INT, per the serve contract).
            writeln!(out, "grimp supervise: child drained, exiting")?;
            return Ok(exit_code_of(status));
        }
        if status.success() {
            // The server stopped cleanly without us asking (e.g. someone
            // signalled the child directly). A clean stop is not a crash.
            writeln!(out, "grimp supervise: child exited cleanly, exiting")?;
            return Ok(0);
        }
        if !announced && !was_signal_killed(status) {
            // Startup failure: respawning a bad configuration only loops.
            writeln!(
                out,
                "grimp supervise: child failed before readiness ({}), exiting",
                describe(status)
            )?;
            return Ok(exit_code_of(status));
        }

        let in_window = tracker.record(Instant::now());
        if in_window as u32 > restart_limit {
            return Err(CliError::crash_loop(format!(
                "crash-loop breaker: {in_window} crashes within {}s (restart limit {}); not respawning",
                restart_window.as_secs(),
                restart_limit
            )));
        }

        let delay = backoff_delay(backoff_base, tracker.consecutive);
        writeln!(
            out,
            "grimp supervise: child crashed ({}); respawn {in_window}/{} in {}ms",
            describe(status),
            restart_limit,
            delay.as_millis()
        )?;
        out.flush()?;
        interruptible_sleep(delay);
        if shutdown.requests() > 0 {
            return Ok(if crate::signal::last_signal() == crate::signal::SIGINT {
                crate::signal::EXIT_INTERRUPTED
            } else {
                0
            });
        }
    }
}

/// Echo the child's stdout to `out` line by line until EOF (child exit).
/// Returns whether the child announced readiness.
fn echo_child_stdout(child: &mut Child, out: &mut dyn Write) -> Result<bool, CliError> {
    let stdout = child
        .stdout
        .take()
        .ok_or_else(|| CliError::io("serve child stdout was not piped"))?;
    let mut announced = false;
    let mut reader = BufReader::new(stdout);
    let mut line = String::new();
    loop {
        line.clear();
        match reader.read_line(&mut line) {
            Ok(0) => break,
            Ok(_) => {
                if line.starts_with("grimp serve listening on ") {
                    announced = true;
                }
                out.write_all(line.as_bytes())?;
                out.flush()?;
            }
            // EINTR from our own signal handler, or the pipe tearing as
            // the child dies: either way the wait() decides what happened.
            Err(_) => break,
        }
    }
    Ok(announced)
}

/// Crash bookkeeping: the sliding restart window drives the crash-loop
/// breaker, and `consecutive` drives the doubling backoff. The two decay
/// together — when the window empties (the child ran healthily long
/// enough that every recorded crash aged out), `consecutive` resets to 0
/// so the next one-off crash respawns at the base delay, not the cap.
struct CrashTracker {
    window: Duration,
    crashes: VecDeque<Instant>,
    /// Crashes since the window last emptied; feeds [`backoff_delay`].
    consecutive: u32,
}

impl CrashTracker {
    fn new(window: Duration) -> CrashTracker {
        CrashTracker {
            window,
            crashes: VecDeque::new(),
            consecutive: 0,
        }
    }

    /// Record a crash at `now`; returns how many crashes (this one
    /// included) fall inside the restart window.
    fn record(&mut self, now: Instant) -> usize {
        while let Some(&front) = self.crashes.front() {
            if now.duration_since(front) > self.window {
                self.crashes.pop_front();
            } else {
                break;
            }
        }
        if self.crashes.is_empty() {
            self.consecutive = 0;
        }
        self.crashes.push_back(now);
        self.consecutive += 1;
        self.crashes.len()
    }
}

/// Drop the supervisor-only flags (and their values) from `rest`.
fn strip_supervisor_flags(rest: &[String]) -> Vec<String> {
    let mut kept = Vec::with_capacity(rest.len());
    let mut skip_value = false;
    for arg in rest {
        if skip_value {
            skip_value = false;
            continue;
        }
        match SUPERVISOR_FLAGS.iter().find(|(name, _)| name == arg) {
            Some((_, takes_value)) => skip_value = *takes_value,
            None => kept.push(arg.clone()),
        }
    }
    kept
}

/// `base * 2^(consecutive-1)`, capped — deterministic by design.
fn backoff_delay(base: Duration, consecutive: u32) -> Duration {
    let factor = 1u32 << (consecutive.saturating_sub(1)).min(10);
    (base * factor).min(BACKOFF_CAP)
}

/// Sleep in small slices so a shutdown signal cuts the backoff short.
fn interruptible_sleep(total: Duration) {
    let shutdown = crate::signal::shutdown_flag();
    let start = Instant::now();
    while start.elapsed() < total {
        if shutdown.requests() > 0 {
            return;
        }
        let left = total - start.elapsed();
        std::thread::sleep(left.min(Duration::from_millis(20)));
    }
}

fn was_signal_killed(status: ExitStatus) -> bool {
    #[cfg(unix)]
    {
        use std::os::unix::process::ExitStatusExt;
        status.signal().is_some()
    }
    #[cfg(not(unix))]
    {
        let _ = status;
        false
    }
}

fn exit_code_of(status: ExitStatus) -> i32 {
    #[cfg(unix)]
    {
        use std::os::unix::process::ExitStatusExt;
        if let Some(sig) = status.signal() {
            return 128 + sig;
        }
    }
    status.code().unwrap_or(1)
}

fn describe(status: ExitStatus) -> String {
    #[cfg(unix)]
    {
        use std::os::unix::process::ExitStatusExt;
        if let Some(sig) = status.signal() {
            return format!("killed by signal {sig}");
        }
    }
    match status.code() {
        Some(code) => format!("exit code {code}"),
        None => "unknown exit".to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn supervisor_flags_are_stripped_with_their_values() {
        let rest: Vec<String> = [
            "train.csv",
            "--supervise",
            "--checkpoint-dir",
            "/tmp/ck",
            "--restart-limit",
            "2",
            "--backoff-base-ms",
            "50",
            "--workers",
            "1",
            "--restart-window",
            "10",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        assert_eq!(
            strip_supervisor_flags(&rest),
            ["train.csv", "--checkpoint-dir", "/tmp/ck", "--workers", "1"]
                .iter()
                .map(|s| s.to_string())
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn backoff_doubles_deterministically_and_caps() {
        let base = Duration::from_millis(100);
        assert_eq!(backoff_delay(base, 1), Duration::from_millis(100));
        assert_eq!(backoff_delay(base, 2), Duration::from_millis(200));
        assert_eq!(backoff_delay(base, 3), Duration::from_millis(400));
        assert_eq!(backoff_delay(base, 30), BACKOFF_CAP);
        // The same inputs always give the same delay: no jitter.
        assert_eq!(backoff_delay(base, 3), backoff_delay(base, 3));
    }

    #[test]
    fn a_quiet_period_resets_the_backoff_but_not_inside_the_window() {
        let window = Duration::from_secs(10);
        let mut tracker = CrashTracker::new(window);
        let t0 = Instant::now();
        assert_eq!(tracker.record(t0), 1);
        assert_eq!(tracker.record(t0 + Duration::from_secs(1)), 2);
        assert_eq!(tracker.record(t0 + Duration::from_secs(2)), 3);
        assert_eq!(tracker.consecutive, 3);

        // The child then runs healthily past the window: the next crash
        // is a fresh incident — breaker count 1 and base backoff again.
        assert_eq!(tracker.record(t0 + Duration::from_secs(60)), 1);
        assert_eq!(tracker.consecutive, 1);

        // A follow-up crash inside the window resumes doubling.
        assert_eq!(tracker.record(t0 + Duration::from_secs(61)), 2);
        assert_eq!(tracker.consecutive, 2);
    }
}

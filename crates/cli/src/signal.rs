//! SIGINT/SIGTERM-safe shutdown for the `grimp` binary.
//!
//! A hand-rolled `signal(2)` registration (std already links libc, so no
//! new dependency) flips a process-wide [`ShutdownFlag`] that the training
//! loop checks at every epoch boundary and the serve accept loop polls.
//! The first Ctrl-C asks for a clean stop — checkpoint, impute from the
//! current state (or drain the server), exit with [`EXIT_INTERRUPTED`]; a
//! second signal aborts immediately, because a user pressing it twice
//! means *now*.
//!
//! `grimp serve` additionally registers SIGTERM (the orchestrator's stop
//! signal): the server drains and exits 0, per the usual service
//! convention that a requested, clean termination is a success. The last
//! signal delivered is recorded so the serve command can tell the two
//! apart.
//!
//! The handler body is async-signal-safe: one atomic store, one atomic
//! increment, and on the second request a raw `_exit` (no atexit
//! handlers, no unwinding).

use std::sync::atomic::{AtomicI32, Ordering};
use std::sync::OnceLock;

use grimp::ShutdownFlag;

/// POSIX-style exit code for a run interrupted by Ctrl-C that still wrote
/// its imputation (128 + SIGINT).
pub const EXIT_INTERRUPTED: i32 = 130;

/// Exit code for a run that hit its `--deadline` but still wrote its
/// imputation from the epochs that completed.
pub const EXIT_DEADLINE: i32 = 6;

/// Hard-abort exit code for a second SIGTERM (128 + SIGTERM).
pub const EXIT_TERMINATED: i32 = 143;

/// `SIGINT` signal number.
pub const SIGINT: i32 = 2;

/// `SIGKILL` signal number (escalation target for a second signal while
/// supervising: the child is beyond graceful drain at that point).
pub const SIGKILL: i32 = 9;

/// `SIGTERM` signal number.
pub const SIGTERM: i32 = 15;

static FLAG: OnceLock<ShutdownFlag> = OnceLock::new();
static LAST_SIGNAL: AtomicI32 = AtomicI32::new(0);
/// Child pid that shutdown signals are forwarded to (0 = none). The
/// supervisor sets this so SIGTERM/SIGINT reach the serving child — which
/// owns the actual drain — from inside the handler, where the supervisor's
/// main thread may be blocked reading the child's stdout.
static FORWARD_PID: AtomicI32 = AtomicI32::new(0);

/// The process-wide shutdown flag. Clones share one counter, so the copy
/// installed into a [`grimp::GrimpConfig`] sees the handler's requests.
pub fn shutdown_flag() -> ShutdownFlag {
    FLAG.get_or_init(ShutdownFlag::new).clone()
}

/// The signal number that most recently requested shutdown (0 when none
/// has). `grimp serve` maps SIGTERM to exit 0 and SIGINT to exit 130.
pub fn last_signal() -> i32 {
    LAST_SIGNAL.load(Ordering::SeqCst)
}

#[cfg(unix)]
mod sys {
    /// `signal(2)` handler type.
    pub type SigHandler = extern "C" fn(i32);

    extern "C" {
        pub fn signal(signum: i32, handler: SigHandler) -> usize;
        pub fn kill(pid: i32, sig: i32) -> i32;
        pub fn _exit(code: i32) -> !;
    }
}

#[cfg(unix)]
extern "C" fn on_signal(sig: i32) {
    LAST_SIGNAL.store(sig, Ordering::SeqCst);
    // `install` initializes FLAG before registering, so `get` (an atomic
    // load) always finds it; `request` is a single fetch_add. `kill(2)` and
    // `_exit(2)` are both async-signal-safe.
    if let Some(flag) = FLAG.get() {
        let requests = flag.request();
        let pid = FORWARD_PID.load(Ordering::SeqCst);
        if requests >= 2 {
            if pid > 0 {
                // Escalation: the supervised child failed to drain in time
                // (or the operator means *now*); take it down with us.
                unsafe { sys::kill(pid, SIGKILL) };
            }
            let code = if sig == SIGTERM {
                EXIT_TERMINATED
            } else {
                EXIT_INTERRUPTED
            };
            unsafe { sys::_exit(code) }
        }
        if pid > 0 {
            unsafe { sys::kill(pid, sig) };
        }
    }
}

/// Install the SIGINT handler. Call once from `main`, before any work.
pub fn install() {
    let _ = shutdown_flag(); // initialize FLAG before the handler can fire
    #[cfg(unix)]
    unsafe {
        sys::signal(SIGINT, on_signal);
    }
}

/// Additionally route SIGTERM through the same graceful-shutdown path.
/// `grimp serve` calls this so an orchestrator's stop signal drains the
/// server instead of killing it mid-request.
pub fn install_sigterm() {
    let _ = shutdown_flag();
    #[cfg(unix)]
    unsafe {
        sys::signal(SIGTERM, on_signal);
    }
}

/// Forward subsequent shutdown signals to child `pid` (the supervisor's
/// serving child, which owns the drain). Pass 0 to stop forwarding — do so
/// as soon as the child exits, before its pid can be reused.
pub fn forward_signals_to(pid: i32) {
    FORWARD_PID.store(pid, Ordering::SeqCst);
}

/// Send `sig` to `pid`: a thin `kill(2)` wrapper for the chaos crashpoint
/// sweep, which stops the supervised servers it spawns. No-op off unix.
pub fn send_signal(pid: i32, sig: i32) {
    #[cfg(unix)]
    unsafe {
        sys::kill(pid, sig);
    }
    #[cfg(not(unix))]
    {
        let _ = (pid, sig);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn the_flag_is_shared_across_clones() {
        let a = shutdown_flag();
        let b = shutdown_flag();
        let before = a.requests();
        b.request();
        assert_eq!(a.requests(), before + 1);
    }
}

//! SIGINT-safe shutdown for the `grimp` binary.
//!
//! A hand-rolled `signal(2)` registration (std already links libc, so no
//! new dependency) flips a process-wide [`ShutdownFlag`] that the training
//! loop checks at every epoch boundary. The first Ctrl-C asks for a clean
//! stop — checkpoint, impute from the current state, exit with
//! [`EXIT_INTERRUPTED`]; a second Ctrl-C aborts immediately, because a
//! user pressing it twice means *now*.
//!
//! The handler body is async-signal-safe: one atomic increment, and on the
//! second request a raw `_exit` (no atexit handlers, no unwinding).

use std::sync::OnceLock;

use grimp::ShutdownFlag;

/// POSIX-style exit code for a run interrupted by Ctrl-C that still wrote
/// its imputation (128 + SIGINT).
pub const EXIT_INTERRUPTED: i32 = 130;

/// Exit code for a run that hit its `--deadline` but still wrote its
/// imputation from the epochs that completed.
pub const EXIT_DEADLINE: i32 = 6;

static FLAG: OnceLock<ShutdownFlag> = OnceLock::new();

/// The process-wide shutdown flag. Clones share one counter, so the copy
/// installed into a [`grimp::GrimpConfig`] sees the handler's requests.
pub fn shutdown_flag() -> ShutdownFlag {
    FLAG.get_or_init(ShutdownFlag::new).clone()
}

#[cfg(unix)]
mod sys {
    /// `signal(2)` handler type.
    pub type SigHandler = extern "C" fn(i32);

    extern "C" {
        pub fn signal(signum: i32, handler: SigHandler) -> usize;
        pub fn _exit(code: i32) -> !;
    }

    pub const SIGINT: i32 = 2;
}

#[cfg(unix)]
extern "C" fn on_sigint(_sig: i32) {
    // `install` initializes FLAG before registering, so `get` (an atomic
    // load) always finds it; `request` is a single fetch_add.
    if let Some(flag) = FLAG.get() {
        if flag.request() >= 2 {
            unsafe { sys::_exit(EXIT_INTERRUPTED) }
        }
    }
}

/// Install the SIGINT handler. Call once from `main`, before any work.
pub fn install() {
    let _ = shutdown_flag(); // initialize FLAG before the handler can fire
    #[cfg(unix)]
    unsafe {
        sys::signal(sys::SIGINT, on_sigint);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn the_flag_is_shared_across_clones() {
        let a = shutdown_flag();
        let b = shutdown_flag();
        let before = a.requests();
        b.request();
        assert_eq!(a.requests(), before + 1);
    }
}

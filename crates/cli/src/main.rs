//! `grimp` — the command-line entry point. All logic lives in the library
//! half (`grimp_cli::run`) so it is unit-testable.

fn main() {
    grimp_cli::signal::install();
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let stdout = std::io::stdout();
    let stderr = std::io::stderr();
    let mut out = stdout.lock();
    let mut err = stderr.lock();
    std::process::exit(grimp_cli::run(&argv, &mut out, &mut err));
}

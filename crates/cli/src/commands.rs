//! Subcommand implementations.

use std::fs::File;
use std::io::{BufReader, BufWriter, Write};

use rand::rngs::StdRng;
use rand::SeedableRng;

use grimp::{
    BackendKind, CheckpointPolicy, ErrorCategory, GrimpConfig, GrimpConfigBuilder, GrimpError,
    Pipeline, ResourceLimits, SamplerConfig, TaskKind,
};
use grimp_baselines::{
    AimNetConfig, AimNetLike, DataWigConfig, DataWigLike, EmbdiMc, EmbdiMcConfig, Gain, GainConfig,
    KnnImputer, MeanMode, Mice, MiceConfig, Mida, MidaConfig, MissForest, MissForestConfig,
    TurlConfig, TurlSub,
};
use grimp_datasets::{generate, generate_large, DatasetId};
use grimp_graph::FeatureSource;
use grimp_metrics::{dataset_stats, evaluate};
use grimp_obs::{
    EventKind, EventSink, FanoutSink, IoFaultKind, IoFaultPlan, JsonlSink, MemorySink, NullSink,
    RealFs,
};
use grimp_table::csv::{read_csv, to_csv_bytes, write_csv};
use grimp_table::{inject_mcar, inject_mnar, CorruptionLog, Imputer, InjectedCell, Table, Value};

use crate::args::{ArgError, Args};

/// Any CLI failure: a single-line user-facing message plus its
/// [`ErrorCategory`], which fixes the process exit code (config = 2,
/// data = 3, io = 4, internal = 5).
#[derive(Debug)]
pub struct CliError {
    message: String,
    category: ErrorCategory,
    exit_override: Option<i32>,
}

impl CliError {
    /// A configuration/usage error (exit code 2).
    pub fn config(message: impl Into<String>) -> Self {
        CliError {
            message: message.into(),
            category: ErrorCategory::Config,
            exit_override: None,
        }
    }

    /// A malformed-input-data error (exit code 3).
    pub fn data(message: impl Into<String>) -> Self {
        CliError {
            message: message.into(),
            category: ErrorCategory::Data,
            exit_override: None,
        }
    }

    /// A filesystem/IO error (exit code 4).
    pub fn io(message: impl Into<String>) -> Self {
        CliError {
            message: message.into(),
            category: ErrorCategory::Io,
            exit_override: None,
        }
    }

    /// The supervisor's crash-loop breaker tripped (exit code
    /// [`crate::supervise::EXIT_CRASH_LOOP`]): the serving child kept dying
    /// faster than the restart budget allows, so respawning it again would
    /// only loop. Internal by category, but with a distinct exit code so
    /// orchestrators can tell "stop restarting me" from a one-off crash.
    pub fn crash_loop(message: impl Into<String>) -> Self {
        CliError {
            message: message.into(),
            category: ErrorCategory::Internal,
            exit_override: Some(crate::supervise::EXIT_CRASH_LOOP),
        }
    }

    /// The process exit code mandated by this error's category (or the
    /// explicit override carried by breaker-style errors).
    pub fn exit_code(&self) -> i32 {
        self.exit_override
            .unwrap_or_else(|| self.category.exit_code())
    }
}

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.message)
    }
}

impl std::error::Error for CliError {}

impl From<ArgError> for CliError {
    fn from(e: ArgError) -> Self {
        CliError::config(e.0)
    }
}

impl From<std::io::Error> for CliError {
    fn from(e: std::io::Error) -> Self {
        CliError::io(e.to_string())
    }
}

impl From<GrimpError> for CliError {
    fn from(e: GrimpError) -> Self {
        CliError {
            message: e.to_string(),
            category: e.category(),
            exit_override: None,
        }
    }
}

/// Top-level usage text.
pub const USAGE: &str = "\
grimp — relational data imputation with graph neural networks

USAGE:
    grimp <command> [args]

COMMANDS:
    impute   <dirty.csv>  [--algo NAME] [--seed N] [--paper] [-o out.csv]
             [--checkpoint-dir DIR] [--resume] [--trace-out FILE]
             [--metrics] [--deadline SECS] [--memory-budget-mb N]
             [--threads N] [--batch-rows N] [--fanout N]
             impute every missing cell; algorithms: grimp (default),
             grimp-e, grimp-linear, missforest, aimnet, turl, embdi-mc,
             datawig, mice, mida, gain, knn, meanmode
             --checkpoint-dir writes a training checkpoint there every
             epoch (grimp variants only); --resume continues from it
             after an interrupted run; the directory is locked while a
             run owns it (a second concurrent run exits 7)
             --trace-out streams the structured training/imputation
             event trace as JSON Lines to FILE (grimp variants only);
             --metrics prints a per-phase timing and loss summary
             --deadline stops training cleanly at the wall-clock budget
             and imputes from whatever epochs completed (exit code 6);
             --memory-budget-mb estimates the model footprint up front
             and downscales deterministically (value-node cap, then
             hidden dims, then sampled mini-batches) instead of OOM-ing
             --threads N runs the hot kernels on the parallel backend
             with N threads (grimp variants only); results are
             bit-identical to the default serial backend, so
             checkpoints and traces carry across backends
             --batch-rows N trains on neighbor-sampled mini-batches of
             N rows per task per epoch instead of the full table, and
             --fanout N caps sampled neighbors per node (default 8) —
             peak memory then scales with the batch, not the table
             (grimp variants only; defaults: full-batch training;
             --batch-rows alone implies the default fanout); sampling
             is deterministic per (seed, epoch); combining it with
             --resume is rejected
             when --memory-budget-mb cannot admit a table even at the
             smallest cap and hidden dims, the run degrades to sampled
             training automatically instead of rejecting the table
             a first Ctrl-C checkpoints, imputes from the current state,
             and exits 130; a second Ctrl-C aborts immediately
             GRIMP_FAULT_FS=kind[:times[:from_op]] injects deterministic
             faults (enospc|perm|torn|transient) into checkpoint-path IO
             for testing; the run degrades instead of failing
             --append-from rows.csv appends those rows to the input table
             instead of refitting it from scratch (see `grimp append`)
    append   <base.csv> --rows rows.csv --checkpoint-dir DIR
             [--algo grimp|grimp-e|grimp-linear] [--seed N] [--paper]
             [--finetune-epochs N] [--drift-band R] [-o out.csv]
             [--threads N] [--deadline SECS] [--memory-budget-mb N]
             [--trace-out FILE] [--metrics]
             append rows to an already-fitted table and impute the grown
             table: the rows are made durable in a write-ahead log
             (DIR/grimp.wal) before any model work, then the base
             checkpoint is warm-started for --finetune-epochs more
             epochs (default 8) on the delta only — or fully refitted
             when the rows introduce new categorical values or no usable
             checkpoint generation exists
             a crash, Ctrl-C, or --deadline at any point leaves the log
             pending; re-running the same append (or with no --rows
             change) replays it and converges bit-identically to the
             uninterrupted run, then rotates the log to
             DIR/grimp.wal.applied
             a pending log holding different rows than requested is a
             conflict (exit 3): re-run with the original rows or delete
             DIR/grimp.wal to abandon that delta
             after the fine-tune, a validation-loss regression beyond
             --drift-band (default 0.25, relative to the base model's
             best) prints a refit recommendation and records it in the
             trace (drift metric, refit_scheduled counter)
    corrupt  <clean.csv>  [--rate R] [--mechanism mcar|mnar] [--seed N]
             [-o out.csv] [--truth truth.csv]
             inject missing values; --truth records the blanked cells
    evaluate --clean c.csv --dirty d.csv --imputed i.csv
             categorical accuracy + normalized RMSE over the blanked cells
    stats    <table.csv>
             rows, columns, distinct values, missingness, S/K/F+/N+ metrics
    generate <AD|AU|CO|CR|FL|IM|MM|TA|TH|TT|XL> [--seed N] [-o out.csv]
             emit one of the paper's synthetic evaluation datasets;
             XL is the scaling synthetic — row count set by --rows
             (default 50000), vocabulary fixed regardless of size
    serve    <train.csv> --checkpoint-dir DIR [--addr HOST:PORT]
             [--algo grimp|grimp-e|grimp-linear] [--seed N] [--paper]
             [--threads N] [--workers N] [--queue N]
             [--request-deadline SECS] [--memory-budget-mb N]
             [--read-timeout-ms N] [--drain-deadline SECS]
             [--reload-poll-ms N] [--max-body-mb N] [--trace-out FILE]
             [--fault-socket SPEC] [--supervise] [--restart-limit N]
             [--restart-window SECS] [--backoff-base-ms N]
             serve the checkpointed model over HTTP: POST /impute takes
             a CSV body and returns the imputed CSV; POST /append takes
             CSV rows, fine-tunes the checkpoint, and swaps the served
             model to the grown table (rows with new categorical values
             are refused 409 — a refit cannot be recovered across a
             restart; use grimp append offline); GET /healthz reports liveness,
             GET /readyz reports readiness (generation, pending append
             log, failed-reload memoization; 503 while draining or an
             append holds the gate), GET /stats reports counters
             POST /append honours an Idempotency-Key header (1-255
             visible ASCII chars): the outcome is journaled durably in
             DIR/grimp.idem before the served table grows, so retrying
             the same key + body after a crash or timeout returns the
             recorded response (Idempotency-Replay: true) instead of
             appending twice; the same key with a different body is
             refused with 422
             a handler panic answers that request 500, quarantines the
             worker's model replica, and rebuilds it — panics and
             workers_replaced are counted in /stats and the drain
             summary (GRIMP_FAULT_PANIC=1 enables a POST /panic fault
             route for testing this isolation)
             the model is restored from DIR (written by a fit with the
             same --algo/--seed/--paper/--threads); when a trainer
             rotates a new checkpoint generation in, workers hot-reload
             it between requests (a model_reloaded trace event records
             the swap) — in-flight requests finish on the old model
             overload never wedges the server: a full queue sheds with
             503 + Retry-After, --request-deadline bounds each request's
             wall clock (504 past it), --memory-budget-mb refuses
             requests whose estimated footprint exceeds the budget (503,
             never OOM), and --read-timeout-ms bounds slow clients (408)
             the bound address is printed on startup (use --addr with
             port 0 to pick a free port); SIGTERM drains within
             --drain-deadline and exits 0, Ctrl-C drains and exits 130
             GRIMP_FAULT_SOCKET=kind[:times[:from_conn]] (or
             --fault-socket) injects deterministic socket faults
             (torn-request|disconnect|malformed|stalled) for testing
             --supervise runs the server as a supervised child process
             (crash-only serving): the child's stdout — including the
             listening-address announcement — is echoed through, and a
             crashed child is respawned with deterministic exponential
             backoff from --backoff-base-ms (default 100, capped at 5s);
             more than --restart-limit crashes (default 5) within
             --restart-window seconds (default 30) trip the crash-loop
             breaker (exit 8) instead of looping; a child that fails
             before announcing readiness propagates its exit code
             unretried; SIGTERM/SIGINT are forwarded to the child, which
             drains as usual — a second signal SIGKILLs it and exits 143
             GRIMP_CRASHPOINT=name[@armfile] aborts the process at a
             named state-mutating boundary (idem-journal | wal-publish |
             checkpoint-rotate | applied-rotate | generation-swap) for
             crash testing; with @armfile the abort fires only once —
             whoever consumes (deletes) the file crashes, so a respawned
             child runs clean
    chaos    [--seed N]
             run the adversarial-input chaos suite: fit + impute every
             hostile table (all-missing columns, single rows, NaN/inf,
             pathological strings, 10k-distinct domains) and verify the
             never-panic/always-impute contract — serially and on the
             parallel backend (--threads 2) — check that malformed
             CSVs are rejected with typed errors, train under every
             injected IO-fault kind and under an already-expired
             deadline and verify each run still fills every cell, cross
             incremental appends with every fs-fault kind, a kill
             mid-fine-tune, a torn append log, and the parallel backend,
             then drive a live `serve` instance through the socket-fault,
             overload, admission, and worker-panic scenarios and verify
             clean drains
             --crashpoints runs the crashpoint sweep instead: for every
             registered boundary, a supervised server is aborted exactly
             there mid-append and must recover — respawn, /readyz 200,
             idempotent replay to exactly one application, a decodable
             checkpoint, a rotated log, and a clean SIGTERM drain
    help     show this text

EXIT CODES:
    0    success (including a SIGTERM-drained serve)
    2    configuration/usage error
    3    malformed input data (including a pending append log that
         conflicts with the requested rows)
    4    filesystem/IO error
    5    internal error
    6    deadline hit (success — imputation written from the epochs
         completed; append: log kept pending, re-run to finish)
    7    checkpoint directory locked by another run
    8    crash-loop breaker tripped (serve --supervise: the child kept
         crashing faster than the restart budget; not respawning)
    130  interrupted by Ctrl-C (success — imputation written from the
         current state; serve: drained then exited; append: log kept
         pending, re-run to finish)
    143  aborted by a second SIGTERM before the drain finished
";

fn load(path: &str) -> Result<Table, CliError> {
    let file = File::open(path).map_err(|e| CliError::io(format!("{path}: {e}")))?;
    // The reader reports malformed CSV (duplicate headers, ragged rows,
    // empty input) as `InvalidData`; anything else is a real IO failure.
    read_csv(BufReader::new(file)).map_err(|e| {
        let msg = format!("{path}: {e}");
        if e.kind() == std::io::ErrorKind::InvalidData {
            CliError::data(msg)
        } else {
            CliError::io(msg)
        }
    })
}

fn save(table: &Table, path: Option<&str>, out: &mut dyn Write) -> Result<(), CliError> {
    match path {
        Some(path) => {
            // Atomic: the whole CSV is rendered in memory, written to a
            // sibling temp file, and renamed into place — a crash or full
            // disk mid-write never leaves a truncated output behind.
            grimp_obs::fs::atomic_write(
                &mut RealFs,
                std::path::Path::new(path),
                &to_csv_bytes(table),
            )
            .map_err(|e| CliError::io(format!("{path}: {e}")))?;
            writeln!(out, "wrote {path}")?;
        }
        None => write_csv(table, out)?,
    }
    Ok(())
}

fn build_baseline(name: &str, seed: u64) -> Result<Box<dyn Imputer>, CliError> {
    Ok(match name {
        "missforest" => Box::new(MissForest::new(MissForestConfig {
            seed,
            ..Default::default()
        })),
        "aimnet" => Box::new(AimNetLike::new(AimNetConfig {
            seed,
            ..Default::default()
        })),
        "turl" => Box::new(TurlSub::new(TurlConfig {
            seed,
            ..Default::default()
        })),
        "embdi-mc" => Box::new(EmbdiMc::new(EmbdiMcConfig {
            seed,
            ..Default::default()
        })),
        "datawig" => Box::new(DataWigLike::new(DataWigConfig {
            seed,
            ..Default::default()
        })),
        "mice" => Box::new(Mice::new(MiceConfig {
            seed,
            ..Default::default()
        })),
        "mida" => Box::new(Mida::new(MidaConfig {
            seed,
            ..Default::default()
        })),
        "gain" => Box::new(Gain::new(GainConfig {
            seed,
            ..Default::default()
        })),
        "knn" => Box::new(KnnImputer::new(5)),
        "meanmode" => Box::new(MeanMode),
        other => {
            return Err(CliError::config(format!(
                "unknown algorithm {other:?} (see `grimp help`)"
            )))
        }
    })
}

/// Build a validated [`Pipeline`] for one of the grimp variants from the
/// CLI options, via the typed config builder.
fn build_pipeline(name: &str, seed: u64, args: &Args) -> Result<Pipeline, CliError> {
    let base = if args.flag("paper") {
        GrimpConfig::paper()
    } else {
        GrimpConfig::fast()
    };
    // Start the grouped sub-configs from the preset's values so only the
    // flags the user actually passed are overridden.
    let mut ckpt = base.checkpointing();
    let mut limits = base.limits();
    let mut builder = GrimpConfigBuilder::from_config(base).seed(seed);
    builder = match name {
        "grimp" => builder,
        "grimp-e" => builder.features(FeatureSource::Embdi),
        "grimp-linear" => builder.task_kind(TaskKind::Linear),
        other => {
            return Err(CliError::config(format!(
                "unknown algorithm {other:?} (see `grimp help`)"
            )))
        }
    };
    if let Some(dir) = args.opt("checkpoint-dir") {
        ckpt.dir = Some(std::path::PathBuf::from(dir));
    }
    ckpt.resume = args.flag("resume");
    builder = builder.checkpointing(ckpt);
    if let Some(raw) = args.opt("deadline") {
        let secs: f64 = raw
            .parse()
            .map_err(|_| CliError::config(format!("--deadline {raw}: cannot parse value")))?;
        limits.deadline_secs = Some(secs);
    }
    if let Some(raw) = args.opt("memory-budget-mb") {
        let mb: usize = raw.parse().map_err(|_| {
            CliError::config(format!("--memory-budget-mb {raw}: cannot parse value"))
        })?;
        limits.memory_budget_mb = Some(mb);
    }
    builder = builder.limits(limits);
    if args.opt("batch-rows").is_some() || args.opt("fanout").is_some() {
        let mut sampler = SamplerConfig::default();
        if let Some(raw) = args.opt("batch-rows") {
            sampler.batch_rows = raw
                .parse()
                .map_err(|_| CliError::config(format!("--batch-rows {raw}: cannot parse value")))?;
        }
        if let Some(raw) = args.opt("fanout") {
            sampler.fanout = raw
                .parse()
                .map_err(|_| CliError::config(format!("--fanout {raw}: cannot parse value")))?;
        }
        builder = builder.sampler(sampler);
    }
    if let Some(raw) = args.opt("threads") {
        let threads: usize = raw
            .parse()
            .map_err(|_| CliError::config(format!("--threads {raw}: cannot parse value")))?;
        // `--threads 1` still selects the parallel backend (pool of one);
        // the builder rejects 0 with a typed ZeroThreads error.
        builder = builder.backend(BackendKind::Parallel { threads });
    }
    if args.opt("finetune-epochs").is_some() || args.opt("drift-band").is_some() {
        let mut ft = grimp::FinetuneConfig::default();
        if let Some(raw) = args.opt("finetune-epochs") {
            ft.epochs = raw.parse().map_err(|_| {
                CliError::config(format!("--finetune-epochs {raw}: cannot parse value"))
            })?;
        }
        if let Some(raw) = args.opt("drift-band") {
            ft.drift_band = raw
                .parse()
                .map_err(|_| CliError::config(format!("--drift-band {raw}: cannot parse value")))?;
        }
        builder = builder.finetune(ft);
    }
    // The process-wide SIGINT flag: a Ctrl-C stops training at the next
    // epoch boundary and the run imputes from its current state.
    builder = builder.shutdown(crate::signal::shutdown_flag());
    // Deterministic IO faults on the checkpoint path, for testing the
    // degradation behaviour of the real binary.
    if let Ok(spec) = std::env::var("GRIMP_FAULT_FS") {
        if !spec.is_empty() {
            let plan = IoFaultPlan::parse(&spec).ok_or_else(|| {
                CliError::config(format!(
                    "GRIMP_FAULT_FS={spec:?}: expected kind[:times[:from_op]] with kind one of \
                     enospc|perm|torn|transient"
                ))
            })?;
            builder = builder.io_fault(Some(plan));
        }
    }
    let config = builder
        .build()
        .map_err(|e| CliError::config(e.to_string()))?;
    Pipeline::new(config).map_err(|e| CliError::config(e.to_string()))
}

/// Print the `--metrics` summary derived from the recorded event stream.
fn write_metrics(sink: &MemorySink, out: &mut dyn Write) -> Result<(), CliError> {
    use grimp_obs::names;
    writeln!(out, "trace: {} events", sink.len())?;
    let phases = [
        ("graph build", names::GRAPH_BUILD),
        ("feature init", names::FEATURE_INIT),
        ("model build", names::MODEL_BUILD),
        ("batch build", names::BATCH_BUILD),
        ("forward", names::FORWARD),
        ("backward", names::BACKWARD),
        ("optimizer", names::OPTIM),
        ("checkpointing", names::CHECKPOINT_SAVE),
        ("imputation", names::IMPUTE),
    ];
    for (label, name) in phases {
        let n = sink.count_of(EventKind::SpanExit, name);
        if n > 0 {
            writeln!(out, "  {label:<14} {:>9.4}s  x{n}", sink.span_seconds(name))?;
        }
    }
    let epochs = sink.count_of(EventKind::SpanExit, names::EPOCH);
    writeln!(out, "epochs: {epochs}")?;
    let train = sink.metric_values(names::TRAIN_LOSS);
    let val = sink.metric_values(names::VAL_LOSS);
    if let (Some(t), Some(v)) = (train.last(), val.last()) {
        writeln!(out, "  final train loss {t:.4}, val loss {v:.4}")?;
    }
    let imputed: f64 = sink
        .events()
        .iter()
        .filter(|e| e.kind == EventKind::Counter && e.name == names::IMPUTED_CELLS)
        .map(|e| e.value)
        .sum();
    writeln!(out, "imputed cells: {imputed}")?;
    Ok(())
}

/// The grimp-variant impute path: Pipeline + event sinks. Returns the
/// imputed table and the process exit code for the run — 0 normally,
/// [`crate::signal::EXIT_DEADLINE`] when `--deadline` stopped training,
/// [`crate::signal::EXIT_INTERRUPTED`] when Ctrl-C did. Either way the
/// imputation is complete.
fn impute_grimp(
    name: &str,
    seed: u64,
    args: &Args,
    table: &Table,
    out: &mut dyn Write,
) -> Result<(Table, i32), CliError> {
    let pipeline = build_pipeline(name, seed, args)?;
    let mut memory = MemorySink::new();
    // An unopenable trace file degrades the sink, not the run: imputation
    // is the contract, observability is best-effort.
    let mut jsonl = match args.opt("trace-out") {
        Some(path) => match JsonlSink::create(path) {
            Ok(sink) => Some(sink),
            Err(e) => {
                writeln!(
                    out,
                    "warning: cannot open trace file {path}: {e}; continuing without a trace"
                )?;
                None
            }
        },
        None => None,
    };
    let mut null = NullSink;
    let want_metrics = args.flag("metrics");
    let want_trace = jsonl.is_some();
    let mut fan = FanoutSink::new();
    if want_metrics {
        fan.add(&mut memory);
    }
    if let Some(sink) = jsonl.as_mut() {
        fan.add(sink);
    }
    let sink: &mut dyn EventSink = if want_metrics || want_trace {
        &mut fan
    } else {
        &mut null
    };
    let mut fitted = pipeline.fit_traced(table, sink)?;
    let imputed = fitted.impute_traced(table, sink)?;
    drop(fan);
    if let Some(sink) = jsonl {
        let path = args.opt("trace-out").unwrap_or_default();
        let written = sink.events_written();
        match sink.into_inner() {
            Ok(_) => writeln!(out, "wrote {written} trace events to {path}")?,
            Err(e) => writeln!(
                out,
                "warning: trace file {path} is incomplete: {e}; imputation unaffected"
            )?,
        }
    }
    if want_metrics {
        write_metrics(&memory, out)?;
    }
    // Surface the run's governance decisions and non-fatal IO problems.
    let report = fitted.report();
    for d in &report.downscales {
        writeln!(out, "memory budget: downscaled {d}")?;
    }
    for msg in &report.io_errors {
        writeln!(out, "warning: {msg}")?;
    }
    if report.checkpoints_disabled {
        writeln!(
            out,
            "warning: checkpointing disabled after repeated write failures; \
             training continued without checkpoints"
        )?;
    }
    let code = if report.interrupted {
        let at = report.stopped_at_epoch.unwrap_or(0);
        writeln!(
            out,
            "interrupted at epoch {at}; imputing from current state"
        )?;
        crate::signal::EXIT_INTERRUPTED
    } else if report.deadline_hit {
        let at = report.stopped_at_epoch.unwrap_or(0);
        writeln!(
            out,
            "deadline hit at epoch {at}; imputing from current state"
        )?;
        crate::signal::EXIT_DEADLINE
    } else {
        0
    };
    Ok((imputed, code))
}

fn cmd_impute(args: &Args, out: &mut dyn Write) -> Result<i32, CliError> {
    args.check_known(&[
        "algo",
        "seed",
        "paper",
        "o",
        "checkpoint-dir",
        "resume",
        "trace-out",
        "metrics",
        "deadline",
        "memory-budget-mb",
        "threads",
        "batch-rows",
        "fanout",
        "append-from",
        "finetune-epochs",
        "drift-band",
    ])?;
    let input = args.require_positional(0, "input CSV path")?;
    let table = load(input)?;
    let algo_name = args.opt("algo").unwrap_or("grimp");
    let seed = args.opt_parse("seed", 0u64)?;
    let is_grimp = algo_name.starts_with("grimp");
    if !is_grimp {
        if args.flag("resume") && args.opt("checkpoint-dir").is_none() {
            return Err(CliError::config("--resume requires --checkpoint-dir DIR"));
        }
        for flag in [
            "checkpoint-dir",
            "trace-out",
            "deadline",
            "memory-budget-mb",
            "threads",
            "batch-rows",
            "fanout",
            "append-from",
            "finetune-epochs",
            "drift-band",
        ] {
            if args.opt(flag).is_some() {
                return Err(CliError::config(format!(
                    "--{flag} is only supported by the grimp variants, not {algo_name:?}"
                )));
            }
        }
        if args.flag("metrics") {
            return Err(CliError::config(format!(
                "--metrics is only supported by the grimp variants, not {algo_name:?}"
            )));
        }
    }
    let display_name = if is_grimp {
        build_pipeline(algo_name, seed, args)?.name().to_string()
    } else {
        build_baseline(algo_name, seed)?.name().to_string()
    };
    writeln!(
        out,
        "{}: {} rows x {} cols, {} missing cells — imputing with {}",
        input,
        table.n_rows(),
        table.n_columns(),
        table.n_missing(),
        display_name
    )?;
    let start = std::time::Instant::now();
    let (imputed, code) = if let Some(rows_path) = args.opt("append-from") {
        if args.opt("batch-rows").is_some() || args.opt("fanout").is_some() {
            return Err(CliError::config(
                "--append-from cannot be combined with sampled training \
                 (--batch-rows/--fanout)",
            ));
        }
        append_grimp(algo_name, seed, args, &table, rows_path, out)?
    } else if is_grimp {
        impute_grimp(algo_name, seed, args, &table, out)?
    } else {
        (build_baseline(algo_name, seed)?.impute(&table), 0)
    };
    writeln!(
        out,
        "done in {:.2}s; {} cells remain missing",
        start.elapsed().as_secs_f64(),
        imputed.n_missing()
    )?;
    save(&imputed, args.opt("o"), out)?;
    Ok(code)
}

/// The append path shared by `grimp append` and `grimp impute
/// --append-from`: log the delta rows to the WAL, fine-tune or refit, and
/// write the imputed concatenated table. Returns the process exit code —
/// 0 normally, 130/6 when Ctrl-C or `--deadline` stopped the fine-tune
/// early (the WAL then stays pending so a re-run resumes it).
fn append_grimp(
    name: &str,
    seed: u64,
    args: &Args,
    base: &Table,
    rows_path: &str,
    out: &mut dyn Write,
) -> Result<(Table, i32), CliError> {
    let rows_table = load(rows_path)?;
    let names_match = rows_table.n_columns() == base.n_columns()
        && (0..base.n_columns())
            .all(|j| rows_table.schema().column(j).name == base.schema().column(j).name);
    if !names_match {
        return Err(CliError::data(format!(
            "{rows_path}: columns do not match the base table's header"
        )));
    }
    let rows = grimp::table_to_wal_rows(&rows_table);
    let pipeline = build_pipeline(name, seed, args)?;

    let mut memory = MemorySink::new();
    let mut jsonl = match args.opt("trace-out") {
        Some(path) => match JsonlSink::create(path) {
            Ok(sink) => Some(sink),
            Err(e) => {
                writeln!(
                    out,
                    "warning: cannot open trace file {path}: {e}; continuing without a trace"
                )?;
                None
            }
        },
        None => None,
    };
    let mut null = NullSink;
    let want_metrics = args.flag("metrics");
    let want_trace = jsonl.is_some();
    let mut fan = FanoutSink::new();
    if want_metrics {
        fan.add(&mut memory);
    }
    if let Some(sink) = jsonl.as_mut() {
        fan.add(sink);
    }
    let sink: &mut dyn EventSink = if want_metrics || want_trace {
        &mut fan
    } else {
        &mut null
    };
    let outcome = pipeline.append_traced(base, &rows, sink)?;
    drop(fan);
    if let Some(sink) = jsonl {
        let path = args.opt("trace-out").unwrap_or_default();
        let written = sink.events_written();
        match sink.into_inner() {
            Ok(_) => writeln!(out, "wrote {written} trace events to {path}")?,
            Err(e) => writeln!(
                out,
                "warning: trace file {path} is incomplete: {e}; imputation unaffected"
            )?,
        }
    }
    if want_metrics {
        write_metrics(&memory, out)?;
    }

    let mut how = outcome.path.label().to_string();
    if outcome.replayed {
        how.push_str(", replayed a pending append log");
    }
    if outcome.torn_tail {
        how.push_str(", dropped a torn tail");
    }
    writeln!(
        out,
        "appended {} row(s) via {how}; table is now {} rows",
        outcome.appended_rows,
        outcome.table.n_rows()
    )?;
    let report = &outcome.report;
    if let Some(drift) = report.drift {
        writeln!(
            out,
            "drift check: validation regressed {:.1}% vs the base model{}",
            100.0 * drift,
            if report.refit_scheduled {
                " — beyond the band, schedule a full refit"
            } else {
                " (within the band)"
            }
        )?;
    }
    for d in &report.downscales {
        writeln!(out, "memory budget: downscaled {d}")?;
    }
    for msg in &report.io_errors {
        writeln!(out, "warning: {msg}")?;
    }
    let code = if report.interrupted {
        writeln!(
            out,
            "interrupted at epoch {}; append log kept pending — re-run to finish the fine-tune",
            report.stopped_at_epoch.unwrap_or(0)
        )?;
        crate::signal::EXIT_INTERRUPTED
    } else if report.deadline_hit {
        writeln!(
            out,
            "deadline hit at epoch {}; append log kept pending — re-run to finish the fine-tune",
            report.stopped_at_epoch.unwrap_or(0)
        )?;
        crate::signal::EXIT_DEADLINE
    } else {
        0
    };
    Ok((outcome.imputed, code))
}

fn cmd_append(args: &Args, out: &mut dyn Write) -> Result<i32, CliError> {
    args.check_known(&[
        "rows",
        "algo",
        "seed",
        "paper",
        "o",
        "checkpoint-dir",
        "trace-out",
        "metrics",
        "deadline",
        "memory-budget-mb",
        "threads",
        "finetune-epochs",
        "drift-band",
    ])?;
    let input = args.require_positional(0, "base CSV path")?;
    let base = load(input)?;
    let rows_path = args
        .opt("rows")
        .ok_or_else(|| CliError::config("append requires --rows FILE (the rows to add)"))?;
    let algo_name = args.opt("algo").unwrap_or("grimp");
    if !algo_name.starts_with("grimp") {
        return Err(CliError::config(format!(
            "append is only supported by the grimp variants, not {algo_name:?}"
        )));
    }
    let seed = args.opt_parse("seed", 0u64)?;
    writeln!(
        out,
        "{}: {} rows x {} cols — appending rows from {}",
        input,
        base.n_rows(),
        base.n_columns(),
        rows_path
    )?;
    let start = std::time::Instant::now();
    let (imputed, code) = append_grimp(algo_name, seed, args, &base, rows_path, out)?;
    writeln!(
        out,
        "done in {:.2}s; {} cells remain missing",
        start.elapsed().as_secs_f64(),
        imputed.n_missing()
    )?;
    save(&imputed, args.opt("o"), out)?;
    Ok(code)
}

fn cmd_corrupt(args: &Args, out: &mut dyn Write) -> Result<(), CliError> {
    args.check_known(&["rate", "mechanism", "seed", "o", "truth"])?;
    let input = args.require_positional(0, "input CSV path")?;
    let mut table = load(input)?;
    let rate = args.opt_parse("rate", 0.2f64)?;
    let seed = args.opt_parse("seed", 0u64)?;
    let mut rng = StdRng::seed_from_u64(seed);
    let log = match args.opt("mechanism").unwrap_or("mcar") {
        "mcar" => inject_mcar(&mut table, rate, &mut rng),
        "mnar" => inject_mnar(&mut table, rate, &mut rng),
        other => {
            return Err(CliError::config(format!(
                "unknown mechanism {other:?} (mcar|mnar)"
            )))
        }
    };
    writeln!(
        out,
        "blanked {} cells ({:.1}% of table)",
        log.len(),
        100.0 * table.missing_fraction()
    )?;
    if let Some(truth_path) = args.opt("truth") {
        let mut w = BufWriter::new(
            File::create(truth_path).map_err(|e| CliError::io(format!("{truth_path}: {e}")))?,
        );
        writeln!(w, "row,col,value")?;
        for cell in &log.cells {
            writeln!(w, "{},{},{}", cell.row, cell.col, truth_text(&table, cell))?;
        }
        writeln!(out, "wrote ground truth to {truth_path}")?;
    }
    save(&table, args.opt("o"), out)
}

fn truth_text(table: &Table, cell: &InjectedCell) -> String {
    match cell.truth {
        Value::Cat(code) => table.dictionary(cell.col)[code as usize].clone(),
        Value::Num(v) => format!("{v}"),
        Value::Null => unreachable!("log never stores null truths"),
    }
}

fn cmd_evaluate(args: &Args, out: &mut dyn Write) -> Result<(), CliError> {
    args.check_known(&["clean", "dirty", "imputed"])?;
    let clean = load(
        args.opt("clean")
            .ok_or_else(|| CliError::config("--clean required"))?,
    )?;
    let dirty = load(
        args.opt("dirty")
            .ok_or_else(|| CliError::config("--dirty required"))?,
    )?;
    let imputed = load(
        args.opt("imputed")
            .ok_or_else(|| CliError::config("--imputed required"))?,
    )?;
    if clean.n_rows() != dirty.n_rows() || clean.n_columns() != dirty.n_columns() {
        return Err(CliError::data(
            "clean and dirty tables have different shapes",
        ));
    }
    // reconstruct the corruption log: cells missing in dirty, present in clean
    let mut log = CorruptionLog::default();
    for (i, j) in dirty.missing_cells() {
        let truth = clean.get(i, j);
        if !truth.is_null() {
            log.cells.push(InjectedCell {
                row: i,
                col: j,
                truth,
            });
        }
    }
    let result = evaluate(&clean, &imputed, &log);
    writeln!(out, "test cells: {}", log.len())?;
    match result.accuracy() {
        Some(a) => writeln!(
            out,
            "categorical accuracy: {a:.4} ({}/{})",
            result.cat_correct, result.cat_total
        )?,
        None => writeln!(out, "categorical accuracy: n/a")?,
    }
    match result.rmse() {
        Some(r) => writeln!(out, "numerical RMSE (column-std normalized): {r:.4}")?,
        None => writeln!(out, "numerical RMSE: n/a")?,
    }
    if result.left_missing > 0 {
        writeln!(
            out,
            "warning: {} cells left missing by the imputer",
            result.left_missing
        )?;
    }
    Ok(())
}

fn cmd_stats(args: &Args, out: &mut dyn Write) -> Result<(), CliError> {
    args.check_known(&[])?;
    let input = args.require_positional(0, "input CSV path")?;
    let table = load(input)?;
    let s = dataset_stats(&table);
    writeln!(out, "rows:              {}", s.rows)?;
    writeln!(
        out,
        "columns:           {} ({} categorical, {} numerical)",
        s.cols, s.n_cat, s.n_num
    )?;
    writeln!(out, "distinct values:   {}", s.distinct)?;
    writeln!(
        out,
        "missing cells:     {} ({:.1}%)",
        table.n_missing(),
        100.0 * table.missing_fraction()
    )?;
    writeln!(out, "S_avg (skewness):  {:.2}", s.s_avg)?;
    writeln!(out, "K_avg (kurtosis):  {:.2}", s.k_avg)?;
    writeln!(out, "F+_avg:            {:.2}", s.f_plus_avg)?;
    writeln!(out, "N+_avg:            {:.2}", s.n_plus_avg)?;
    Ok(())
}

fn cmd_generate(args: &Args, out: &mut dyn Write) -> Result<(), CliError> {
    args.check_known(&["seed", "o", "rows"])?;
    let abbr = args.require_positional(0, "dataset abbreviation")?;
    let seed = args.opt_parse("seed", 0u64)?;
    let d = if abbr.eq_ignore_ascii_case("XL") {
        let rows = args.opt_parse("rows", 50_000usize)?;
        if rows == 0 {
            return Err(CliError::config("--rows must be at least 1".to_string()));
        }
        generate_large(rows, seed)
    } else {
        if args.opt("rows").is_some() {
            return Err(CliError::config(
                "--rows only applies to the XL scaling synthetic".to_string(),
            ));
        }
        let id = DatasetId::ALL
            .into_iter()
            .find(|id| id.abbr().eq_ignore_ascii_case(abbr))
            .ok_or_else(|| {
                CliError::config(format!(
                    "unknown dataset {abbr:?} (AD AU CO CR FL IM MM TA TH TT XL)"
                ))
            })?;
        generate(id, seed)
    };
    writeln!(
        out,
        "{}: {} rows, {} columns, {} FDs",
        d.name,
        d.table.n_rows(),
        d.table.n_columns(),
        d.fds.len()
    )?;
    save(&d.table, args.opt("o"), out)
}

/// Build the pipeline whose configuration must match the fit that wrote
/// the served checkpoint. Only options that determine the model's
/// *structure* (variant, seed, paper preset, backend) are honored here —
/// serve-level flags like `--memory-budget-mb` govern admission, and must
/// never change the shapes the checkpoint was written with.
fn build_serve_pipeline(args: &Args) -> Result<Pipeline, CliError> {
    let seed = args.opt_parse("seed", 0u64)?;
    let name = args.opt("algo").unwrap_or("grimp");
    let base = if args.flag("paper") {
        GrimpConfig::paper()
    } else {
        GrimpConfig::fast()
    };
    let mut builder = GrimpConfigBuilder::from_config(base).seed(seed);
    builder = match name {
        "grimp" => builder,
        "grimp-e" => builder.features(FeatureSource::Embdi),
        "grimp-linear" => builder.task_kind(TaskKind::Linear),
        other => {
            return Err(CliError::config(format!(
                "unknown algorithm {other:?} (serve supports the grimp variants)"
            )))
        }
    };
    if let Some(raw) = args.opt("threads") {
        let threads: usize = raw
            .parse()
            .map_err(|_| CliError::config(format!("--threads {raw}: cannot parse value")))?;
        builder = builder.backend(BackendKind::Parallel { threads });
    }
    let config = builder
        .build()
        .map_err(|e| CliError::config(e.to_string()))?;
    Pipeline::new(config).map_err(|e| CliError::config(e.to_string()))
}

/// Parse the serving bounds from the CLI flags, rejecting degenerate
/// values (`0` deadlines, `0` budgets) with typed configuration errors.
fn build_serve_config(args: &Args) -> Result<grimp_serve::ServeConfig, CliError> {
    use std::time::Duration;
    let mut cfg = grimp_serve::ServeConfig {
        addr: args.opt("addr").unwrap_or("127.0.0.1:0").to_string(),
        seed: args.opt_parse("seed", 0u64)?,
        ..Default::default()
    };
    cfg.workers = args.opt_parse("workers", 2usize)?;
    if cfg.workers == 0 {
        return Err(CliError::config("--workers must be at least 1"));
    }
    cfg.queue_depth = args.opt_parse("queue", 32usize)?;
    if let Some(raw) = args.opt("request-deadline") {
        let secs: f64 = raw.parse().map_err(|_| {
            CliError::config(format!("--request-deadline {raw}: cannot parse value"))
        })?;
        if !secs.is_finite() || secs <= 0.0 {
            return Err(CliError::config(format!(
                "--request-deadline must be finite and positive, got {raw}"
            )));
        }
        cfg.request_deadline = Some(Duration::from_secs_f64(secs));
    }
    if let Some(raw) = args.opt("memory-budget-mb") {
        let mb: u64 = raw.parse().map_err(|_| {
            CliError::config(format!("--memory-budget-mb {raw}: cannot parse value"))
        })?;
        if mb == 0 {
            return Err(CliError::config("--memory-budget-mb must be at least 1"));
        }
        cfg.memory_budget_bytes = Some(mb * 1024 * 1024);
    }
    let read_timeout_ms = args.opt_parse("read-timeout-ms", 5000u64)?;
    if read_timeout_ms == 0 {
        return Err(CliError::config("--read-timeout-ms must be at least 1"));
    }
    cfg.read_timeout = Duration::from_millis(read_timeout_ms);
    if let Some(raw) = args.opt("drain-deadline") {
        let secs: f64 = raw
            .parse()
            .map_err(|_| CliError::config(format!("--drain-deadline {raw}: cannot parse value")))?;
        if !secs.is_finite() || secs <= 0.0 {
            return Err(CliError::config(format!(
                "--drain-deadline must be finite and positive, got {raw}"
            )));
        }
        cfg.drain_deadline = Duration::from_secs_f64(secs);
    }
    cfg.reload_poll = Duration::from_millis(args.opt_parse("reload-poll-ms", 200u64)?.max(1));
    let max_body_mb = args.opt_parse("max-body-mb", 8usize)?;
    if max_body_mb == 0 {
        return Err(CliError::config("--max-body-mb must be at least 1"));
    }
    cfg.max_body_bytes = max_body_mb * 1024 * 1024;
    let fault_spec = match args.opt("fault-socket") {
        Some(spec) => Some(spec.to_string()),
        None => std::env::var(grimp_serve::FAULT_SOCKET_ENV)
            .ok()
            .filter(|s| !s.is_empty()),
    };
    if let Some(spec) = fault_spec {
        cfg.fault = Some(grimp_serve::SocketFaultPlan::parse(&spec).ok_or_else(|| {
            CliError::config(format!(
                "socket fault {spec:?}: expected kind[:times[:from_conn]] with kind one of \
                 torn-request|disconnect|malformed|stalled"
            ))
        })?);
    }
    // Fault hook, not a flag: the panic route exists only so harnesses can
    // prove panic isolation against a real process.
    cfg.panic_route =
        std::env::var(grimp_serve::FAULT_PANIC_ENV).is_ok_and(|v| !v.is_empty() && v != "0");
    Ok(cfg)
}

fn cmd_serve(args: &Args, out: &mut dyn Write) -> Result<i32, CliError> {
    // Sampling shapes *training*; serve restores an already-fitted
    // checkpoint, so these flags can only mean a misunderstanding — reject
    // them up front instead of silently ignoring them.
    for flag in ["batch-rows", "fanout"] {
        if args.opt(flag).is_some() {
            return Err(CliError::config(format!(
                "--{flag} is a training-time option; serve restores an already-fitted checkpoint \
                 (pass it to `grimp impute` instead)"
            )));
        }
    }
    args.check_known(&[
        "algo",
        "seed",
        "paper",
        "threads",
        "checkpoint-dir",
        "addr",
        "workers",
        "queue",
        "request-deadline",
        "memory-budget-mb",
        "read-timeout-ms",
        "drain-deadline",
        "reload-poll-ms",
        "max-body-mb",
        "trace-out",
        "fault-socket",
    ])?;
    let input = args.require_positional(0, "training CSV path")?;
    let train = load(input)?;
    let ckpt_dir = args.opt("checkpoint-dir").ok_or_else(|| {
        CliError::config("serve requires --checkpoint-dir DIR (where a fit wrote its checkpoint)")
    })?;
    let pipeline = build_serve_pipeline(args)?;
    let cfg = build_serve_config(args)?;
    let workers = cfg.workers;

    // An unopenable trace file degrades the sink, not the server.
    let sink: Box<dyn EventSink + Send> = match args.opt("trace-out") {
        Some(path) => match JsonlSink::create(path) {
            Ok(sink) => Box::new(sink),
            Err(e) => {
                writeln!(
                    out,
                    "warning: cannot open trace file {path}: {e}; continuing without a trace"
                )?;
                Box::new(NullSink)
            }
        },
        None => Box::new(NullSink),
    };

    // SIGTERM joins SIGINT on the graceful path: stop accepting, drain,
    // exit 0 (TERM) or 130 (INT).
    crate::signal::install_sigterm();
    let source = grimp_serve::ModelSource {
        pipeline,
        train,
        checkpoint_dir: std::path::PathBuf::from(ckpt_dir),
    };
    let server = grimp_serve::Server::bind(cfg, source, crate::signal::shutdown_flag(), sink)?;
    let addr = server
        .local_addr()
        .map_err(|e| CliError::io(format!("querying bound address: {e}")))?;
    writeln!(out, "grimp serve listening on {addr} (workers={workers})")?;
    out.flush()?;

    let report = server.run()?;
    writeln!(
        out,
        "drained {}; served {}, shed {}, over-budget {}, reloads {}, appends {}, panics {}, \
         workers-replaced {}",
        if report.clean {
            "clean"
        } else {
            "with stragglers (drain deadline expired)"
        },
        report.served,
        report.shed,
        report.over_budget,
        report.reloads,
        report.appends,
        report.panics,
        report.workers_replaced,
    )?;
    let code = if crate::signal::last_signal() == crate::signal::SIGINT {
        crate::signal::EXIT_INTERRUPTED
    } else {
        0
    };
    Ok(code)
}

/// Run the adversarial-input chaos suite against the real pipeline.
fn cmd_chaos(args: &Args, out: &mut dyn Write) -> Result<(), CliError> {
    args.check_known(&["seed", "crashpoints"])?;
    let seed = args.opt_parse("seed", 0u64)?;
    if args.flag("crashpoints") {
        // The sweep re-execs this binary as a supervised server, so it only
        // runs under the real `grimp` CLI (never in-process from a test
        // harness, whose current_exe is the test binary).
        let failures = chaos_crashpoints(out, seed)?;
        if failures > 0 {
            return Err(CliError::data(format!(
                "{failures} crashpoint(s) violated the recovery contract"
            )));
        }
        writeln!(out, "chaos: every crashpoint recovered")?;
        return Ok(());
    }
    let config = GrimpConfigBuilder::from_config(GrimpConfig::fast())
        .seed(seed)
        .max_epochs(6)
        .patience(6)
        .build()
        .map_err(|e| CliError::config(e.to_string()))?;
    let pipeline = Pipeline::new(config).map_err(|e| CliError::config(e.to_string()))?;
    let mut failures = 0usize;
    for s in grimp_table::adversarial::scenarios() {
        let verdict = match pipeline.fit(&s.table) {
            Ok(mut fitted) => {
                let left = fitted.impute(&s.table)?.n_missing();
                let tiers: Vec<&str> = fitted.column_tiers().iter().map(|t| t.label()).collect();
                if left == 0 {
                    format!("ok (tiers: {})", tiers.join("/"))
                } else {
                    failures += 1;
                    format!("FAILED: {left} cells left missing")
                }
            }
            Err(e) => {
                failures += 1;
                format!("FAILED: fit error: {e}")
            }
        };
        writeln!(out, "chaos {:<26} {} — {}", s.name, verdict, s.detail)?;
    }
    for (name, text) in grimp_table::adversarial::malformed_csvs() {
        match grimp_table::csv::read_csv_str(text) {
            Err(e) => writeln!(out, "chaos csv:{name:<22} rejected ({e})")?,
            Ok(_) => {
                failures += 1;
                writeln!(out, "chaos csv:{name:<22} FAILED: parsed without error")?;
            }
        }
    }

    // IO-fault matrix: train with every injected fault kind poisoning the
    // checkpoint path. The run must absorb the faults (retry or degrade to
    // checkpoint-less training) and still fill every cell.
    let small = grimp_table::csv::read_csv_str(
        "city,country\nParis,France\nRome,Italy\nParis,\nRome,\nParis,France\nMadrid,Spain\nMadrid,\nRome,Italy\n",
    )
    .map_err(|e| CliError::data(e.to_string()))?;
    let chaos_dir = std::env::temp_dir().join(format!("grimp-chaos-{}-{seed}", std::process::id()));
    for kind in IoFaultKind::all() {
        let dir = chaos_dir.join(kind.label());
        std::fs::create_dir_all(&dir)?;
        let plan = match kind {
            IoFaultKind::Transient => IoFaultPlan::transient(2),
            other => IoFaultPlan::persistent(other),
        };
        let config = GrimpConfigBuilder::from_config(GrimpConfig::fast())
            .seed(seed)
            .max_epochs(3)
            .patience(3)
            .checkpointing(CheckpointPolicy {
                dir: Some(dir.clone()),
                ..Default::default()
            })
            .io_fault(Some(plan))
            .build()
            .map_err(|e| CliError::config(e.to_string()))?;
        let pipeline = Pipeline::new(config).map_err(|e| CliError::config(e.to_string()))?;
        let verdict = match pipeline.fit(&small) {
            Ok(mut fitted) => {
                let left = fitted.impute(&small)?.n_missing();
                let warnings = fitted.report().io_errors.len();
                if left == 0 {
                    format!("ok ({warnings} io warning(s))")
                } else {
                    failures += 1;
                    format!("FAILED: {left} cells left missing")
                }
            }
            Err(e) => {
                failures += 1;
                format!("FAILED: fit error: {e}")
            }
        };
        writeln!(out, "chaos io:{:<24} {verdict}", kind.label())?;
    }
    std::fs::remove_dir_all(&chaos_dir).ok();

    // Deadline scenario: an already-expired wall-clock budget must stop
    // training before the first epoch and still fill every cell from the
    // degradation ladder.
    let config = GrimpConfigBuilder::from_config(GrimpConfig::fast())
        .seed(seed)
        .limits(ResourceLimits {
            deadline_secs: Some(1e-9),
            memory_budget_mb: None,
        })
        .build()
        .map_err(|e| CliError::config(e.to_string()))?;
    let pipeline = Pipeline::new(config).map_err(|e| CliError::config(e.to_string()))?;
    let verdict = match pipeline.fit(&small) {
        Ok(mut fitted) => {
            let left = fitted.impute(&small)?.n_missing();
            let hit = fitted.report().deadline_hit;
            if left == 0 && hit {
                "ok (deadline hit, all cells filled)".to_string()
            } else {
                failures += 1;
                format!("FAILED: {left} cells left, deadline_hit={hit}")
            }
        }
        Err(e) => {
            failures += 1;
            format!("FAILED: fit error: {e}")
        }
    };
    writeln!(out, "chaos {:<27} {verdict}", "deadline:expired")?;

    // Parallel-backend crossing: the adversarial scenarios again, but on
    // the fixed-partition thread pool. Chaos inputs must not depend on a
    // backend — the contract holds for every reduction strategy.
    let config = GrimpConfigBuilder::from_config(GrimpConfig::fast())
        .seed(seed)
        .max_epochs(3)
        .patience(3)
        .backend(BackendKind::Parallel { threads: 2 })
        .build()
        .map_err(|e| CliError::config(e.to_string()))?;
    let pipeline = Pipeline::new(config).map_err(|e| CliError::config(e.to_string()))?;
    for s in grimp_table::adversarial::scenarios() {
        let verdict = match pipeline.fit(&s.table) {
            Ok(mut fitted) => {
                let left = fitted.impute(&s.table)?.n_missing();
                if left == 0 {
                    "ok".to_string()
                } else {
                    failures += 1;
                    format!("FAILED: {left} cells left missing")
                }
            }
            Err(e) => {
                failures += 1;
                format!("FAILED: fit error: {e}")
            }
        };
        writeln!(out, "chaos par2:{:<21} {verdict}", s.name)?;
    }

    // Sampled-training crossing: the adversarial scenarios once more with
    // neighbor-sampled mini-batches. Degenerate tables (single rows,
    // all-missing columns, huge domains) must survive sampling too.
    let config = GrimpConfigBuilder::from_config(GrimpConfig::fast())
        .seed(seed)
        .max_epochs(3)
        .patience(3)
        .sampler(SamplerConfig {
            batch_rows: 4,
            fanout: 2,
        })
        .build()
        .map_err(|e| CliError::config(e.to_string()))?;
    let pipeline = Pipeline::new(config).map_err(|e| CliError::config(e.to_string()))?;
    for s in grimp_table::adversarial::scenarios() {
        let verdict = match pipeline.fit(&s.table) {
            Ok(mut fitted) => {
                let left = fitted.impute(&s.table)?.n_missing();
                if left == 0 {
                    "ok".to_string()
                } else {
                    failures += 1;
                    format!("FAILED: {left} cells left missing")
                }
            }
            Err(e) => {
                failures += 1;
                format!("FAILED: fit error: {e}")
            }
        };
        writeln!(out, "chaos smpl:{:<21} {verdict}", s.name)?;
    }

    failures += chaos_append(out, &small, seed)?;
    failures += chaos_serve(out, &small, seed)?;

    if failures > 0 {
        return Err(CliError::data(format!(
            "{failures} chaos scenario(s) violated the never-panic/always-impute contract"
        )));
    }
    writeln!(out, "chaos: all scenarios upheld the contract")?;
    Ok(())
}

/// Incremental-append chaos: interleave fit → append → crash/replay while
/// every injected fs-fault kind poisons the checkpoint directory, then
/// cross the interleaving onto the two-thread parallel backend. The
/// contract: an append either completes with every cell filled or fails
/// with a typed error — never a panic, never a half-applied table — and a
/// pending or torn log always replays to a full imputation.
fn chaos_append(out: &mut dyn Write, small: &Table, seed: u64) -> Result<usize, CliError> {
    use grimp::{FinetuneConfig, ShutdownFlag, WAL_APPLIED_FILE, WAL_FILE};
    use std::path::Path;

    let mut failures = 0usize;
    let root =
        std::env::temp_dir().join(format!("grimp-chaos-append-{}-{seed}", std::process::id()));

    // Two delta rows in the base schema, one hole each, no new dictionary
    // values — the fine-tune path.
    let delta = grimp_table::csv::read_csv_str("city,country\nParis,\n,Italy\n")
        .map_err(|e| CliError::data(e.to_string()))?;
    let rows = grimp::table_to_wal_rows(&delta);

    let build = |dir: &Path,
                 fault: Option<IoFaultPlan>,
                 backend: Option<BackendKind>,
                 shutdown: Option<ShutdownFlag>|
     -> Result<Pipeline, CliError> {
        let mut builder = GrimpConfigBuilder::from_config(GrimpConfig::fast())
            .seed(seed)
            .max_epochs(3)
            .patience(3)
            .checkpointing(CheckpointPolicy {
                dir: Some(dir.to_path_buf()),
                every: 1,
                ..Default::default()
            })
            .finetune(FinetuneConfig {
                epochs: 2,
                drift_band: 0.25,
            })
            .io_fault(fault);
        if let Some(backend) = backend {
            builder = builder.backend(backend);
        }
        if let Some(flag) = shutdown {
            builder = builder.shutdown(flag);
        }
        let config = builder
            .build()
            .map_err(|e| CliError::config(e.to_string()))?;
        Pipeline::new(config).map_err(|e| CliError::config(e.to_string()))
    };

    // Fault matrix: fit clean, then append under the poisoned fs. The
    // append must absorb the fault (io warnings) or refuse with a typed
    // error that leaves the log replayable on a healthy fs.
    for kind in IoFaultKind::all() {
        let dir = root.join(format!("io-{}", kind.label()));
        std::fs::create_dir_all(&dir)?;
        build(&dir, None, None, None)?
            .fit(small)
            .map_err(|e| CliError::data(format!("chaos append base fit: {e}")))?;
        let plan = match kind {
            IoFaultKind::Transient => IoFaultPlan::transient(2),
            other => IoFaultPlan::persistent(other),
        };
        let verdict = match build(&dir, Some(plan), None, None)?.append(small, &rows) {
            Ok(outcome) if outcome.imputed.n_missing() == 0 => format!(
                "ok via {} ({} io warning(s))",
                outcome.path.label(),
                outcome.report.io_errors.len()
            ),
            Ok(outcome) => {
                failures += 1;
                format!("FAILED: {} cells left missing", outcome.imputed.n_missing())
            }
            Err(e) if e.category() == ErrorCategory::Internal => {
                failures += 1;
                format!("FAILED: internal error: {e}")
            }
            Err(e) => {
                // A typed refusal is within contract as long as replaying
                // the same append on a healthy fs converges.
                match build(&dir, None, None, None)?.append(small, &rows) {
                    Ok(outcome) if outcome.imputed.n_missing() == 0 => {
                        format!("ok (typed {:?} error, replay recovered)", e.category())
                    }
                    Ok(outcome) => {
                        failures += 1;
                        format!(
                            "FAILED: replay left {} cells missing",
                            outcome.imputed.n_missing()
                        )
                    }
                    Err(replay_err) => {
                        failures += 1;
                        format!("FAILED: replay error: {replay_err}")
                    }
                }
            }
        };
        writeln!(out, "chaos app:{:<23} {verdict}", kind.label())?;
    }

    // Kill mid-fine-tune: a pre-requested shutdown flag stops the append
    // at the first epoch boundary. The log must stay pending, and a rerun
    // of the identical append must finish, fill every cell, and rotate.
    {
        let dir = root.join("killed");
        std::fs::create_dir_all(&dir)?;
        build(&dir, None, None, None)?
            .fit(small)
            .map_err(|e| CliError::data(format!("chaos append base fit: {e}")))?;
        let flag = ShutdownFlag::new();
        flag.request();
        let verdict = match build(&dir, None, None, Some(flag))?.append(small, &rows) {
            Ok(first) if first.report.interrupted && dir.join(WAL_FILE).exists() => {
                match build(&dir, None, None, None)?.append(small, &rows) {
                    Ok(second)
                        if second.imputed.n_missing() == 0
                            && !dir.join(WAL_FILE).exists()
                            && dir.join(WAL_APPLIED_FILE).exists() =>
                    {
                        format!("ok (pending log resumed via {})", second.path.label())
                    }
                    Ok(second) => {
                        failures += 1;
                        format!(
                            "FAILED: rerun left {} cells missing or the log unrotated",
                            second.imputed.n_missing()
                        )
                    }
                    Err(e) => {
                        failures += 1;
                        format!("FAILED: rerun error: {e}")
                    }
                }
            }
            Ok(_) => {
                failures += 1;
                "FAILED: interrupted append rotated its log early".to_string()
            }
            Err(e) => {
                failures += 1;
                format!("FAILED: interrupted append error: {e}")
            }
        };
        writeln!(out, "chaos app:{:<23} {verdict}", "kill-mid-finetune")?;
    }

    // Torn log: complete an append, un-rotate the applied segment back to
    // pending, truncate its tail mid-record, and append again. The intact
    // prefix is a prefix of the request, so the log is rewritten whole and
    // the replay must still fill everything.
    {
        let dir = root.join("torn");
        std::fs::create_dir_all(&dir)?;
        build(&dir, None, None, None)?
            .fit(small)
            .map_err(|e| CliError::data(format!("chaos append base fit: {e}")))?;
        let pipeline = build(&dir, None, None, None)?;
        let verdict = match pipeline.append(small, &rows) {
            Ok(_) => {
                std::fs::rename(dir.join(WAL_APPLIED_FILE), dir.join(WAL_FILE))?;
                let whole = std::fs::read(dir.join(WAL_FILE))?;
                std::fs::write(dir.join(WAL_FILE), &whole[..whole.len() - 5])?;
                match pipeline.append(small, &rows) {
                    Ok(outcome) if outcome.imputed.n_missing() == 0 && outcome.torn_tail => {
                        "ok (torn tail dropped, replay converged)".to_string()
                    }
                    Ok(outcome) => {
                        failures += 1;
                        format!(
                            "FAILED: {} cells missing, torn_tail={}",
                            outcome.imputed.n_missing(),
                            outcome.torn_tail
                        )
                    }
                    Err(e) => {
                        failures += 1;
                        format!("FAILED: torn replay error: {e}")
                    }
                }
            }
            Err(e) => {
                failures += 1;
                format!("FAILED: initial append error: {e}")
            }
        };
        writeln!(out, "chaos app:{:<23} {verdict}", "torn-log-replay")?;
    }

    // Parallel-backend interleaving: fit on two threads, append, impute
    // the grown table mid-stream, then append a second delta that grows
    // the dictionary and must take the refit path.
    {
        let dir = root.join("par2");
        std::fs::create_dir_all(&dir)?;
        let backend = BackendKind::Parallel { threads: 2 };
        build(&dir, None, Some(backend), None)?
            .fit(small)
            .map_err(|e| CliError::data(format!("chaos append base fit: {e}")))?;
        let pipeline = build(&dir, None, Some(backend), None)?;
        let verdict = (|| -> Result<String, String> {
            let first = pipeline.append(small, &rows).map_err(|e| e.to_string())?;
            let mut model = first.model;
            let mid = model.impute(&first.table).map_err(|e| e.to_string())?;
            if mid.n_missing() != 0 {
                return Err(format!("{} cells missing mid-stream", mid.n_missing()));
            }
            let growth = grimp_table::csv::read_csv_str("city,country\nBerlin,\n")
                .map_err(|e| e.to_string())?;
            let second = pipeline
                .append(&first.table, &grimp::table_to_wal_rows(&growth))
                .map_err(|e| e.to_string())?;
            if second.imputed.n_missing() != 0 {
                return Err(format!(
                    "{} cells missing after refit",
                    second.imputed.n_missing()
                ));
            }
            if second.path.label() != "refit" {
                return Err(format!(
                    "dictionary growth took {} instead of refit",
                    second.path.label()
                ));
            }
            Ok(format!(
                "ok ({} then {})",
                first.path.label(),
                second.path.label()
            ))
        })();
        let verdict = match verdict {
            Ok(line) => line,
            Err(why) => {
                failures += 1;
                format!("FAILED: {why}")
            }
        };
        writeln!(out, "chaos app:{:<23} {verdict}", "par2-interleaved")?;
    }

    std::fs::remove_dir_all(&root).ok();
    Ok(failures)
}

/// Live-server chaos: fit a model, then bind a real [`grimp_serve::Server`]
/// per scenario and prove the injected socket faults, over-budget
/// requests, and full-queue sheds each get their contracted status while
/// the server survives to answer a healthy follow-up and drain clean.
/// Returns the number of violated scenarios.
fn chaos_serve(out: &mut dyn Write, small: &Table, seed: u64) -> Result<usize, CliError> {
    use grimp_serve::{client, ServeConfig, SocketFaultKind, SocketFaultPlan};
    use std::time::Duration;

    let serve_dir =
        std::env::temp_dir().join(format!("grimp-chaos-serve-{}-{seed}", std::process::id()));
    std::fs::create_dir_all(&serve_dir)?;
    let fit_config = GrimpConfigBuilder::from_config(GrimpConfig::fast())
        .seed(seed)
        .max_epochs(3)
        .patience(3)
        .checkpointing(CheckpointPolicy {
            dir: Some(serve_dir.clone()),
            ..Default::default()
        })
        .build()
        .map_err(|e| CliError::config(e.to_string()))?;
    Pipeline::new(fit_config)
        .map_err(|e| CliError::config(e.to_string()))?
        .fit(small)?;

    // The serving pipeline carries the same structure but no checkpoint
    // directory of its own — replicas restore from the rotated file.
    let serving = || -> Result<Pipeline, CliError> {
        let config = GrimpConfigBuilder::from_config(GrimpConfig::fast())
            .seed(seed)
            .build()
            .map_err(|e| CliError::config(e.to_string()))?;
        Pipeline::new(config).map_err(|e| CliError::config(e.to_string()))
    };
    // Large enough that the head arrives in the first socket read but the
    // body needs more — which is exactly when the read faults fire.
    let big_csv = {
        let mut csv = String::from("city,country\n");
        while csv.len() <= 8 * 1024 {
            csv.push_str("Paris,France\nRome,\n");
        }
        csv
    };
    let base_cfg = ServeConfig {
        workers: 1,
        queue_depth: 4,
        read_timeout: Duration::from_millis(200),
        reload_poll: Duration::from_millis(50),
        drain_deadline: Duration::from_secs(5),
        ..Default::default()
    };
    let mut failures = 0usize;

    // One live server per fault kind: connection 0 is sabotaged, then the
    // same server must answer a clean health check and drain.
    for kind in SocketFaultKind::all() {
        let cfg = ServeConfig {
            fault: Some(SocketFaultPlan {
                kind,
                from_conn: 0,
                times: 1,
            }),
            ..base_cfg.clone()
        };
        let verdict = run_serve_scenario(cfg, small, &serve_dir, serving()?, |addr| {
            let faulted = client::impute(addr, &big_csv);
            let survived = match kind {
                // The server drops a torn connection without a response.
                SocketFaultKind::TornRequest => faulted.is_err(),
                // A stalled body hits the read timeout: 408.
                SocketFaultKind::StalledBody => matches!(&faulted, Ok(r) if r.status == 408),
                // Corrupted bytes fail to parse: 400.
                SocketFaultKind::MalformedPayload => matches!(&faulted, Ok(r) if r.status == 400),
                // The client reset mid-response; whatever it read back (or
                // failed to) is its own problem — only survival matters.
                SocketFaultKind::DisconnectMidResponse => true,
            };
            if !survived {
                return Err(format!("unexpected outcome {faulted:?}"));
            }
            match client::request(addr, "GET", "/healthz", b"") {
                Ok(r) if r.status == 200 => Ok(()),
                other => Err(format!("health check after fault: {other:?}")),
            }
        });
        if verdict_line(out, &format!("serve:{}", kind.label()), verdict)? {
            failures += 1;
        }
    }

    // Memory admission: a 1-byte budget refuses everything with 503 and a
    // Retry-After hint, and never kills the server.
    let cfg = ServeConfig {
        memory_budget_bytes: Some(1),
        ..base_cfg.clone()
    };
    let verdict = run_serve_scenario(
        cfg,
        small,
        &serve_dir,
        serving()?,
        |addr| match client::impute(addr, "city,country\nParis,\n") {
            Ok(r) if r.status == 503 && r.header("Retry-After").is_some() => Ok(()),
            other => Err(format!("expected 503 + Retry-After, got {other:?}")),
        },
    );
    if verdict_line(out, "serve:over-budget", verdict)? {
        failures += 1;
    }

    // Panic isolation: an injected handler panic answers that request 500,
    // quarantines the worker's replica, and leaves the server healthy —
    // the very next request restores a fresh replica and succeeds.
    let cfg = ServeConfig {
        panic_route: true,
        ..base_cfg.clone()
    };
    let verdict = run_serve_scenario(cfg, small, &serve_dir, serving()?, |addr| {
        match client::request(addr, "POST", "/panic", b"") {
            Ok(r) if r.status == 500 => {}
            other => return Err(format!("expected 500 from injected panic, got {other:?}")),
        }
        match client::impute(addr, "city,country\nParis,\n") {
            Ok(r) if r.status == 200 => {}
            other => return Err(format!("impute after panic: {other:?}")),
        }
        match client::request(addr, "GET", "/stats", b"") {
            Ok(r) if r.status == 200 => {
                let body = String::from_utf8_lossy(&r.body).to_string();
                if body.contains("\"panics\":0") || body.contains("\"workers_replaced\":0") {
                    return Err(format!("stats did not count the panic: {body}"));
                }
                Ok(())
            }
            other => Err(format!("stats after panic: {other:?}")),
        }
    });
    if verdict_line(out, "serve:worker-panic", verdict)? {
        failures += 1;
    }

    // Load shedding: a zero-depth queue sheds every request with 503
    // instead of queueing unboundedly.
    let cfg = ServeConfig {
        queue_depth: 0,
        ..base_cfg
    };
    let verdict = run_serve_scenario(
        cfg,
        small,
        &serve_dir,
        serving()?,
        |addr| match client::impute(addr, "city,country\nParis,\n") {
            Ok(r) if r.status == 503 => Ok(()),
            other => Err(format!("expected 503 shed, got {other:?}")),
        },
    );
    if verdict_line(out, "serve:shed", verdict)? {
        failures += 1;
    }

    std::fs::remove_dir_all(&serve_dir).ok();
    Ok(failures)
}

/// Crashpoint sweep: for every registered state-mutating boundary
/// ([`grimp_obs::crashpoint::ALL`]), arm a one-shot abort at that boundary
/// inside a *supervised* child server, drive a keyed `/append` into the
/// crash, and prove recovery end to end: the supervisor respawns the
/// server, `/readyz` returns 200, replaying the same `Idempotency-Key`
/// converges to exactly one application of the rows (no doubling, no
/// loss), the checkpoint on disk decodes, the append log is rotated, and
/// a SIGTERM still drains the whole tree onto exit 0. Runs the real
/// binary over real sockets with a real `abort(2)` at the boundary.
fn chaos_crashpoints(out: &mut dyn Write, seed: u64) -> Result<usize, CliError> {
    let exe = std::env::current_exe()
        .map_err(|e| CliError::io(format!("resolving the grimp binary: {e}")))?;
    let mut failures = 0usize;
    for point in grimp_obs::crashpoint::ALL {
        let verdict = run_crashpoint_scenario(&exe, point, seed);
        if verdict_line(out, &format!("cp:{point}"), verdict)? {
            failures += 1;
        }
    }
    Ok(failures)
}

/// One armed crash + recovery proof; see [`chaos_crashpoints`].
fn run_crashpoint_scenario(exe: &std::path::Path, point: &str, seed: u64) -> Result<(), String> {
    use grimp::checkpoint::{TrainCheckpoint, CHECKPOINT_FILE};
    use grimp::{WAL_APPLIED_FILE, WAL_FILE};
    use grimp_serve::client;
    use std::io::BufRead;
    use std::time::{Duration, Instant};

    let csv = "city,country\nParis,France\nRome,Italy\nParis,\nRome,\nParis,France\nMadrid,Spain\nMadrid,\nRome,Italy\n";
    // The delta reuses dictionary values the base table already has, so
    // the fine-tuned checkpoint a killed append leaves behind still
    // restores against the base table when the server respawns.
    let delta = "city,country\nParis,\n,Italy\n";
    let want_rows = 8 + 2;

    let root = std::env::temp_dir().join(format!("grimp-chaos-cp-{}-{point}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    std::fs::create_dir_all(&root).map_err(|e| e.to_string())?;
    let train_csv = root.join("train.csv");
    std::fs::write(&train_csv, csv).map_err(|e| e.to_string())?;
    let ckpt_dir = root.join("ckpt");
    std::fs::create_dir_all(&ckpt_dir).map_err(|e| e.to_string())?;
    let table = grimp_table::csv::read_csv_str(csv).map_err(|e| e.to_string())?;
    let config = GrimpConfigBuilder::from_config(GrimpConfig::fast())
        .seed(seed)
        .max_epochs(3)
        .patience(3)
        .checkpointing(CheckpointPolicy {
            dir: Some(ckpt_dir.clone()),
            ..Default::default()
        })
        .build()
        .map_err(|e| e.to_string())?;
    Pipeline::new(config)
        .map_err(|e| e.to_string())?
        .fit(&table)
        .map_err(|e| format!("base fit: {e}"))?;

    // The arm file makes the abort one-shot: the armed process consumes it
    // at the boundary, so the respawned child (same env) runs clean.
    let arm = root.join("arm");
    std::fs::write(&arm, b"armed").map_err(|e| e.to_string())?;

    let mut child = std::process::Command::new(exe)
        .arg("serve")
        .arg(&train_csv)
        .arg("--checkpoint-dir")
        .arg(&ckpt_dir)
        .args(["--addr", "127.0.0.1:0", "--workers", "1"])
        .args(["--reload-poll-ms", "50", "--seed", &seed.to_string()])
        .args([
            "--supervise",
            "--restart-limit",
            "3",
            "--backoff-base-ms",
            "50",
        ])
        .env(
            grimp_obs::crashpoint::CRASHPOINT_ENV,
            format!("{point}@{}", arm.display()),
        )
        .stdin(std::process::Stdio::null())
        .stdout(std::process::Stdio::piped())
        .spawn()
        .map_err(|e| format!("spawning supervised serve: {e}"))?;

    // One reader thread surfaces every `grimp serve listening on …`
    // announcement (initial and respawn) and keeps the full log for
    // failure diagnostics.
    let stdout = child.stdout.take().expect("stdout was piped");
    let (tx, rx) = std::sync::mpsc::channel::<String>();
    let reader = std::thread::spawn(move || {
        let mut log = String::new();
        let mut reader = std::io::BufReader::new(stdout);
        let mut line = String::new();
        while matches!(reader.read_line(&mut line), Ok(n) if n > 0) {
            if let Some(rest) = line.strip_prefix("grimp serve listening on ") {
                if let Some(addr) = rest.split_whitespace().next() {
                    let _ = tx.send(addr.to_string());
                }
            }
            log.push_str(&line);
            line.clear();
        }
        log
    });

    let verdict = (|| -> Result<(), String> {
        let addr = rx
            .recv_timeout(Duration::from_secs(120))
            .map_err(|_| "no readiness announcement".to_string())?;
        // Drive the keyed append into the armed abort. The connection dies
        // without a response — the client error is expected; the recovery
        // assertions below are the contract.
        let key = format!("cp-{point}");
        let _ = client::request_with_headers(
            &addr,
            "POST",
            "/append",
            &[("Idempotency-Key", &key)],
            delta.as_bytes(),
        );
        let addr2 = rx
            .recv_timeout(Duration::from_secs(120))
            .map_err(|_| "no respawn announcement after the crash".to_string())?;
        if arm.exists() {
            return Err("crashpoint never fired (arm file not consumed)".into());
        }
        let deadline = Instant::now() + Duration::from_secs(30);
        loop {
            match client::request(&addr2, "GET", "/readyz", b"") {
                Ok(r) if r.status == 200 => break,
                _ if Instant::now() >= deadline => {
                    return Err("respawned server never reported /readyz 200".into())
                }
                _ => std::thread::sleep(Duration::from_millis(50)),
            }
        }
        // The idempotent replay: same key, same body. Exactly-once either
        // via the journal's recorded response or via WAL reconciliation.
        let replay = client::request_with_headers(
            &addr2,
            "POST",
            "/append",
            &[("Idempotency-Key", &key)],
            delta.as_bytes(),
        )
        .map_err(|e| format!("replayed append: {e}"))?;
        if replay.status != 200 {
            return Err(format!(
                "replayed append: status {} body {:?}",
                replay.status,
                String::from_utf8_lossy(&replay.body)
            ));
        }
        let grown = grimp_table::csv::read_csv_str(
            std::str::from_utf8(&replay.body).map_err(|e| e.to_string())?,
        )
        .map_err(|e| format!("replay body: {e}"))?;
        if grown.n_rows() != want_rows {
            return Err(format!(
                "rows doubled or lost: {} != {want_rows}",
                grown.n_rows()
            ));
        }
        if grown.n_missing() != 0 {
            return Err(format!(
                "{} cells left missing after recovery",
                grown.n_missing()
            ));
        }
        // On-disk invariants: a decodable checkpoint, no pending log.
        TrainCheckpoint::load(&ckpt_dir.join(CHECKPOINT_FILE))
            .map_err(|e| format!("checkpoint does not decode after recovery: {e}"))?;
        if ckpt_dir.join(WAL_FILE).exists() {
            return Err("append log still pending after a completed replay".into());
        }
        if !ckpt_dir.join(WAL_APPLIED_FILE).exists() {
            return Err("applied append log missing after recovery".into());
        }
        Ok(())
    })();

    // Drain the whole tree: the supervisor forwards the TERM to its child,
    // waits out the drain, and exits 0.
    crate::signal::send_signal(child.id() as i32, crate::signal::SIGTERM);
    let status = child.wait().map_err(|e| e.to_string())?;
    let log = reader.join().unwrap_or_default();
    let _ = std::fs::remove_dir_all(&root);
    verdict.map_err(|why| format!("{why}\n--- supervisor log ---\n{log}"))?;
    if status.code() != Some(0) {
        return Err(format!(
            "supervisor exited {:?} after SIGTERM, wanted 0\n--- supervisor log ---\n{log}",
            status.code()
        ));
    }
    Ok(())
}

/// Bind a server on a free port, run `drive` against it, then drain.
/// `Err` from `drive`, a panicked server thread, or a dirty drain all
/// come back as a failure message.
fn run_serve_scenario(
    cfg: grimp_serve::ServeConfig,
    train: &Table,
    checkpoint_dir: &std::path::Path,
    pipeline: Pipeline,
    drive: impl FnOnce(&str) -> Result<(), String>,
) -> Result<(), String> {
    use grimp_serve::{ModelSource, Server};

    let source = ModelSource {
        pipeline,
        train: train.clone(),
        checkpoint_dir: checkpoint_dir.to_path_buf(),
    };
    let flag = grimp::ShutdownFlag::new();
    let server = Server::bind(cfg, source, flag.clone(), Box::new(NullSink))
        .map_err(|e| format!("bind: {e}"))?;
    let addr = server
        .local_addr()
        .map_err(|e| format!("local_addr: {e}"))?
        .to_string();
    let handle = std::thread::spawn(move || server.run());
    let driven = drive(&addr);
    flag.request();
    let report = match handle.join() {
        Ok(Ok(report)) => report,
        Ok(Err(e)) => return Err(format!("server run: {e}")),
        Err(_) => return Err("server thread panicked".to_string()),
    };
    driven?;
    if !report.clean {
        return Err("drain deadline expired with stragglers".to_string());
    }
    Ok(())
}

/// Print one `chaos <label> …` verdict; returns whether it failed.
fn verdict_line(
    out: &mut dyn Write,
    label: &str,
    verdict: Result<(), String>,
) -> Result<bool, CliError> {
    match verdict {
        Ok(()) => {
            writeln!(out, "chaos {label:<26} ok")?;
            Ok(false)
        }
        Err(why) => {
            writeln!(out, "chaos {label:<26} FAILED: {why}")?;
            Ok(true)
        }
    }
}

/// Dispatch one CLI invocation; returns the process exit code.
///
/// Success prints to `out` and returns 0 — or 6 when `--deadline` stopped
/// training early, or 130 when Ctrl-C did (both with a complete
/// imputation). Any failure prints a single `error: …` line to `err` and
/// returns the exit code of its [`ErrorCategory`]: 2 config, 3 data, 4 io,
/// 5 internal, 7 checkpoint directory locked — or 8 when the supervisor's
/// crash-loop breaker trips.
pub fn run(argv: &[String], out: &mut dyn Write, err: &mut dyn Write) -> i32 {
    let Some(command) = argv.first().map(String::as_str) else {
        let _ = write!(out, "{USAGE}");
        return ErrorCategory::Config.exit_code();
    };
    let rest = &argv[1..];
    let parse = |flags: &[&str]| Args::parse(rest, flags);
    let result: Result<i32, CliError> = (|| match command {
        "impute" => cmd_impute(&parse(&["paper", "resume", "metrics"])?, out),
        "append" => cmd_append(&parse(&["paper", "metrics"])?, out),
        "corrupt" => cmd_corrupt(&parse(&[])?, out).map(|()| 0),
        "evaluate" => cmd_evaluate(&parse(&[])?, out).map(|()| 0),
        "stats" => cmd_stats(&parse(&[])?, out).map(|()| 0),
        "generate" => cmd_generate(&parse(&[])?, out).map(|()| 0),
        "chaos" => cmd_chaos(&parse(&["crashpoints"])?, out).map(|()| 0),
        "serve" if rest.iter().any(|a| a == "--supervise") => {
            crate::supervise::cmd_supervise(rest, out)
        }
        "serve" => cmd_serve(&parse(&["paper"])?, out),
        "help" | "--help" | "-h" => {
            write!(out, "{USAGE}")?;
            Ok(0)
        }
        other => Err(CliError::config(format!(
            "unknown command {other:?} (see `grimp help`)"
        ))),
    })();
    match result {
        Ok(code) => code,
        Err(e) => {
            let _ = writeln!(err, "error: {e}");
            e.exit_code()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_str(args: &[&str]) -> (i32, String) {
        let argv: Vec<String> = args.iter().map(|s| s.to_string()).collect();
        let mut out = Vec::new();
        let mut err = Vec::new();
        let code = run(&argv, &mut out, &mut err);
        out.extend_from_slice(&err);
        (code, String::from_utf8(out).unwrap())
    }

    fn tmpdir() -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("grimp-cli-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn help_prints_usage() {
        let (code, out) = run_str(&["help"]);
        assert_eq!(code, 0);
        assert!(out.contains("USAGE"));
    }

    #[test]
    fn no_args_prints_usage_with_error_code() {
        let (code, out) = run_str(&[]);
        assert_eq!(code, 2);
        assert!(out.contains("USAGE"));
    }

    #[test]
    fn unknown_command_fails() {
        let (code, out) = run_str(&["frobnicate"]);
        assert_eq!(code, 2);
        assert!(out.contains("unknown command"));
    }

    #[test]
    fn generate_corrupt_impute_evaluate_pipeline() {
        let dir = tmpdir();
        let clean = dir.join("clean.csv");
        let dirty = dir.join("dirty.csv");
        let imputed = dir.join("imputed.csv");

        let (code, out) = run_str(&[
            "generate",
            "MM",
            "--seed",
            "1",
            "-o",
            clean.to_str().unwrap(),
        ]);
        assert_eq!(code, 0, "{out}");
        assert!(out.contains("Mammogram"));

        let (code, out) = run_str(&[
            "corrupt",
            clean.to_str().unwrap(),
            "--rate",
            "0.1",
            "-o",
            dirty.to_str().unwrap(),
        ]);
        assert_eq!(code, 0, "{out}");
        assert!(out.contains("blanked"));

        let (code, out) = run_str(&[
            "impute",
            dirty.to_str().unwrap(),
            "--algo",
            "knn",
            "-o",
            imputed.to_str().unwrap(),
        ]);
        assert_eq!(code, 0, "{out}");
        assert!(out.contains("KNN"));

        let (code, out) = run_str(&[
            "evaluate",
            "--clean",
            clean.to_str().unwrap(),
            "--dirty",
            dirty.to_str().unwrap(),
            "--imputed",
            imputed.to_str().unwrap(),
        ]);
        assert_eq!(code, 0, "{out}");
        assert!(out.contains("categorical accuracy"), "{out}");
    }

    #[test]
    fn stats_reports_table_shape() {
        let dir = tmpdir();
        let clean = dir.join("stats.csv");
        run_str(&["generate", "TT", "-o", clean.to_str().unwrap()]);
        let (code, out) = run_str(&["stats", clean.to_str().unwrap()]);
        assert_eq!(code, 0);
        assert!(out.contains("rows:              958"), "{out}");
        assert!(out.contains("distinct values:   5"), "{out}");
    }

    #[test]
    fn generate_xl_scales_rows_and_gates_the_rows_flag() {
        let dir = tmpdir();
        let clean = dir.join("xl.csv");
        let (code, out) = run_str(&[
            "generate",
            "XL",
            "--rows",
            "500",
            "-o",
            clean.to_str().unwrap(),
        ]);
        assert_eq!(code, 0, "{out}");
        assert!(out.contains("500 rows, 5 columns"), "{out}");
        let written = std::fs::read_to_string(&clean).unwrap();
        assert_eq!(written.lines().count(), 501, "header + 500 rows");
        let (code, out) = run_str(&["generate", "TT", "--rows", "500"]);
        assert_eq!(code, 2, "{out}");
        assert!(out.contains("only applies to the XL"), "{out}");
        let (code, out) = run_str(&["generate", "XL", "--rows", "0"]);
        assert_eq!(code, 2, "{out}");
        assert!(out.contains("--rows must be at least 1"), "{out}");
    }

    #[test]
    fn unknown_algorithm_is_rejected() {
        let dir = tmpdir();
        let clean = dir.join("algo.csv");
        run_str(&["generate", "MM", "-o", clean.to_str().unwrap()]);
        let (code, out) = run_str(&["impute", clean.to_str().unwrap(), "--algo", "nope"]);
        assert_eq!(code, 2);
        assert!(out.contains("unknown algorithm"));
    }

    #[test]
    fn mnar_mechanism_is_available() {
        let dir = tmpdir();
        let clean = dir.join("mnar-clean.csv");
        let dirty = dir.join("mnar-dirty.csv");
        run_str(&["generate", "TT", "-o", clean.to_str().unwrap()]);
        let (code, out) = run_str(&[
            "corrupt",
            clean.to_str().unwrap(),
            "--mechanism",
            "mnar",
            "--rate",
            "0.2",
            "-o",
            dirty.to_str().unwrap(),
        ]);
        assert_eq!(code, 0, "{out}");
    }

    #[test]
    fn chaos_suite_passes_end_to_end() {
        let (code, out) = run_str(&["chaos", "--seed", "1"]);
        assert_eq!(code, 0, "{out}");
        assert!(out.contains("all scenarios upheld the contract"), "{out}");
        assert!(!out.contains("FAILED"), "{out}");
    }

    #[test]
    fn missing_files_produce_clean_errors() {
        let (code, out) = run_str(&["stats", "/nonexistent/nope.csv"]);
        assert_eq!(code, 4);
        assert!(out.contains("error:"));
    }

    #[test]
    fn impute_writes_a_checkpoint_and_resumes_from_it() {
        let dir = tmpdir();
        let dirty = dir.join("ckpt-dirty.csv");
        let ckpt_dir = dir.join("ckpt");
        std::fs::write(
            &dirty,
            "city,country\nParis,France\nRome,Italy\nParis,\nRome,\nParis,France\nRome,Italy\n",
        )
        .unwrap();

        let (code, out) = run_str(&[
            "impute",
            dirty.to_str().unwrap(),
            "--algo",
            "grimp",
            "--checkpoint-dir",
            ckpt_dir.to_str().unwrap(),
        ]);
        assert_eq!(code, 0, "{out}");
        let ckpt_file = ckpt_dir.join(grimp::CHECKPOINT_FILE);
        assert!(ckpt_file.exists(), "no checkpoint at {ckpt_file:?}");

        // a second run may resume from the finished checkpoint and must
        // still impute every cell
        let (code, out) = run_str(&[
            "impute",
            dirty.to_str().unwrap(),
            "--algo",
            "grimp",
            "--checkpoint-dir",
            ckpt_dir.to_str().unwrap(),
            "--resume",
        ]);
        assert_eq!(code, 0, "{out}");
        assert!(out.contains("0 cells remain missing"), "{out}");
    }

    #[test]
    fn resume_without_checkpoint_dir_is_rejected() {
        let dir = tmpdir();
        let dirty = dir.join("resume-only.csv");
        std::fs::write(&dirty, "a,b\nx,1\ny,\n").unwrap();
        let (code, out) = run_str(&["impute", dirty.to_str().unwrap(), "--resume"]);
        assert_eq!(code, 2);
        assert!(out.contains("--resume requires --checkpoint-dir"), "{out}");
    }

    #[test]
    fn impute_streams_a_parseable_jsonl_trace_and_metrics_summary() {
        let dir = tmpdir();
        let dirty = dir.join("trace-dirty.csv");
        let trace = dir.join("trace.jsonl");
        std::fs::write(
            &dirty,
            "city,country\nParis,France\nRome,Italy\nParis,\nRome,\nParis,France\nRome,Italy\n",
        )
        .unwrap();

        let (code, out) = run_str(&[
            "impute",
            dirty.to_str().unwrap(),
            "--algo",
            "grimp",
            "--seed",
            "3",
            "--trace-out",
            trace.to_str().unwrap(),
            "--metrics",
        ]);
        assert_eq!(code, 0, "{out}");
        assert!(out.contains("trace events to"), "{out}");
        assert!(out.contains("epochs:"), "{out}");
        assert!(out.contains("imputed cells:"), "{out}");

        let text = std::fs::read_to_string(&trace).unwrap();
        let mut saw_epoch = false;
        for line in text.lines() {
            let v = grimp_obs::json::parse(line).expect("trace line parses");
            if v.get("name").and_then(grimp_obs::json::Json::as_str) == Some("epoch") {
                saw_epoch = true;
            }
        }
        assert!(saw_epoch, "trace has no epoch events");
    }

    #[test]
    fn trace_out_is_rejected_for_non_grimp_algorithms() {
        let dir = tmpdir();
        let dirty = dir.join("trace-knn.csv");
        std::fs::write(&dirty, "a,b\nx,1\ny,\n").unwrap();
        let (code, out) = run_str(&[
            "impute",
            dirty.to_str().unwrap(),
            "--algo",
            "knn",
            "--trace-out",
            "/tmp/never.jsonl",
        ]);
        assert_eq!(code, 2);
        assert!(
            out.contains("--trace-out is only supported by the grimp variants"),
            "{out}"
        );
    }

    #[test]
    fn threads_flag_selects_the_parallel_backend() {
        let dir = tmpdir();
        let dirty = dir.join("threads-dirty.csv");
        std::fs::write(
            &dirty,
            "city,country\nParis,France\nRome,Italy\nParis,\nRome,\nParis,France\nRome,Italy\n",
        )
        .unwrap();
        let (code, out) = run_str(&[
            "impute",
            dirty.to_str().unwrap(),
            "--algo",
            "grimp",
            "--seed",
            "3",
            "--threads",
            "2",
        ]);
        assert_eq!(code, 0, "{out}");
        assert!(out.contains("0 cells remain missing"), "{out}");
    }

    #[test]
    fn zero_or_garbage_threads_are_rejected() {
        let dir = tmpdir();
        let dirty = dir.join("threads-bad.csv");
        std::fs::write(&dirty, "a,b\nx,1\ny,\n").unwrap();
        let (code, out) = run_str(&["impute", dirty.to_str().unwrap(), "--threads", "0"]);
        assert_eq!(code, 2);
        assert!(out.contains("--threads must be at least 1"), "{out}");
        let (code, out) = run_str(&["impute", dirty.to_str().unwrap(), "--threads", "many"]);
        assert_eq!(code, 2);
        assert!(out.contains("--threads many: cannot parse value"), "{out}");
    }

    #[test]
    fn threads_is_rejected_for_non_grimp_algorithms() {
        let dir = tmpdir();
        let dirty = dir.join("threads-knn.csv");
        std::fs::write(&dirty, "a,b\nx,1\ny,\n").unwrap();
        let (code, out) = run_str(&[
            "impute",
            dirty.to_str().unwrap(),
            "--algo",
            "knn",
            "--threads",
            "2",
        ]);
        assert_eq!(code, 2);
        assert!(
            out.contains("--threads is only supported by the grimp variants"),
            "{out}"
        );
    }

    #[test]
    fn checkpoint_dir_is_rejected_for_non_grimp_algorithms() {
        let dir = tmpdir();
        let dirty = dir.join("ckpt-knn.csv");
        std::fs::write(&dirty, "a,b\nx,1\ny,\n").unwrap();
        let (code, out) = run_str(&[
            "impute",
            dirty.to_str().unwrap(),
            "--algo",
            "knn",
            "--checkpoint-dir",
            dir.to_str().unwrap(),
        ]);
        assert_eq!(code, 2);
        assert!(
            out.contains("only supported by the grimp variants"),
            "{out}"
        );
    }
}

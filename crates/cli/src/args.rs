//! Minimal dependency-free command-line argument parsing.
//!
//! Supports `--flag`, `--key value`, `--key=value` and positional
//! arguments, with typed accessors and an unknown-option check.

use std::collections::HashMap;

/// Parsed arguments of one subcommand invocation.
#[derive(Debug, Default)]
pub struct Args {
    positional: Vec<String>,
    options: HashMap<String, String>,
    flags: Vec<String>,
}

/// A parse failure with a user-facing message.
#[derive(Debug, PartialEq, Eq)]
pub struct ArgError(pub String);

impl std::fmt::Display for ArgError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for ArgError {}

impl Args {
    /// Parse raw arguments. `boolean_flags` lists options that take no
    /// value (everything else starting with `--` consumes the next token or
    /// its `=`-suffix).
    pub fn parse(raw: &[String], boolean_flags: &[&str]) -> Result<Args, ArgError> {
        let mut args = Args::default();
        let mut it = raw.iter().peekable();
        while let Some(tok) = it.next() {
            // `-x` short options are aliases for `--x`
            let long = tok.strip_prefix("--");
            let short = (tok.len() == 2 && tok.starts_with('-') && !tok.starts_with("--"))
                .then(|| &tok[1..]);
            if let Some(name) = long.or(short) {
                if let Some((key, value)) = name.split_once('=') {
                    args.options.insert(key.to_string(), value.to_string());
                } else if boolean_flags.contains(&name) {
                    args.flags.push(name.to_string());
                } else {
                    let value = it
                        .next()
                        .ok_or_else(|| ArgError(format!("--{name} expects a value")))?;
                    args.options.insert(name.to_string(), value.clone());
                }
            } else {
                args.positional.push(tok.clone());
            }
        }
        Ok(args)
    }

    /// Positional argument `i`.
    pub fn positional(&self, i: usize) -> Option<&str> {
        self.positional.get(i).map(String::as_str)
    }

    /// Required positional argument `i`.
    pub fn require_positional(&self, i: usize, what: &str) -> Result<&str, ArgError> {
        self.positional(i)
            .ok_or_else(|| ArgError(format!("missing {what}")))
    }

    /// Number of positional arguments.
    pub fn n_positional(&self) -> usize {
        self.positional.len()
    }

    /// String option.
    pub fn opt(&self, key: &str) -> Option<&str> {
        self.options.get(key).map(String::as_str)
    }

    /// Typed option with default.
    pub fn opt_parse<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, ArgError> {
        match self.options.get(key) {
            None => Ok(default),
            Some(raw) => raw
                .parse()
                .map_err(|_| ArgError(format!("--{key} {raw}: cannot parse value"))),
        }
    }

    /// Boolean flag presence.
    pub fn flag(&self, name: &str) -> bool {
        self.flags.iter().any(|f| f == name)
    }

    /// Error on any option not in `known` (catches typos early).
    pub fn check_known(&self, known: &[&str]) -> Result<(), ArgError> {
        for key in self.options.keys().chain(self.flags.iter()) {
            if !known.contains(&key.as_str()) {
                return Err(ArgError(format!("unknown option --{key}")));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn raw(s: &[&str]) -> Vec<String> {
        s.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parses_positionals_options_and_flags() {
        let a = Args::parse(
            &raw(&["in.csv", "--rate", "0.2", "--quiet", "--out=o.csv"]),
            &["quiet"],
        )
        .unwrap();
        assert_eq!(a.positional(0), Some("in.csv"));
        assert_eq!(a.opt("rate"), Some("0.2"));
        assert_eq!(a.opt("out"), Some("o.csv"));
        assert!(a.flag("quiet"));
        assert!(!a.flag("verbose"));
    }

    #[test]
    fn typed_options_with_defaults() {
        let a = Args::parse(&raw(&["--seed", "7"]), &[]).unwrap();
        assert_eq!(a.opt_parse("seed", 0u64).unwrap(), 7);
        assert_eq!(a.opt_parse("rate", 0.5f64).unwrap(), 0.5);
        assert!(a.opt_parse::<u64>("seed", 0).is_ok());
    }

    #[test]
    fn missing_value_is_an_error() {
        let err = Args::parse(&raw(&["--rate"]), &[]).unwrap_err();
        assert!(err.0.contains("expects a value"));
    }

    #[test]
    fn bad_typed_value_is_an_error() {
        let a = Args::parse(&raw(&["--rate", "abc"]), &[]).unwrap();
        assert!(a.opt_parse::<f64>("rate", 0.0).is_err());
    }

    #[test]
    fn unknown_options_are_caught() {
        let a = Args::parse(&raw(&["--tyop", "x"]), &[]).unwrap();
        assert!(a.check_known(&["rate", "seed"]).is_err());
        assert!(a.check_known(&["tyop"]).is_ok());
    }

    #[test]
    fn required_positional_errors_with_context() {
        let a = Args::parse(&raw(&[]), &[]).unwrap();
        let err = a.require_positional(0, "input file").unwrap_err();
        assert!(err.0.contains("input file"));
    }
}

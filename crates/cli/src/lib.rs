//! # grimp-cli
//!
//! Command-line workflows over the GRIMP workspace:
//!
//! ```text
//! grimp impute   dirty.csv --algo grimp -o imputed.csv
//! grimp corrupt  clean.csv --rate 0.2 --mechanism mcar -o dirty.csv
//! grimp evaluate --clean clean.csv --dirty dirty.csv --imputed imputed.csv
//! grimp stats    table.csv
//! grimp generate TA -o tax.csv
//! grimp chaos
//! ```
//!
//! The library half holds the testable command implementations; `main.rs`
//! only dispatches. Failures follow a fixed exit-code contract (see
//! [`commands::run`]): 2 configuration, 3 malformed data, 4 IO, 5 internal,
//! each with a single-line `error: …` message on stderr.

#![warn(missing_docs)]

pub mod args;
pub mod commands;

pub use args::{ArgError, Args};
pub use commands::{run, CliError};

//! # grimp-cli
//!
//! Command-line workflows over the GRIMP workspace:
//!
//! ```text
//! grimp impute   dirty.csv --algo grimp -o imputed.csv
//! grimp corrupt  clean.csv --rate 0.2 --mechanism mcar -o dirty.csv
//! grimp evaluate --clean clean.csv --dirty dirty.csv --imputed imputed.csv
//! grimp stats    table.csv
//! grimp generate TA -o tax.csv
//! grimp chaos
//! ```
//!
//! The library half holds the testable command implementations; `main.rs`
//! only dispatches. Failures follow a fixed exit-code contract (see
//! [`commands::run`]): 2 configuration, 3 malformed data, 4 IO, 5 internal,
//! 7 checkpoint-dir locked, 8 crash-loop breaker (`serve --supervise`) —
//! plus two *success* codes for governed runs:
//! 6 when `--deadline` stopped training early and 130 when Ctrl-C did,
//! both with a fully imputed output. Each failure prints a single-line
//! `error: …` message on stderr.

#![warn(missing_docs)]

pub mod args;
pub mod commands;
pub mod signal;
pub mod supervise;

pub use args::{ArgError, Args};
pub use commands::{run, CliError};
pub use signal::{EXIT_DEADLINE, EXIT_INTERRUPTED};

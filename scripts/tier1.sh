#!/usr/bin/env bash
# Tier-1 gate: everything a PR must keep green, in the order that fails
# fastest. Run from the repository root:
#
#   ./scripts/tier1.sh
#
# Also regenerates BENCH_hotpath.json (fixed seeds, deterministic) so the
# hot-path speedup claim stays backed by a fresh measurement.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --all -- --check"
cargo fmt --all -- --check

echo "==> cargo build --release --workspace"
cargo build --release --workspace

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo test -q --workspace"
cargo test -q --workspace

echo "==> cargo test -q -p grimp-core --features fault-injection (fault-injection suite)"
cargo test -q -p grimp-core --features fault-injection

echo "==> chaos harness (adversarial inputs + corrupted-checkpoint fallback + CLI exit codes)"
cargo test -q -p grimp-core --test chaos
cargo test -q -p grimp-cli --test exit_codes
cargo run --release -p grimp-cli --bin grimp -- chaos --seed 1

echo "==> resource governance (deadline/budget/shutdown/lock/IO-fault matrix, core + real binary)"
cargo test -q -p grimp-core --test resource
cargo test -q -p grimp-cli --test governance

echo "==> grimp-obs gate (clippy -D warnings + tests incl. zero-alloc NullSink)"
cargo clippy -p grimp-obs --all-targets -- -D warnings
cargo test -q -p grimp-obs

echo "==> parallel kernel backend (Serial vs Parallel bit-identity, kernel + end-to-end)"
cargo test -q -p grimp-tensor --test backend_parity
cargo test -q -p grimp-core --test backend_e2e

echo "==> hotpath probe (writes BENCH_hotpath.json; asserts NullSink + guard overhead < 2%,"
echo "    parallel-backend bit-identity, and 0 workspace allocs after epoch 1 on both backends)"
cargo run --release -p grimp-bench --bin hotpath_probe -- --threads 2

echo "==> sampled training gate (50k-row XL synthetic under a 24 MB budget must take"
echo "    the sampling rung and still fill every cell)"
SCALE_DIR="$(mktemp -d)"
./target/release/grimp generate XL --rows 50000 -o "$SCALE_DIR/xl.csv" > /dev/null
./target/release/grimp corrupt "$SCALE_DIR/xl.csv" --rate 0.1 --seed 3 \
    -o "$SCALE_DIR/xl-dirty.csv" > /dev/null
./target/release/grimp impute "$SCALE_DIR/xl-dirty.csv" --algo grimp \
    --memory-budget-mb 24 --threads 2 -o "$SCALE_DIR/xl-imputed.csv" \
    > "$SCALE_DIR/impute.log"
grep -q "downscaled sample ->" "$SCALE_DIR/impute.log" \
    || { echo "sampled gate: budget run never took the sampling rung"; cat "$SCALE_DIR/impute.log"; exit 1; }
grep -q "; 0 cells remain missing" "$SCALE_DIR/impute.log" \
    || { echo "sampled gate: imputation incomplete"; cat "$SCALE_DIR/impute.log"; exit 1; }
rm -rf "$SCALE_DIR"

echo "==> incremental append gate (fit, kill -9 mid-append, replay the pending log;"
echo "    recovery must be bit-for-bit identical to an uninterrupted append)"
INCR_DIR="$(mktemp -d)"
./target/release/grimp generate XL --rows 3000 -o "$INCR_DIR/base.csv" > /dev/null
./target/release/grimp corrupt "$INCR_DIR/base.csv" --rate 0.05 --seed 3 \
    -o "$INCR_DIR/base-dirty.csv" > /dev/null
./target/release/grimp impute "$INCR_DIR/base-dirty.csv" --algo grimp \
    --checkpoint-dir "$INCR_DIR/ckpt" -o "$INCR_DIR/fitted.csv" > /dev/null
# The delta reuses dirty base rows (holes included, no new dictionary
# values), so the append must take the warm-start fine-tune path.
head -9 "$INCR_DIR/base-dirty.csv" > "$INCR_DIR/delta.csv"
cp -r "$INCR_DIR/ckpt" "$INCR_DIR/ckpt-ref"
./target/release/grimp append "$INCR_DIR/base-dirty.csv" --rows "$INCR_DIR/delta.csv" \
    --checkpoint-dir "$INCR_DIR/ckpt-ref" -o "$INCR_DIR/ref.csv" > "$INCR_DIR/ref.log"
grep -q "via finetune" "$INCR_DIR/ref.log" \
    || { echo "incremental gate: reference append did not fine-tune"; cat "$INCR_DIR/ref.log"; exit 1; }
grep -q "; 0 cells remain missing" "$INCR_DIR/ref.log" \
    || { echo "incremental gate: reference append incomplete"; cat "$INCR_DIR/ref.log"; exit 1; }
# Crash arm: kill -9 as soon as the append log is durable. Wherever the
# kill lands — before, during, or after the fine-tune — replaying the
# identical append must converge to the reference, bit for bit.
./target/release/grimp append "$INCR_DIR/base-dirty.csv" --rows "$INCR_DIR/delta.csv" \
    --checkpoint-dir "$INCR_DIR/ckpt" -o "$INCR_DIR/crash.csv" > /dev/null 2>&1 &
APPEND_PID=$!
for _ in $(seq 1 100); do
    { [ -e "$INCR_DIR/ckpt/grimp.wal" ] || [ -e "$INCR_DIR/ckpt/grimp.wal.applied" ]; } && break
    sleep 0.05
done
kill -9 "$APPEND_PID" 2>/dev/null || true
wait "$APPEND_PID" 2>/dev/null || true
if [ ! -e "$INCR_DIR/ckpt/grimp.wal" ]; then
    # The append outran the kill and already rotated its log; un-rotate it
    # so the rerun still exercises the replay path (a no-op fine-tune).
    mv "$INCR_DIR/ckpt/grimp.wal.applied" "$INCR_DIR/ckpt/grimp.wal"
fi
./target/release/grimp append "$INCR_DIR/base-dirty.csv" --rows "$INCR_DIR/delta.csv" \
    --checkpoint-dir "$INCR_DIR/ckpt" -o "$INCR_DIR/recovered.csv" > "$INCR_DIR/recover.log"
grep -q "; 0 cells remain missing" "$INCR_DIR/recover.log" \
    || { echo "incremental gate: recovery incomplete"; cat "$INCR_DIR/recover.log"; exit 1; }
cmp "$INCR_DIR/ref.csv" "$INCR_DIR/recovered.csv" \
    || { echo "incremental gate: recovered imputation differs from the uninterrupted run"; exit 1; }
cmp "$INCR_DIR/ckpt-ref/grimp.ckpt" "$INCR_DIR/ckpt/grimp.ckpt" \
    || { echo "incremental gate: recovered checkpoint differs from the uninterrupted run"; exit 1; }
test -e "$INCR_DIR/ckpt/grimp.wal.applied" \
    || { echo "incremental gate: append log never rotated to applied"; exit 1; }
rm -rf "$INCR_DIR"

echo "==> scaling probe (writes BENCH_scaling.json; rows/sec + footprint at 5k/50k/250k rows,"
echo "    250k-row governed run under a budget the full-graph path cannot admit,"
echo "    append fine-tune throughput vs base fit)"
cargo run --release -p grimp-bench --bin scaling_probe

echo "==> serve suite (fault matrix against a live server + real-binary drain/reload tests)"
cargo test -q -p grimp-serve
cargo test -q -p grimp-cli --test serve_integration

echo "==> serve smoke (real binary: fit, serve over HTTP, impute, SIGTERM drain, exit 0)"
SMOKE_DIR="$(mktemp -d)"
trap 'rm -rf "$SMOKE_DIR"' EXIT
printf 'city,country\nParis,France\nRome,Italy\nParis,\nRome,\nParis,France\nMadrid,Spain\nMadrid,\nRome,Italy\n' \
    > "$SMOKE_DIR/train.csv"
./target/release/grimp impute "$SMOKE_DIR/train.csv" --algo grimp \
    --checkpoint-dir "$SMOKE_DIR/ckpt" -o "$SMOKE_DIR/imputed.csv" > /dev/null
./target/release/grimp serve "$SMOKE_DIR/train.csv" --checkpoint-dir "$SMOKE_DIR/ckpt" \
    --addr 127.0.0.1:0 --trace-out "$SMOKE_DIR/trace.jsonl" > "$SMOKE_DIR/serve.log" &
SERVE_PID=$!
for _ in $(seq 1 100); do
    grep -q "listening on" "$SMOKE_DIR/serve.log" 2>/dev/null && break
    sleep 0.1
done
SERVE_ADDR="$(sed -n 's/^grimp serve listening on \([^ ]*\).*/\1/p' "$SMOKE_DIR/serve.log")"
test -n "$SERVE_ADDR" || { echo "serve smoke: no announcement line"; exit 1; }
SERVE_HOST="${SERVE_ADDR%:*}"; SERVE_PORT="${SERVE_ADDR##*:}"
BODY='city,country
Paris,
Madrid,'
REQUEST="$(printf 'POST /impute HTTP/1.1\r\nHost: grimp\r\nContent-Length: %s\r\nConnection: close\r\n\r\n%s' \
    "${#BODY}" "$BODY")"
RESPONSE="$(printf '%s' "$REQUEST" | timeout 30 bash -c \
    "exec 3<>/dev/tcp/$SERVE_HOST/$SERVE_PORT; cat >&3; cat <&3")"
printf '%s' "$RESPONSE" | head -1 | grep -q "200" \
    || { echo "serve smoke: impute did not return 200"; echo "$RESPONSE"; exit 1; }
printf '%s' "$RESPONSE" | grep -q "Paris," \
    || { echo "serve smoke: response body is not the imputed CSV"; echo "$RESPONSE"; exit 1; }
kill -TERM "$SERVE_PID"
wait "$SERVE_PID" || { echo "serve smoke: SIGTERM drain exited non-zero"; exit 1; }
grep -q "drained clean" "$SMOKE_DIR/serve.log" \
    || { echo "serve smoke: no clean-drain summary"; cat "$SMOKE_DIR/serve.log"; exit 1; }
grep -q '"name":"drain_end"' "$SMOKE_DIR/trace.jsonl" \
    || { echo "serve smoke: trace missing drain_end"; exit 1; }

echo "==> supervised serve gate (real binary: kill -9 the serving child mid-traffic;"
echo "    the supervisor respawns it and a keyed append replays idempotently)"
SUP_DIR="$(mktemp -d)"
printf 'city,country\nParis,France\nRome,Italy\nParis,\nRome,\nParis,France\nMadrid,Spain\nMadrid,\nRome,Italy\n' \
    > "$SUP_DIR/train.csv"
./target/release/grimp impute "$SUP_DIR/train.csv" --algo grimp \
    --checkpoint-dir "$SUP_DIR/ckpt" -o "$SUP_DIR/imputed.csv" > /dev/null
./target/release/grimp serve "$SUP_DIR/train.csv" --checkpoint-dir "$SUP_DIR/ckpt" \
    --addr 127.0.0.1:0 --workers 1 --supervise --restart-limit 3 --backoff-base-ms 50 \
    > "$SUP_DIR/sup.log" &
SUP_PID=$!
for _ in $(seq 1 100); do
    grep -q "listening on" "$SUP_DIR/sup.log" 2>/dev/null && break
    sleep 0.1
done
CHILD_PID="$(sed -n 's/^grimp supervise: child pid \([0-9]*\) up$/\1/p' "$SUP_DIR/sup.log" | head -1)"
SUP_ADDR="$(sed -n 's/^grimp serve listening on \([^ ]*\).*/\1/p' "$SUP_DIR/sup.log" | head -1)"
test -n "$CHILD_PID" && test -n "$SUP_ADDR" \
    || { echo "supervised gate: no child/announcement"; cat "$SUP_DIR/sup.log"; exit 1; }
sup_append() { # $1 = host:port; prints the HTTP response
    local BODY=$'city,country\nParis,\n,Italy' HOST PORT
    HOST="${1%:*}"; PORT="${1##*:}"
    printf 'POST /append HTTP/1.1\r\nHost: grimp\r\nIdempotency-Key: tier1-sup\r\nContent-Length: %s\r\nConnection: close\r\n\r\n%s' \
        "${#BODY}" "$BODY" | timeout 60 bash -c \
        "exec 3<>/dev/tcp/$HOST/$PORT; cat >&3; cat <&3" || true
}
FIRST="$(sup_append "$SUP_ADDR")"
printf '%s' "$FIRST" | head -1 | grep -q " 200 " \
    || { echo "supervised gate: keyed append did not return 200"; echo "$FIRST"; exit 1; }
kill -9 "$CHILD_PID"
for _ in $(seq 1 200); do
    NEW_ADDR="$(sed -n 's/^grimp serve listening on \([^ ]*\).*/\1/p' "$SUP_DIR/sup.log" | sed -n 2p)"
    test -n "$NEW_ADDR" && break
    sleep 0.1
done
test -n "$NEW_ADDR" || { echo "supervised gate: no respawn after kill -9"; cat "$SUP_DIR/sup.log"; exit 1; }
grep -q "killed by signal 9" "$SUP_DIR/sup.log" \
    || { echo "supervised gate: crash not reported"; cat "$SUP_DIR/sup.log"; exit 1; }
REPLAY="$(sup_append "$NEW_ADDR")"
printf '%s' "$REPLAY" | head -1 | grep -q " 200 " \
    || { echo "supervised gate: replayed append did not return 200"; echo "$REPLAY"; exit 1; }
printf '%s' "$REPLAY" | grep -qi "Idempotency-Replay: true" \
    || { echo "supervised gate: replay was not answered from the journal"; echo "$REPLAY"; exit 1; }
REPLAY_ROWS="$(printf '%s\n' "$REPLAY" | sed -n '/^city,country/,$p' | grep -c ',')"
test "$REPLAY_ROWS" -eq 11 \
    || { echo "supervised gate: replay rows $REPLAY_ROWS != 11 (header + 8 base + 2 delta)"; echo "$REPLAY"; exit 1; }
kill -TERM "$SUP_PID"
wait "$SUP_PID" || { echo "supervised gate: SIGTERM exit non-zero"; cat "$SUP_DIR/sup.log"; exit 1; }
rm -rf "$SUP_DIR"

echo "==> crashpoint sweep (abort the server at every state-mutating boundary;"
echo "    supervisor + idempotent replay must recover each one)"
./target/release/grimp chaos --crashpoints

echo "==> load probe (writes BENCH_serve.json; asserts 200s, zero shed, clean drain)"
cargo run --release -p grimp-bench --bin load_probe

echo "tier1: all green"

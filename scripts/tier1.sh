#!/usr/bin/env bash
# Tier-1 gate: everything a PR must keep green, in the order that fails
# fastest. Run from the repository root:
#
#   ./scripts/tier1.sh
#
# Also regenerates BENCH_hotpath.json (fixed seeds, deterministic) so the
# hot-path speedup claim stays backed by a fresh measurement.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --all -- --check"
cargo fmt --all -- --check

echo "==> cargo build --release --workspace"
cargo build --release --workspace

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo test -q --workspace"
cargo test -q --workspace

echo "==> cargo test -q -p grimp-core --features fault-injection (fault-injection suite)"
cargo test -q -p grimp-core --features fault-injection

echo "==> chaos harness (adversarial inputs + corrupted-checkpoint fallback + CLI exit codes)"
cargo test -q -p grimp-core --test chaos
cargo test -q -p grimp-cli --test exit_codes
cargo run --release -p grimp-cli --bin grimp -- chaos --seed 1

echo "==> resource governance (deadline/budget/shutdown/lock/IO-fault matrix, core + real binary)"
cargo test -q -p grimp-core --test resource
cargo test -q -p grimp-cli --test governance

echo "==> grimp-obs gate (clippy -D warnings + tests incl. zero-alloc NullSink)"
cargo clippy -p grimp-obs --all-targets -- -D warnings
cargo test -q -p grimp-obs

echo "==> parallel kernel backend (Serial vs Parallel bit-identity, kernel + end-to-end)"
cargo test -q -p grimp-tensor --test backend_parity
cargo test -q -p grimp-core --test backend_e2e

echo "==> hotpath probe (writes BENCH_hotpath.json; asserts NullSink + guard overhead < 2%,"
echo "    parallel-backend bit-identity, and 0 workspace allocs after epoch 1 on both backends)"
cargo run --release -p grimp-bench --bin hotpath_probe -- --threads 2

echo "tier1: all green"
